//! **E15 / Table 12 — ablation: the damping multiplier.**
//!
//! The kernel's coin is `β · (c−x)/c` with `β = 1` canonical. The ablation
//! sweeps `β` in two slack regimes:
//!
//! * **generous** (`γ = 1.5`): over-damping (`β < 1`) just wastes chances
//!   — rounds scale like `1/β`; mild over-aggression (`β > 1`) is harmless
//!   because free capacity is everywhere.
//! * **thin** (packed, `Δ = 0`, slack-1 holes): aggression speeds up the
//!   endgame until the effective coin `β·slack/c` saturates at 1 — at that
//!   point (`β = cap`) the kernel degenerates into the conditional
//!   strawman and starts manufacturing overload (E4's herding).
//!
//! This is the design-choice experiment `DESIGN.md` calls out: measured,
//! `β = 1` maximizes the saturation margin (zero created overload with the
//! least over-damping), and the margin — not a speed optimum — is what the
//! potential argument needs.

use crate::ExperimentResult;
use qlb_core::{Instance, ResourceId, SlackDamped, State};
use qlb_engine::RunConfig;
use qlb_stats::{Summary, Table};

fn generous_pair(n: usize, seed: u64) -> (Instance, State) {
    let m = n / 8;
    let cap = 12; // γ = 1.5
    let inst = Instance::uniform(n, m, cap).expect("valid");
    let _ = seed;
    let state = State::all_on(&inst, ResourceId(0));
    (inst, state)
}

/// Packed thin-slack pair (same construction as E4).
fn packed_pair(m: usize) -> (Instance, State) {
    let n = 8 * m;
    let inst = Instance::uniform(n, m, 8).expect("valid");
    let mut assignment = Vec::with_capacity(n);
    for r in 1..m {
        assignment.extend(std::iter::repeat_n(ResourceId(r as u32), 7));
    }
    assignment.resize(n, ResourceId(0));
    (inst.clone(), State::new(&inst, assignment).expect("valid"))
}

fn overload_created(series: &[u64]) -> u64 {
    series.windows(2).map(|w| w[1].saturating_sub(w[0])).sum()
}

/// Run E15.
pub fn run(quick: bool) -> ExperimentResult {
    let (n, m_packed, seeds, cutoff) = if quick {
        (1usize << 9, 48usize, 3u32, 60_000u64)
    } else {
        (1usize << 13, 384, 10, 300_000)
    };
    let betas = [0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0];

    let mut table = Table::new(
        format!(
            "Table 12 — damping ablation: β·(c−x)/c coin \
             (generous: n = {n}, γ = 1.5, hotspot; thin: packed Δ = 0, m = {m_packed})"
        ),
        &[
            "β",
            "generous: rounds",
            "generous: conv",
            "thin: rounds",
            "thin: Σ(ΔΦ)⁺",
            "thin: conv",
        ],
    );
    let mut created_at_1 = f64::NAN;
    let mut created_at_8 = f64::NAN;

    for &beta in &betas {
        let proto = SlackDamped::with_damping(beta);

        let mut gen_rounds = Summary::new();
        let mut gen_conv = 0u32;
        for seed in 0..seeds as u64 {
            let (inst, state) = generous_pair(n, seed);
            let out = qlb_engine::run(&inst, state, &proto, RunConfig::new(seed, cutoff));
            if out.converged {
                gen_conv += 1;
                gen_rounds.push(out.rounds as f64);
            }
        }

        let mut thin_rounds = Summary::new();
        let mut thin_created = Summary::new();
        let mut thin_conv = 0u32;
        for seed in 0..seeds as u64 {
            let (inst, state) = packed_pair(m_packed);
            let out = qlb_engine::run(
                &inst,
                state,
                &proto,
                RunConfig::new(seed, cutoff).with_trace(),
            );
            let series: Vec<u64> = out
                .trace
                .as_ref()
                .expect("trace requested")
                .rounds
                .iter()
                .map(|r| r.overload.expect("single class"))
                .collect();
            thin_created.push(overload_created(&series) as f64);
            if out.converged {
                thin_conv += 1;
                thin_rounds.push(out.rounds as f64);
            }
        }
        if beta == 1.0 {
            created_at_1 = thin_created.mean();
        }
        if beta == 8.0 {
            created_at_8 = thin_created.mean();
        }

        table.row(vec![
            format!("{beta:.2}"),
            format!("{:.1} ± {:.1}", gen_rounds.mean(), gen_rounds.ci95()),
            format!("{gen_conv}/{seeds}"),
            if thin_rounds.count() == 0 {
                "—".to_string()
            } else {
                format!("{:.0} ± {:.0}", thin_rounds.mean(), thin_rounds.ci95())
            },
            format!("{:.1}", thin_created.mean()),
            format!("{thin_conv}/{seeds}"),
        ]);
    }

    let notes = vec![format!(
        "ablation: overload creation on the thin instance is {created_at_1:.1} at β = 1 and \
         stays zero until the effective coin saturates (β·slack/c = 1 at β = 8: \
         {created_at_8:.1} created — the conditional-herding limit of E4); β < 1 multiplies \
         generous-slack rounds by ≈ 1/β. β ∈ [1, cap) trades endgame speed against the \
         saturation margin; the canonical β = 1 keeps the margin maximal"
    )];

    ExperimentResult {
        id: "E15",
        artifact: "Table 12",
        title: "Ablation of the damping multiplier",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 6);
        assert_eq!(res.id, "E15");
    }
}
