//! **E9 / Table 7 — migration cost vs sequential best response.**
//!
//! Sequential best response is the classical termination argument: one user
//! moves at a time, at most `n` migrations total — but it needs a global
//! scheduler and `Θ(n)` *sequential* steps. The distributed protocol
//! finishes in `O(log n)` parallel rounds; the price is concurrency waste
//! (some users move more than once). The table quantifies that price: total
//! migrations per user for both dynamics, and the parallel-time advantage.

use crate::common::{mean_ci, sweep_scenario};
use crate::ExperimentResult;
use qlb_core::{best_response_run, SlackDamped};
use qlb_stats::{Summary, Table};
use qlb_workload::{CapacityDist, Placement, Scenario};

/// Run E9.
pub fn run(quick: bool) -> ExperimentResult {
    let (exps, seeds): (Vec<u32>, u32) = if quick {
        (vec![9, 10], 3)
    } else {
        (vec![10, 12, 14, 16], 10)
    };

    let mut table = Table::new(
        "Table 7 — distributed damped protocol vs sequential best response (γ = 1.25, hotspot)",
        &[
            "n",
            "damped: rounds",
            "damped: migrations/user",
            "BR: sequential steps (= migrations)",
            "BR: migrations/user",
            "parallel-time advantage",
        ],
    );
    let mut notes = Vec::new();
    let mut overhead_worst: f64 = 0.0;

    for &e in &exps {
        let n = 1usize << e;
        let m = n / 8;
        let sc = Scenario::single_class(
            format!("e9-n{n}"),
            n,
            m,
            CapacityDist::Constant { cap: 10 },
            1.25,
            Placement::Hotspot,
        );
        let damped = sweep_scenario(&sc, &|_| Box::new(SlackDamped::default()), seeds, 100_000);

        let mut br_steps = Summary::new();
        for seed in 0..seeds as u64 {
            let (inst, state) = sc.build(seed).expect("feasible");
            let out = best_response_run(&inst, state, (n as u64) * 4);
            assert!(out.converged, "BR must converge on feasible single-class");
            br_steps.push(out.migrations as f64);
        }

        let damped_per_user = damped.migrations.mean() / n as f64;
        let br_per_user = br_steps.mean() / n as f64;
        overhead_worst = overhead_worst.max(damped_per_user / br_per_user.max(1e-9));
        let advantage = br_steps.mean() / damped.rounds.mean().max(1e-9);
        table.row(vec![
            n.to_string(),
            mean_ci(&damped.rounds),
            format!("{damped_per_user:.2}"),
            format!("{:.0}", br_steps.mean()),
            format!("{br_per_user:.2}"),
            format!("{advantage:.0}× fewer parallel steps"),
        ]);
    }

    notes.push(format!(
        "shape check: damped migration overhead per user stays a small constant multiple of \
         best response (worst ratio {overhead_worst:.2}×) while parallel time drops from Θ(n) \
         to O(log n)"
    ));

    ExperimentResult {
        id: "E9",
        artifact: "Table 7",
        title: "Migration cost: concurrency waste vs sequential best response",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 2);
    }
}
