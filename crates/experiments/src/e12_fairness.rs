//! **E12 / Figure 3 — per-user settling-time distribution (fairness).**
//!
//! Mean convergence time hides stragglers. The settling time of a user is
//! the first round from which it stays satisfied to the end of the run;
//! the figure reports its quantiles across users and seeds. The damped
//! protocol's geometric progress implies an exponential tail: p99 should
//! sit within a small factor of the median, not orders of magnitude away.

use crate::ExperimentResult;
use qlb_core::SlackDamped;
use qlb_engine::RunConfig;
use qlb_stats::{quantiles, Table};
use qlb_workload::{CapacityDist, Placement, Scenario};

/// Run E12.
pub fn run(quick: bool) -> ExperimentResult {
    let (n, seeds) = if quick {
        (1usize << 10, 3u32)
    } else {
        (1usize << 16, 10)
    };
    let m = n / 8;

    let sc = Scenario::single_class(
        "e12",
        n,
        m,
        CapacityDist::Constant { cap: 10 },
        1.25,
        Placement::Hotspot,
    );

    let mut all_times: Vec<f64> = Vec::with_capacity(n * seeds as usize);
    let mut max_rounds_seen = 0u64;
    for seed in 0..seeds as u64 {
        let (inst, state) = sc.build(seed).expect("feasible");
        let out = qlb_engine::run(
            &inst,
            state,
            &SlackDamped::default(),
            RunConfig::new(seed, 100_000).with_user_times(),
        );
        assert!(out.converged);
        max_rounds_seen = max_rounds_seen.max(out.rounds);
        let trace = out.trace.expect("trace requested");
        all_times.extend(trace.settling_times().iter().map(|&t| t as f64));
    }

    let qs = [0.10, 0.50, 0.90, 0.99, 1.0];
    let vals = quantiles(&all_times, &qs).expect("non-empty");

    let mut table = Table::new(
        format!(
            "Figure 3 — settling-time quantiles over users (n = {n}, γ = 1.25, {seeds} seeds, \
             hotspot start)"
        ),
        &["quantile", "settling round"],
    );
    for (&q, &v) in qs.iter().zip(&vals) {
        table.row(vec![format!("p{:.0}", q * 100.0), format!("{v:.0}")]);
    }

    let p50 = vals[1].max(1.0);
    let p99 = vals[3];
    let notes = vec![format!(
        "shape check: p99/p50 = {:.2} (exponential tail ⇒ small constant, not Θ(n)); \
         slowest user settles at round {:.0} of {} total",
        p99 / p50,
        vals[4],
        max_rounds_seen
    )];

    ExperimentResult {
        id: "E12",
        artifact: "Figure 3",
        title: "Per-user settling-time distribution",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 5);
        assert!(res.notes[0].contains("p99/p50"));
    }
}
