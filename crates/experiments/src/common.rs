//! Shared harness helpers.

use qlb_core::{Instance, Protocol, State};
use qlb_engine::{run, RunConfig, RunOutcome};
use qlb_stats::Summary;
use qlb_workload::Scenario;

/// A protocol factory: some protocols (capacity-proportional sampling) are
/// built per instance.
pub type ProtoFactory<'a> = &'a dyn Fn(&Instance) -> Box<dyn Protocol>;

/// Aggregated convergence measurements over seeds.
#[derive(Debug, Clone)]
pub struct SeedSweep {
    /// Rounds-to-convergence (converged runs only).
    pub rounds: Summary,
    /// Migrations (converged runs only).
    pub migrations: Summary,
    /// Converged runs out of total.
    pub converged: u32,
    /// Total runs.
    pub total: u32,
}

impl SeedSweep {
    /// Fraction of runs that converged.
    pub fn converged_frac(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.converged as f64 / self.total as f64
        }
    }
}

/// Run `scenario` once per seed with the protocol from `factory`, collecting
/// rounds/migrations of converged runs.
pub fn sweep_scenario(
    scenario: &Scenario,
    factory: ProtoFactory,
    seeds: u32,
    max_rounds: u64,
) -> SeedSweep {
    let mut rounds = Summary::new();
    let mut migrations = Summary::new();
    let mut converged = 0u32;
    for seed in 0..seeds as u64 {
        let (inst, state) = scenario
            .build(seed)
            .unwrap_or_else(|e| panic!("scenario {}: {e}", scenario.name));
        let proto = factory(&inst);
        let out = run(
            &inst,
            state,
            proto.as_ref(),
            RunConfig::new(seed, max_rounds),
        );
        if out.converged {
            converged += 1;
            rounds.push(out.rounds as f64);
            migrations.push(out.migrations as f64);
        }
    }
    SeedSweep {
        rounds,
        migrations,
        converged,
        total: seeds,
    }
}

/// Run a single prepared `(instance, state)` pair once.
pub fn run_once(
    inst: &Instance,
    state: State,
    proto: &dyn Protocol,
    seed: u64,
    max_rounds: u64,
) -> RunOutcome {
    run(inst, state, proto, RunConfig::new(seed, max_rounds))
}

/// `mean ± ci` cell text.
pub fn mean_ci(s: &Summary) -> String {
    format!("{:.1} ± {:.1}", s.mean(), s.ci95())
}

/// `x.y%` cell text.
pub fn pct(frac: f64) -> String {
    format!("{:.0}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlb_core::SlackDamped;
    use qlb_workload::{CapacityDist, Placement};

    #[test]
    fn sweep_counts_convergence() {
        let sc = Scenario::single_class(
            "t",
            128,
            16,
            CapacityDist::Constant { cap: 10 },
            1.25,
            Placement::Hotspot,
        );
        let sweep = sweep_scenario(&sc, &|_| Box::new(SlackDamped::default()), 5, 10_000);
        assert_eq!(sweep.total, 5);
        assert_eq!(sweep.converged, 5);
        assert_eq!(sweep.converged_frac(), 1.0);
        assert!(sweep.rounds.mean() > 0.0);
        assert!(sweep.migrations.mean() >= 118.0); // most users leave r0
    }

    #[test]
    fn sweep_reports_failures() {
        // cap the budget to 1 round: nothing converges
        let sc = Scenario::single_class(
            "t",
            128,
            16,
            CapacityDist::Constant { cap: 10 },
            1.25,
            Placement::Hotspot,
        );
        let sweep = sweep_scenario(&sc, &|_| Box::new(SlackDamped::default()), 3, 1);
        assert_eq!(sweep.converged, 0);
        assert_eq!(sweep.converged_frac(), 0.0);
        assert_eq!(sweep.rounds.count(), 0);
    }

    #[test]
    fn cells_format() {
        let s = Summary::of([10.0, 12.0, 14.0]);
        assert!(mean_ci(&s).contains("12.0 ±"));
        assert_eq!(pct(0.25), "25%");
    }
}
