//! **E16 / Table 13 — failure injection: lossy snapshot links.**
//!
//! The actor runtime's resource→user snapshot links drop each slice with
//! probability `p`; the observer then acts on the previous round's values.
//! This is harsher than bounded delay (E7): losses are per-link and
//! independent, so different user shards see *inconsistent* views of the
//! same resource. Expectation: convergence degrades smoothly in `p` and
//! survives even extreme loss (`p = 0.9`), because retained stale values
//! are at most one round old — the protocol's damping absorbs the error.

use crate::ExperimentResult;
use qlb_core::{ResourceId, SlackDamped, State};
use qlb_obs::{Counter, Recorder};
use qlb_runtime::{run_distributed_observed, RuntimeConfig};
use qlb_stats::{Summary, Table};
use qlb_workload::{CapacityDist, Placement, Scenario};

/// Run E16.
pub fn run(quick: bool) -> ExperimentResult {
    let (n, seeds) = if quick {
        (1usize << 9, 3u32)
    } else {
        (1usize << 12, 10)
    };
    let m = n / 8;
    let probs = [0.0f64, 0.1, 0.25, 0.5, 0.9];
    let max_rounds = 200_000;

    let sc = Scenario::single_class(
        "e16",
        n,
        m,
        CapacityDist::Constant { cap: 10 },
        1.25,
        Placement::Hotspot,
    );

    let mut table = Table::new(
        format!(
            "Table 13 — lossy snapshot links on the actor runtime \
             (n = {n}, m = {m}, γ = 1.25, 4×2 shards)"
        ),
        &[
            "loss p",
            "rounds (mean ± CI)",
            "slowdown vs p=0",
            "migrations (mean)",
            "stale slices",
            "converged",
        ],
    );
    let mut base = None;
    let mut worst_slowdown = 0.0f64;

    for &p in &probs {
        let mut rounds = Summary::new();
        let mut migrations = Summary::new();
        let mut stale_frac = Summary::new();
        let mut converged = 0u32;
        for seed in 0..seeds as u64 {
            let (inst, _) = sc.build(seed).expect("feasible");
            let state = State::all_on(&inst, ResourceId(0));
            // The stale-slice accounting comes from the resource shards'
            // own counters via the observability sink — not re-derived by
            // the experiment.
            let mut rec = Recorder::default();
            let out = run_distributed_observed(
                &inst,
                state,
                &SlackDamped::default(),
                RuntimeConfig::new(seed, max_rounds)
                    .with_shards(4, 2)
                    .with_stale_prob(p),
                &mut rec,
            );
            if out.converged {
                converged += 1;
                rounds.push(out.rounds as f64);
                migrations.push(out.migrations as f64);
                let sent = rec.counter(Counter::SnapshotsSent).max(1);
                stale_frac.push(rec.counter(Counter::StaleSnapshots) as f64 / sent as f64);
            }
        }
        let slowdown = base.map_or(1.0, |b: f64| rounds.mean() / b);
        if base.is_none() {
            base = Some(rounds.mean());
        }
        worst_slowdown = worst_slowdown.max(slowdown);
        table.row(vec![
            format!("{p:.2}"),
            format!("{:.1} ± {:.1}", rounds.mean(), rounds.ci95()),
            format!("{slowdown:.2}×"),
            format!("{:.0}", migrations.mean()),
            format!("{:.1}%", 100.0 * stale_frac.mean()),
            format!("{converged}/{seeds}"),
        ]);
    }

    let notes = vec![format!(
        "failure injection: convergence survives up to 90% snapshot loss with a worst \
         slowdown of {worst_slowdown:.2}× — stale-by-one observations are within the \
         protocol's tolerance (cf. E7's bounded-delay model)"
    )];

    ExperimentResult {
        id: "E16",
        artifact: "Table 13",
        title: "Failure injection: lossy observation links",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 5);
        assert_eq!(res.id, "E16");
    }
}
