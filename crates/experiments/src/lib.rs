//! # qlb-experiments — the paper's evaluation, regenerated
//!
//! One module per experiment (table or figure), each listed in the
//! repository's `DESIGN.md` per-experiment index and recorded in
//! `EXPERIMENTS.md`. Every experiment:
//!
//! * is a pure function of its parameters and seeds (reproducible rows);
//! * has a `quick` mode (used by tests and Criterion benches) and a full
//!   mode (used to regenerate `EXPERIMENTS.md`);
//! * emits [`qlb_stats::Table`]s — Markdown to stdout, CSV to `results/`.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p qlb-experiments --bin qlb-exp -- --all
//! ```

#![warn(missing_docs)]

pub mod common;
pub mod e01_scaling;
pub mod e02_slack;
pub mod e03_potential;
pub mod e04_herding;
pub mod e05_skew;
pub mod e06_churn;
pub mod e07_async;
pub mod e08_classes;
pub mod e09_migrations;
pub mod e10_executors;
pub mod e11_feasibility;
pub mod e12_fairness;
pub mod e13_weighted;
pub mod e14_open;
pub mod e15_damping;
pub mod e16_loss;
pub mod e17_topology;
pub mod e18_exact;
pub mod e19_participation;
pub mod e20_quality;

use qlb_stats::Table;

/// Output of one experiment.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Stable id, e.g. `"E1"`.
    pub id: &'static str,
    /// The artifact it regenerates, e.g. `"Table 1"`.
    pub artifact: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// The data (one or more tables; figures are emitted as series tables).
    pub tables: Vec<Table>,
    /// Free-form observations recorded alongside the tables (fit slopes,
    /// pass/fail of shape checks, ...).
    pub notes: Vec<String>,
}

/// All experiment ids in order.
pub const EXPERIMENT_IDS: [&str; 20] = [
    "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15",
    "E16", "E17", "E18", "E19", "E20",
];

/// Run one experiment by id. `quick` shrinks sizes/seed counts so the whole
/// suite finishes in seconds (tests, benches); full mode regenerates the
/// numbers recorded in `EXPERIMENTS.md`.
pub fn run_experiment(id: &str, quick: bool) -> Option<ExperimentResult> {
    match id.to_ascii_uppercase().as_str() {
        "E1" => Some(e01_scaling::run(quick)),
        "E2" => Some(e02_slack::run(quick)),
        "E3" => Some(e03_potential::run(quick)),
        "E4" => Some(e04_herding::run(quick)),
        "E5" => Some(e05_skew::run(quick)),
        "E6" => Some(e06_churn::run(quick)),
        "E7" => Some(e07_async::run(quick)),
        "E8" => Some(e08_classes::run(quick)),
        "E9" => Some(e09_migrations::run(quick)),
        "E10" => Some(e10_executors::run(quick)),
        "E11" => Some(e11_feasibility::run(quick)),
        "E12" => Some(e12_fairness::run(quick)),
        "E13" => Some(e13_weighted::run(quick)),
        "E14" => Some(e14_open::run(quick)),
        "E15" => Some(e15_damping::run(quick)),
        "E16" => Some(e16_loss::run(quick)),
        "E17" => Some(e17_topology::run(quick)),
        "E18" => Some(e18_exact::run(quick)),
        "E19" => Some(e19_participation::run(quick)),
        "E20" => Some(e20_quality::run(quick)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("E99", true).is_none());
        assert!(run_experiment("nonsense", true).is_none());
    }

    #[test]
    fn ids_are_case_insensitive() {
        assert!(run_experiment("e1", true).is_some());
    }

    #[test]
    fn every_listed_experiment_runs_quick() {
        for id in EXPERIMENT_IDS {
            let res = run_experiment(id, true).unwrap_or_else(|| panic!("{id} missing"));
            assert_eq!(res.id, id);
            assert!(!res.tables.is_empty(), "{id} produced no tables");
            for t in &res.tables {
                assert!(t.num_rows() > 0, "{id} produced an empty table");
            }
        }
    }
}
