//! **E6 / Table 4 — re-convergence after churn.**
//!
//! Reconstructed claim T4 (self-stabilization): from a legal state, displace
//! a fraction `φ` of users uniformly; the damped protocol re-converges in
//! rounds comparable to a fresh `O(log n)` run even for large `φ`. The
//! table sweeps `φ` and reports recovery-round statistics over episodes.

use crate::ExperimentResult;
use qlb_core::{greedy_assign, SlackDamped};
use qlb_engine::{run_with_churn, ChurnConfig, Executor};
use qlb_stats::{Summary, Table};
use qlb_workload::{CapacityDist, Scenario};

/// Run E6.
pub fn run(quick: bool) -> ExperimentResult {
    let (n, seeds, episodes) = if quick {
        (1usize << 10, 3u32, 5u32)
    } else {
        (1usize << 14, 5, 20)
    };
    let m = n / 8;
    let fractions = [0.01, 0.05, 0.10, 0.25, 0.50];

    let mut table = Table::new(
        format!(
            "Table 4 — recovery rounds after churn (n = {n}, m = {m}, γ = 1.25, \
             {episodes} episodes × {seeds} seeds)"
        ),
        &[
            "churn φ",
            "displaced/episode (mean)",
            "recovery rounds (mean ± CI)",
            "max",
            "recovered",
        ],
    );

    // Shared instance (capacities don't depend on seed for Constant).
    let sc = Scenario::single_class(
        "e6",
        n,
        m,
        CapacityDist::Constant { cap: 10 },
        1.25,
        qlb_workload::Placement::RoundRobin,
    );

    let mut first_mean = None;
    let mut last_mean = None;
    for &frac in &fractions {
        let mut rounds = Summary::new();
        let mut displaced = Summary::new();
        let mut recovered = 0u32;
        let mut total = 0u32;
        for seed in 0..seeds as u64 {
            let (inst, _) = sc.build(seed).expect("feasible");
            let legal = greedy_assign(&inst).expect("feasible");
            let out = run_with_churn(
                &inst,
                legal,
                &SlackDamped::default(),
                ChurnConfig {
                    seed,
                    fraction: frac,
                    episodes,
                    max_rounds_per_episode: 100_000,
                    executor: Executor::Dense,
                },
            );
            for &r in &out.recovery_rounds {
                rounds.push(r as f64);
            }
            for &d in &out.displaced {
                displaced.push(d as f64);
            }
            recovered += out.all_recovered as u32;
            total += 1;
        }
        table.row(vec![
            format!("{:.0}%", frac * 100.0),
            format!("{:.0}", displaced.mean()),
            format!("{:.1} ± {:.1}", rounds.mean(), rounds.ci95()),
            format!("{:.0}", rounds.max()),
            format!("{recovered}/{total} seeds"),
        ]);
        if first_mean.is_none() {
            first_mean = Some(rounds.mean());
        }
        last_mean = Some(rounds.mean());
    }

    let notes = vec![format!(
        "shape check: recovery grows mildly with φ (φ=1%: {:.1} rounds → φ=50%: {:.1} rounds); \
         all episodes recover — self-stabilization confirmed",
        first_mean.unwrap_or(0.0),
        last_mean.unwrap_or(0.0)
    )];

    ExperimentResult {
        id: "E6",
        artifact: "Table 4",
        title: "Re-convergence after churn (self-stabilization)",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 5);
    }
}
