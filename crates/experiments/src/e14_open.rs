//! **E14 / Table 11 — open system: continuous arrivals and departures.**
//!
//! The closed-model theorems promise fast convergence; the operational
//! question is *steady-state* quality: with users arriving at rate `λ` and
//! departing with probability `μ` per round (offered load
//! `ρ = λ/(μ · Σc)`), what fraction of active users is unsatisfied at any
//! moment? Expectation: for `ρ` bounded away from 1, the protocol keeps
//! the unsatisfied fraction tiny (arrivals are absorbed within ≈ 1 round);
//! approaching `ρ = 1` the margin vanishes and the fraction climbs.

use crate::ExperimentResult;
use qlb_core::SlackDamped;
use qlb_engine::{run_open_system, OpenConfig};
use qlb_stats::{Summary, Table};

/// Run E14.
pub fn run(quick: bool) -> ExperimentResult {
    let (m, cap, rounds, seeds) = if quick {
        (64usize, 10u32, 300u64, 3u32)
    } else {
        (512, 10, 2_000, 5)
    };
    let total_cap = (m as u64) * (cap as u64);
    let mu = 0.05f64;
    let rhos = [0.5, 0.7, 0.8, 0.9, 0.95];

    let mut table = Table::new(
        format!(
            "Table 11 — open system steady state (m = {m}, Σc = {total_cap}, μ = {mu}, \
             {rounds} rounds, warmup ¼)"
        ),
        &[
            "offered load ρ",
            "λ (arrivals/round)",
            "active (mean)",
            "utilization",
            "unsatisfied frac (mean)",
            "unsatisfied frac (max)",
        ],
    );
    let mut first = f64::NAN;
    let mut last = f64::NAN;

    for &rho in &rhos {
        let lambda = rho * mu * total_cap as f64;
        let pool = (2.0 * lambda / mu) as usize + 64;
        let caps = vec![cap; m];
        let mut unsat = Summary::new();
        let mut worst = Summary::new();
        let mut active = Summary::new();
        for seed in 0..seeds as u64 {
            let out = run_open_system(
                &caps,
                pool,
                &SlackDamped::default(),
                OpenConfig::new(seed, rounds, lambda, mu).with_warmup(rounds / 4),
            );
            unsat.push(out.mean_unsatisfied_frac);
            worst.push(out.max_unsatisfied_frac);
            active.push(out.mean_active);
        }
        table.row(vec![
            format!("{rho:.2}"),
            format!("{lambda:.1}"),
            format!("{:.0}", active.mean()),
            format!("{:.2}", active.mean() / total_cap as f64),
            format!("{:.4}", unsat.mean()),
            format!("{:.4}", worst.mean()),
        ]);
        if rho == rhos[0] {
            first = unsat.mean();
        }
        last = unsat.mean();
    }

    let notes = vec![format!(
        "shape check: steady-state unsatisfied fraction stays small and grows toward ρ = 1 \
         (ρ = 0.5: {first:.4} → ρ = 0.95: {last:.4}); the open system absorbs churn \
         continuously without accumulating backlog"
    )];

    ExperimentResult {
        id: "E14",
        artifact: "Table 11",
        title: "Open-system steady state under offered load",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 5);
        assert_eq!(res.id, "E14");
    }
}
