//! **E10 / Table 8 — executor equivalence and parallel scaling.**
//!
//! The determinism pillar: the sequential engine, the threaded engine (1–8
//! threads) and the synchronous actor runtime must produce *identical*
//! trajectories (rounds, migrations, final state) for the same seed, because
//! decisions are pure functions of `(seed, user, round)`. The table asserts
//! equivalence and reports wall-clock times (the HPC side: decision rounds
//! are embarrassingly parallel).

use crate::ExperimentResult;
use qlb_core::step::decide_round_into;
use qlb_core::{Move, ResourceId, RoundView, ShardDeltas, ShardScratch, SlackDamped, State};
use qlb_engine::{
    run_observed, run_sparse_observed, shard_chunk, shards_for, Executor, RunConfig, WorkerPool,
};
use qlb_obs::{Counter, Phase, Recorder};
use qlb_runtime::{run_distributed, RuntimeConfig};
use qlb_stats::Table;
use qlb_workload::{CapacityDist, Placement, Scenario};
use std::sync::Mutex;
use std::time::Instant;

/// Barrier-skew cell for an executor row: p95 of the per-round
/// (max − min) shard compute time, from the per-shard profile the
/// recorder collected. Executors that never dispatched a pooled round
/// (sequential, pure sparse, actor runtime) have no shard profile and
/// render as "—".
fn skew_cell(rec: &Recorder) -> String {
    let st = rec.shard_timers();
    if st.rounds() == 0 {
        "—".into()
    } else {
        format!("{:.1}", st.skew().quantile(0.95) as f64 / 1e3)
    }
}

/// Run E10.
pub fn run(quick: bool) -> ExperimentResult {
    let n = if quick { 1usize << 12 } else { 1usize << 17 };
    let m = n / 8;
    let seed = 2024;
    let max_rounds = 100_000;

    let sc = Scenario::single_class(
        "e10",
        n,
        m,
        CapacityDist::Constant { cap: 10 },
        1.25,
        Placement::Hotspot,
    );
    let (inst, _) = sc.build(seed).expect("feasible");
    let start_state = State::all_on(&inst, ResourceId(0));
    let proto = SlackDamped::default();

    let mut table = Table::new(
        format!(
            "Table 8 — executor equivalence & scaling (n = {n}, m = {m}, γ = 1.25, seed {seed})"
        ),
        &[
            "executor",
            "rounds",
            "migrations",
            "state identical",
            "wall time (ms)",
            "barrier skew p95 (µs)",
        ],
    );

    // Reference: sequential engine, with the observability sink attached
    // so the phase breakdown below comes from qlb-obs timers.
    let mut ref_rec = Recorder::default();
    let t0 = Instant::now();
    let reference = run_observed(
        &inst,
        start_state.clone(),
        &proto,
        RunConfig::new(seed, max_rounds),
        &mut ref_rec,
    );
    let ref_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(reference.converged);
    table.row(vec![
        "engine (sequential)".into(),
        reference.rounds.to_string(),
        reference.migrations.to_string(),
        "reference".into(),
        format!("{ref_ms:.1}"),
        skew_cell(&ref_rec),
    ]);

    // Pooled rows run observed with per-shard timing on (the default) so
    // the barrier-skew column comes from the same profile `qlb-trace
    // profile` reports. The recorder overhead is a few percent (see
    // BENCH_obs.json) and applies uniformly to the timed rows.
    let mut all_equal = true;
    let mut pooled_skew_rounds = 0u64;
    let mut util_8t = None;
    for threads in [1usize, 2, 4, 8] {
        let mut rec = Recorder::default();
        let t0 = Instant::now();
        let out = run_observed(
            &inst,
            start_state.clone(),
            &proto,
            RunConfig::new(seed, max_rounds).with_executor(Executor::Threaded(threads)),
            &mut rec,
        );
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let same = out.rounds == reference.rounds
            && out.migrations == reference.migrations
            && out.state == reference.state;
        all_equal &= same;
        pooled_skew_rounds += rec.shard_timers().rounds();
        if threads == 8 && rec.shard_timers().rounds() > 0 {
            util_8t = Some(100.0 * rec.shard_timers().mean_round_utilization());
        }
        table.row(vec![
            format!("engine ({threads} threads)"),
            out.rounds.to_string(),
            out.migrations.to_string(),
            if same { "yes" } else { "NO" }.into(),
            format!("{ms:.1}"),
            skew_cell(&rec),
        ]);
    }

    // The combined executor: sparse active-set sharded across the
    // persistent worker pool (same pool as the threaded rows above).
    // Rounds below the pooling threshold run sequentially, so the skew
    // profile only covers the pooled prefix of the run.
    for threads in [2usize, 8] {
        let mut rec = Recorder::default();
        let t0 = Instant::now();
        let out = run_observed(
            &inst,
            start_state.clone(),
            &proto,
            RunConfig::new(seed, max_rounds).with_executor(Executor::SparseThreaded(threads)),
            &mut rec,
        );
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let same = out.rounds == reference.rounds
            && out.migrations == reference.migrations
            && out.state == reference.state;
        all_equal &= same;
        table.row(vec![
            format!("engine (sparse, {threads} threads)"),
            out.rounds.to_string(),
            out.migrations.to_string(),
            if same { "yes" } else { "NO" }.into(),
            format!("{ms:.1}"),
            skew_cell(&rec),
        ]);
    }

    let mut sparse_rec = Recorder::default();
    let t0 = Instant::now();
    let sparse = run_sparse_observed(
        &inst,
        start_state.clone(),
        &proto,
        RunConfig::new(seed, max_rounds),
        &mut sparse_rec,
    );
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let same = sparse.rounds == reference.rounds
        && sparse.migrations == reference.migrations
        && sparse.state == reference.state;
    all_equal &= same;
    table.row(vec![
        "engine (sparse active-set)".into(),
        sparse.rounds.to_string(),
        sparse.migrations.to_string(),
        if same { "yes" } else { "NO" }.into(),
        format!("{ms:.1}"),
        skew_cell(&sparse_rec),
    ]);

    let t0 = Instant::now();
    let dist = run_distributed(
        &inst,
        start_state,
        &proto,
        RuntimeConfig::new(seed, max_rounds).with_shards(4, 2),
    );
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let same = dist.rounds == reference.rounds
        && dist.migrations == reference.migrations
        && dist.state == reference.state;
    all_equal &= same;
    table.row(vec![
        "actor runtime (4×2 shards, sync)".into(),
        dist.rounds.to_string(),
        dist.migrations.to_string(),
        if same { "yes" } else { "NO" }.into(),
        format!("{ms:.1}"),
        "—".into(),
    ]);

    // Phase breakdown from the qlb-obs timers: where each executor's
    // round time actually goes.
    let mut phase_table = Table::new(
        "Table 8b — phase breakdown from qlb-obs timers (same runs)".to_string(),
        &["executor", "phase", "calls", "total (ms)", "share"],
    );
    for (name, rec) in [("sequential", &ref_rec), ("sparse", &sparse_rec)] {
        let grand = rec.timers().grand_total_ns().max(1);
        for &p in &Phase::ALL {
            let h = rec.timers().histogram(p);
            if h.count() == 0 {
                continue;
            }
            phase_table.row(vec![
                name.into(),
                p.name().into(),
                h.count().to_string(),
                format!("{:.2}", h.sum() as f64 / 1e6),
                format!("{:.1}%", 100.0 * h.sum() as f64 / grand as f64),
            ]);
        }
    }

    // Table 8c — the SoA round-view kernel against the dense sequential
    // decide on one endgame round (most users satisfied, where the bitmap
    // pre-filter turns the round into a streaming scan). Decide phase
    // only, same measurement the `parallel/scaling` gate of
    // `qlb-bench-check` re-runs against `BENCH_parallel.json`.
    let endgame = qlb_engine::run(
        &inst,
        State::all_on(&inst, ResourceId(0)),
        &proto,
        RunConfig::new(seed, reference.rounds.saturating_sub(2).max(1)),
    );
    let eg_state = endgame.state;
    let reps = if quick { 5 } else { 20 };
    let time_ns = |f: &mut dyn FnMut()| {
        f();
        f(); // warm caches and buffers
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        t0.elapsed().as_nanos() as f64 / reps as f64
    };
    let mut out = Vec::new();
    let seq_ns = time_ns(&mut || {
        decide_round_into(&inst, &eg_state, &proto, seed, 9, &mut out);
    });
    let mut scale_table = Table::new(
        format!("Table 8c — SoA round-view kernel scaling (endgame round, decide only, n = {n})"),
        &[
            "threads",
            "seq decide (µs)",
            "SoA pooled decide (µs)",
            "speedup",
        ],
    );
    let view = RoundView::new(&inst, &eg_state);
    for threads in [1usize, 2, 4, 8] {
        let active = shards_for(n, threads);
        let chunk = shard_chunk(n, threads);
        let pool = WorkerPool::new(active);
        let slots: Vec<Mutex<(ShardDeltas, ShardScratch)>> = (0..active)
            .map(|_| Mutex::new((ShardDeltas::new(inst.num_resources()), ShardScratch::new())))
            .collect();
        let (view_ref, inst_ref, slots_ref) = (&view, &inst, &slots);
        let fill = move |shard: usize, buf: &mut Vec<Move>| {
            let lo = (shard * chunk).min(n);
            let hi = ((shard + 1) * chunk).min(n);
            if lo < hi {
                let mut slot = slots_ref[shard].lock().unwrap();
                let (deltas, scratch) = &mut *slot;
                view_ref.decide_shard_into(inst_ref, &proto, seed, 9, lo, hi, buf, scratch, deltas);
            }
        };
        let pooled_ns = time_ns(&mut || {
            pool.decide_round_on(fill, &mut out, false, active);
            for slot in slots_ref {
                slot.lock().unwrap().0.advance();
            }
        });
        scale_table.row(vec![
            threads.to_string(),
            format!("{:.1}", seq_ns / 1e3),
            format!("{:.1}", pooled_ns / 1e3),
            format!("{:.2}", seq_ns / pooled_ns),
        ]);
    }

    let notes = vec![
        format!(
            "equivalence check: all executors bit-identical to the sequential reference: {}",
            if all_equal { "PASS" } else { "FAIL" }
        ),
        format!(
            "sparse executor round split (qlb-obs counters): {} dense warm-up + {} sparse \
             rounds, {} executor switch(es)",
            sparse_rec.counter(Counter::DenseRounds),
            sparse_rec.counter(Counter::SparseRounds),
            sparse_rec.counter(Counter::ExecutorSwitches),
        ),
        format!(
            "barrier skew = p95 of per-round (max − min) shard compute time from the \
             per-shard profile; {pooled_skew_rounds} pooled rounds profiled across the \
             threaded rows (— where the executor never dispatched a pooled round)"
        ),
        match util_8t {
            Some(u) => format!(
                "mean per-round shard utilization at 8 threads: {u:.1}% \
                 (Σ shard compute / (shards × slowest), averaged per round)"
            ),
            None => "mean per-round shard utilization at 8 threads: no pooled rounds profiled"
                .to_string(),
        },
    ];

    ExperimentResult {
        id: "E10",
        artifact: "Table 8",
        title: "Executor equivalence and parallel scaling",
        tables: vec![table, phase_table, scale_table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_equivalence_passes() {
        let res = run(true);
        assert!(res.notes[0].contains("PASS"), "{:?}", res.notes);
        assert_eq!(res.tables[0].num_rows(), 9);
        // phase breakdown covers both observed executors, and the SoA
        // scaling table has one row per thread count
        assert_eq!(res.tables.len(), 3);
        assert!(res.tables[1].num_rows() >= 4);
        assert_eq!(res.tables[2].num_rows(), 4);
        assert!(res.tables[2]
            .to_csv()
            .lines()
            .next()
            .unwrap()
            .contains("speedup"));
        assert!(res.notes[1].contains("sparse"));
        // every genuinely pooled threaded row carries a numeric
        // barrier-skew cell; single-thread rows fall back to the
        // sequential scan and show "—" like the reference row
        let csv = res.tables[0].to_csv();
        assert!(csv.lines().next().unwrap().contains("barrier skew p95"));
        for line in csv
            .lines()
            .filter(|l| l.contains(" threads)") && !l.contains("(1 threads)"))
        {
            assert!(!line.ends_with("—"), "missing skew on pooled row: {line}");
        }
        assert!(csv
            .lines()
            .find(|l| l.starts_with("engine (sequential)"))
            .unwrap()
            .ends_with("—"));
        assert!(res.notes[2].contains("barrier skew"));
    }
}
