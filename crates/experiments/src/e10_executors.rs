//! **E10 / Table 8 — executor equivalence and parallel scaling.**
//!
//! The determinism pillar: the sequential engine, the threaded engine (1–8
//! threads) and the synchronous actor runtime must produce *identical*
//! trajectories (rounds, migrations, final state) for the same seed, because
//! decisions are pure functions of `(seed, user, round)`. The table asserts
//! equivalence and reports wall-clock times (the HPC side: decision rounds
//! are embarrassingly parallel).

use crate::ExperimentResult;
use qlb_core::{ResourceId, SlackDamped, State};
use qlb_engine::{run_observed, run_sparse_observed, run_threaded, RunConfig};
use qlb_obs::{Counter, Phase, Recorder};
use qlb_runtime::{run_distributed, RuntimeConfig};
use qlb_stats::Table;
use qlb_workload::{CapacityDist, Placement, Scenario};
use std::time::Instant;

/// Run E10.
pub fn run(quick: bool) -> ExperimentResult {
    let n = if quick { 1usize << 12 } else { 1usize << 17 };
    let m = n / 8;
    let seed = 2024;
    let max_rounds = 100_000;

    let sc = Scenario::single_class(
        "e10",
        n,
        m,
        CapacityDist::Constant { cap: 10 },
        1.25,
        Placement::Hotspot,
    );
    let (inst, _) = sc.build(seed).expect("feasible");
    let start_state = State::all_on(&inst, ResourceId(0));
    let proto = SlackDamped::default();

    let mut table = Table::new(
        format!(
            "Table 8 — executor equivalence & scaling (n = {n}, m = {m}, γ = 1.25, seed {seed})"
        ),
        &[
            "executor",
            "rounds",
            "migrations",
            "state identical",
            "wall time (ms)",
        ],
    );

    // Reference: sequential engine, with the observability sink attached
    // so the phase breakdown below comes from qlb-obs timers.
    let mut ref_rec = Recorder::default();
    let t0 = Instant::now();
    let reference = run_observed(
        &inst,
        start_state.clone(),
        &proto,
        RunConfig::new(seed, max_rounds),
        &mut ref_rec,
    );
    let ref_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(reference.converged);
    table.row(vec![
        "engine (sequential)".into(),
        reference.rounds.to_string(),
        reference.migrations.to_string(),
        "reference".into(),
        format!("{ref_ms:.1}"),
    ]);

    let mut all_equal = true;
    for threads in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let out = run_threaded(
            &inst,
            start_state.clone(),
            &proto,
            RunConfig::new(seed, max_rounds),
            threads,
        );
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let same = out.rounds == reference.rounds
            && out.migrations == reference.migrations
            && out.state == reference.state;
        all_equal &= same;
        table.row(vec![
            format!("engine ({threads} threads)"),
            out.rounds.to_string(),
            out.migrations.to_string(),
            if same { "yes" } else { "NO" }.into(),
            format!("{ms:.1}"),
        ]);
    }

    // The combined executor: sparse active-set sharded across the
    // persistent worker pool (same pool as the threaded rows above).
    for threads in [2usize, 8] {
        let t0 = Instant::now();
        let out = qlb_engine::run(
            &inst,
            start_state.clone(),
            &proto,
            RunConfig::new(seed, max_rounds)
                .with_executor(qlb_engine::Executor::SparseThreaded(threads)),
        );
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let same = out.rounds == reference.rounds
            && out.migrations == reference.migrations
            && out.state == reference.state;
        all_equal &= same;
        table.row(vec![
            format!("engine (sparse, {threads} threads)"),
            out.rounds.to_string(),
            out.migrations.to_string(),
            if same { "yes" } else { "NO" }.into(),
            format!("{ms:.1}"),
        ]);
    }

    let mut sparse_rec = Recorder::default();
    let t0 = Instant::now();
    let sparse = run_sparse_observed(
        &inst,
        start_state.clone(),
        &proto,
        RunConfig::new(seed, max_rounds),
        &mut sparse_rec,
    );
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let same = sparse.rounds == reference.rounds
        && sparse.migrations == reference.migrations
        && sparse.state == reference.state;
    all_equal &= same;
    table.row(vec![
        "engine (sparse active-set)".into(),
        sparse.rounds.to_string(),
        sparse.migrations.to_string(),
        if same { "yes" } else { "NO" }.into(),
        format!("{ms:.1}"),
    ]);

    let t0 = Instant::now();
    let dist = run_distributed(
        &inst,
        start_state,
        &proto,
        RuntimeConfig::new(seed, max_rounds).with_shards(4, 2),
    );
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let same = dist.rounds == reference.rounds
        && dist.migrations == reference.migrations
        && dist.state == reference.state;
    all_equal &= same;
    table.row(vec![
        "actor runtime (4×2 shards, sync)".into(),
        dist.rounds.to_string(),
        dist.migrations.to_string(),
        if same { "yes" } else { "NO" }.into(),
        format!("{ms:.1}"),
    ]);

    // Phase breakdown from the qlb-obs timers: where each executor's
    // round time actually goes.
    let mut phase_table = Table::new(
        "Table 8b — phase breakdown from qlb-obs timers (same runs)".to_string(),
        &["executor", "phase", "calls", "total (ms)", "share"],
    );
    for (name, rec) in [("sequential", &ref_rec), ("sparse", &sparse_rec)] {
        let grand = rec.timers().grand_total_ns().max(1);
        for &p in &Phase::ALL {
            let h = rec.timers().histogram(p);
            if h.count() == 0 {
                continue;
            }
            phase_table.row(vec![
                name.into(),
                p.name().into(),
                h.count().to_string(),
                format!("{:.2}", h.sum() as f64 / 1e6),
                format!("{:.1}%", 100.0 * h.sum() as f64 / grand as f64),
            ]);
        }
    }

    let notes = vec![
        format!(
            "equivalence check: all executors bit-identical to the sequential reference: {}",
            if all_equal { "PASS" } else { "FAIL" }
        ),
        format!(
            "sparse executor round split (qlb-obs counters): {} dense warm-up + {} sparse \
             rounds, {} executor switch(es)",
            sparse_rec.counter(Counter::DenseRounds),
            sparse_rec.counter(Counter::SparseRounds),
            sparse_rec.counter(Counter::ExecutorSwitches),
        ),
    ];

    ExperimentResult {
        id: "E10",
        artifact: "Table 8",
        title: "Executor equivalence and parallel scaling",
        tables: vec![table, phase_table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_equivalence_passes() {
        let res = run(true);
        assert!(res.notes[0].contains("PASS"), "{:?}", res.notes);
        assert_eq!(res.tables[0].num_rows(), 9);
        // phase breakdown covers both observed executors
        assert_eq!(res.tables.len(), 2);
        assert!(res.tables[1].num_rows() >= 4);
        assert!(res.notes[1].contains("sparse"));
    }
}
