//! **E18 / Table 15 — simulator validation against exact analysis.**
//!
//! On tiny instances the profile dynamics of the slack-damped protocol is
//! a finite absorbing Markov chain, so the expected rounds-to-convergence
//! has a closed form (`qlb-analysis`). This experiment is the strongest
//! correctness check in the repository: for several instances, the
//! engine's empirical mean over many seeded runs must match the exact
//! expectation within statistical error. A mismatch would convict the
//! kernel, the round semantics, or the RNG pipeline — independently of any
//! reconstructed theorem.

use crate::ExperimentResult;
use qlb_analysis::exact_expected_rounds;
use qlb_core::{Instance, ResourceId, SlackDamped, State};
use qlb_engine::{run as engine_run, RunConfig};
use qlb_stats::{Summary, Table};

/// Run E18.
pub fn run(quick: bool) -> ExperimentResult {
    let runs: u64 = if quick { 2_000 } else { 40_000 };
    // (label, caps, n) — small enough for the exact chain, varied enough
    // to exercise asymmetric capacities and both slack regimes.
    let cases: Vec<(&str, Vec<u32>, u32)> = vec![
        ("2×cap4, n=6 (Δ=2)", vec![4, 4], 6),
        ("2×cap3, n=6 (Δ=0)", vec![3, 3], 6),
        ("3×cap4, n=7 (Δ=5)", vec![4, 4, 4], 7),
        ("caps {2,3,4}, n=7 (Δ=2)", vec![2, 3, 4], 7),
        ("4×cap2, n=6 (Δ=2)", vec![2, 2, 2, 2], 6),
    ];

    let mut table = Table::new(
        format!(
            "Table 15 — exact E[rounds] vs engine mean over {runs} seeded runs (hotspot start)"
        ),
        &[
            "instance",
            "states",
            "exact E[T]",
            "empirical mean ± 95% CI",
            "z-score",
            "verdict",
        ],
    );
    let mut all_pass = true;

    for (label, caps, n) in cases {
        let exact = exact_expected_rounds(caps.clone(), n);
        let num_states = qlb_analysis::enumerate_profiles(n, caps.len()).len();

        let inst = Instance::with_capacities(n as usize, caps).expect("valid");
        let mut emp = Summary::new();
        for seed in 0..runs {
            let state = State::all_on(&inst, ResourceId(0));
            let out = engine_run(
                &inst,
                state,
                &SlackDamped::default(),
                RunConfig::new(seed, 1_000_000),
            );
            assert!(out.converged);
            emp.push(out.rounds as f64);
        }
        let z = (emp.mean() - exact) / emp.sem().max(1e-12);
        // |z| < 4 over 5 cases: essentially certain under H0.
        let pass = z.abs() < 4.0;
        all_pass &= pass;
        table.row(vec![
            label.to_string(),
            num_states.to_string(),
            format!("{exact:.4}"),
            format!("{:.4} ± {:.4}", emp.mean(), emp.ci95()),
            format!("{z:+.2}"),
            if pass { "match" } else { "MISMATCH" }.to_string(),
        ]);
    }

    let notes = vec![format!(
        "validation: engine empirical means match the closed-form Markov-chain expectations \
         on every instance (all |z| < 4): {} — kernel, round semantics, and RNG pipeline are \
         jointly correct",
        if all_pass { "PASS" } else { "FAIL" }
    )];

    ExperimentResult {
        id: "E18",
        artifact: "Table 15",
        title: "Exact Markov-chain expectations vs simulation",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_validation() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 5);
        assert!(res.notes[0].contains("PASS"), "{:?}", res.notes);
    }
}
