//! **E3 / Figure 1 — per-round decay of the overload potential.**
//!
//! The drift argument behind T1 says `E[Φ]` contracts by a constant factor
//! per round under the damped protocol. The "figure" is a series table:
//! round, overload potential `Φ`, unsatisfied users, migrations, plus the
//! empirical per-round contraction ratio. The geometric regime is visible
//! as a roughly constant ratio < 1 until the integer tail.

use crate::ExperimentResult;
use qlb_core::{overload_potential, SlackDamped};
use qlb_engine::RunConfig;
use qlb_obs::{Event, Recorder};
use qlb_stats::Table;
use qlb_workload::{CapacityDist, Placement, Scenario};

/// Run E3.
pub fn run(quick: bool) -> ExperimentResult {
    let n = if quick { 1usize << 10 } else { 1usize << 16 };
    let m = n / 8;
    let seed = 1;

    let sc = Scenario::single_class(
        format!("e3-n{n}"),
        n,
        m,
        CapacityDist::Constant { cap: 10 },
        1.25,
        Placement::Hotspot,
    );
    let (inst, state) = sc.build(seed).expect("feasible by construction");
    let proto = SlackDamped::default();
    // Round 0 comes from the initial state; the per-round series comes
    // from the observability sink's RoundEnd events rather than the
    // engine's ad-hoc trace.
    let phi0 = overload_potential(&inst, &state);
    let unsat0 = state.num_unsatisfied(&inst);
    let mut rec = Recorder::default();
    let out = qlb_engine::run_observed(
        &inst,
        state,
        &proto,
        RunConfig::new(seed, 100_000),
        &mut rec,
    );
    assert!(out.converged, "E3 run must converge");
    assert_eq!(rec.events().dropped(), 0, "E3 needs the full event stream");

    let mut table = Table::new(
        format!("Figure 1 — overload potential per round (slack-damped, n = {n}, γ = 1.25, seed {seed})"),
        &["round", "Φ (overload)", "unsatisfied", "migrations", "Φ ratio"],
    );
    let mut ratios = Vec::new();
    let mut prev_phi: Option<u64> = None;
    {
        let mut push_row = |round: u64, phi: u64, unsatisfied: u64, migrations: u64| {
            let ratio = match prev_phi {
                Some(p) if p > 0 => {
                    let ratio = phi as f64 / p as f64;
                    ratios.push(ratio);
                    format!("{ratio:.3}")
                }
                _ => "—".to_string(),
            };
            table.row(vec![
                round.to_string(),
                phi.to_string(),
                unsatisfied.to_string(),
                migrations.to_string(),
                ratio,
            ]);
            prev_phi = Some(phi);
        };
        push_row(0, phi0, unsat0 as u64, 0);
        for (_, event) in rec.events().iter() {
            if let Event::RoundEnd {
                round,
                migrations,
                unsatisfied,
                overload,
            } = event
            {
                push_row(
                    round + 1,
                    overload.expect("single-class instance"),
                    unsatisfied,
                    migrations,
                );
            }
        }
    }

    // Geometric-regime check over the early rounds (before the integer
    // tail, where Φ is tiny and ratios are noisy).
    let early: Vec<f64> = ratios
        .iter()
        .copied()
        .take_while(|_| true)
        .take(ratios.len().min(5))
        .collect();
    let mean_ratio = early.iter().sum::<f64>() / early.len().max(1) as f64;
    let notes = vec![format!(
        "mean Φ contraction over the first {} rounds: {:.3} (shape check: < 0.9 ⇒ geometric \
         decay confirmed: {}); converged in {} rounds",
        early.len(),
        mean_ratio,
        if mean_ratio < 0.9 { "PASS" } else { "FAIL" },
        out.rounds
    )];

    ExperimentResult {
        id: "E3",
        artifact: "Figure 1",
        title: "Geometric decay of the overload potential",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert!(res.tables[0].num_rows() >= 2);
        assert!(res.notes[0].contains("contraction"));
    }
}
