//! **E19 / Table 16 — partial participation (sleepy users).**
//!
//! Each otherwise-active user participates in a round with probability `p`
//! (rate limits, sleep cycles, crash-recovery). The dynamics are the full
//! protocol on a random subsample, so the reconstructed robustness claim
//! predicts a clean `1/p` slowdown — nothing else degrades. The table
//! sweeps `p` and checks the product `p · rounds` stays ≈ constant.

use crate::common::{mean_ci, pct, sweep_scenario};
use crate::ExperimentResult;
use qlb_core::{PartialParticipation, SlackDamped};
use qlb_stats::Table;
use qlb_workload::{CapacityDist, Placement, Scenario};

/// Run E19.
pub fn run(quick: bool) -> ExperimentResult {
    let (n, seeds) = if quick {
        (1usize << 9, 3u32)
    } else {
        (1usize << 13, 10)
    };
    let m = n / 8;
    let ps = [1.0f64, 0.5, 0.25, 0.1, 0.05];

    let sc = Scenario::single_class(
        "e19",
        n,
        m,
        CapacityDist::Constant { cap: 10 },
        1.25,
        Placement::Hotspot,
    );

    let mut table = Table::new(
        format!("Table 16 — partial participation (n = {n}, m = {m}, γ = 1.25, hotspot)"),
        &[
            "participation p",
            "rounds (mean ± CI)",
            "p · rounds",
            "converged",
        ],
    );
    let mut products = Vec::new();

    for &p in &ps {
        let sweep = sweep_scenario(
            &sc,
            &|_| Box::new(PartialParticipation::new(SlackDamped::default(), p)),
            seeds,
            1_000_000,
        );
        let product = p * sweep.rounds.mean();
        products.push((p, product));
        table.row(vec![
            format!("{p:.2}"),
            mean_ci(&sweep.rounds),
            format!("{product:.1}"),
            pct(sweep.converged_frac()),
        ]);
    }

    // The p = 1 row is qualitatively different (the whole hotspot drains
    // in one burst); the 1/p law applies to the throttled regime p < 1.
    let throttled: Vec<f64> = products
        .iter()
        .filter(|(p, _)| *p < 1.0)
        .map(|(_, prod)| *prod)
        .collect();
    let max = throttled.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = throttled.iter().copied().fold(f64::INFINITY, f64::min);
    let notes = vec![format!(
        "shape check: for p < 1, p · rounds is nearly constant (band max/min = {:.2}) — the \
         slowdown is the pure 1/p subsampling factor; full participation (p = 1) is faster \
         than the law's extrapolation because the initial hotspot drains in a single burst",
        max / min.max(1e-9)
    )];

    ExperimentResult {
        id: "E19",
        artifact: "Table 16",
        title: "Partial participation: pure 1/p slowdown",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 5);
        assert_eq!(res.id, "E19");
    }
}
