//! **E8 / Table 6 — heterogeneous QoS classes.**
//!
//! Reconstructed claim T5: with `K` threshold classes, the staged
//! threshold-levels protocol (class `k` active in rounds `t ≡ k mod K`)
//! converges in `O(K · log n)`-shaped time. The table sweeps `K` with the
//! same total population and compares the staged protocol against running
//! plain slack-damping for all classes simultaneously.

use crate::common::{mean_ci, pct, sweep_scenario};
use crate::ExperimentResult;
use qlb_core::{SlackDamped, ThresholdLevels};
use qlb_stats::Table;
use qlb_workload::{CapacityDist, ClassSpec, Placement, Scenario};

/// Run E8.
pub fn run(quick: bool) -> ExperimentResult {
    let (n, seeds, max_rounds) = if quick {
        (1usize << 9, 3u32, 100_000u64)
    } else {
        (1usize << 12, 10, 1_000_000)
    };
    let m = n / 4;
    let ks = [1usize, 2, 4, 8];

    let mut table = Table::new(
        format!(
            "Table 6 — K QoS classes, n = {n} users total, m = {m} speed-16 resources \
             (class k: latency ≤ (k+1)/2)"
        ),
        &[
            "K",
            "plain damped: rounds",
            "conv",
            "threshold-levels: rounds",
            "conv",
            "levels rounds / K",
        ],
    );
    let mut notes = Vec::new();
    let mut per_k_normalized = Vec::new();

    for &k in &ks {
        let classes: Vec<ClassSpec> = (0..k)
            .map(|i| ClassSpec::Latency {
                threshold: (i as f64 + 1.0) / 2.0,
                count: n / k,
            })
            .collect();
        let sc = Scenario {
            name: format!("e8-k{k}"),
            n: 0,
            m,
            capacity: CapacityDist::Constant { cap: 16 }, // speeds 16
            slack_factor: None,
            placement: Placement::Hotspot,
            classes,
        };
        let plain = sweep_scenario(
            &sc,
            &|_| Box::new(SlackDamped::default()),
            seeds,
            max_rounds,
        );
        let levels = sweep_scenario(
            &sc,
            &|_| Box::new(ThresholdLevels::new(k as u32)),
            seeds,
            max_rounds,
        );
        let normalized = levels.rounds.mean() / k as f64;
        per_k_normalized.push(normalized);
        table.row(vec![
            k.to_string(),
            mean_ci(&plain.rounds),
            pct(plain.converged_frac()),
            mean_ci(&levels.rounds),
            pct(levels.converged_frac()),
            format!("{normalized:.1}"),
        ]);
    }

    let spread = per_k_normalized
        .iter()
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
        / per_k_normalized
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b))
            .max(1e-9);
    notes.push(format!(
        "shape check: threshold-levels rounds normalized by K stay within a small constant \
         band (max/min = {spread:.2} — the O(K·log n) shape)"
    ));

    ExperimentResult {
        id: "E8",
        artifact: "Table 6",
        title: "Heterogeneous QoS classes: staged vs simultaneous damping",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 4);
    }
}
