//! **E20 / Table 17 — the price of satisfaction (quality of legal states).**
//!
//! QoS legality is a threshold condition; among legal states the total
//! latency `Σ x_r²/s_r` still varies. This experiment measures how far the
//! protocol's *reached* states sit above the unconstrained latency optimum
//! (computed exactly by convex greedy allocation), as a function of slack:
//! with thin slack, legal ≈ fully packed ≈ near-optimal; with generous
//! slack the protocol stops at the *first* legal state, which is lazier
//! than the optimum — the gap is the price of satisficing. The greedy
//! packer (which fills resources tight) is reported as the other extreme.

use crate::ExperimentResult;
use qlb_core::objective::{latency_ratio, optimal_total_latency, total_latency};
use qlb_core::{greedy_assign, SlackDamped};
use qlb_engine::{run as engine_run, RunConfig};
use qlb_stats::{Summary, Table};
use qlb_workload::{CapacityDist, Placement, Scenario};

/// Run E20.
pub fn run(quick: bool) -> ExperimentResult {
    let (n, seeds) = if quick {
        (1usize << 9, 3u32)
    } else {
        (1usize << 13, 10)
    };
    let m = n / 8;
    let gammas = [1.05f64, 1.25, 1.5, 2.0, 4.0];

    let mut table = Table::new(
        format!(
            "Table 17 — latency of reached legal states vs the exact optimum \
             (n = {n}, m = {m}, hotspot start)"
        ),
        &[
            "γ",
            "protocol: L/L* (mean ± CI)",
            "greedy packer: L/L*",
            "optimum L* (per user)",
        ],
    );
    let mut ratios = Vec::new();

    for &gamma in &gammas {
        let sc = Scenario::single_class(
            format!("e20-g{gamma}"),
            n,
            m,
            CapacityDist::Constant { cap: 8 },
            gamma,
            Placement::Hotspot,
        );
        let mut proto_ratio = Summary::new();
        let mut greedy_ratio = Summary::new();
        let mut opt_per_user = 0.0;
        for seed in 0..seeds as u64 {
            let (inst, state) = sc.build(seed).expect("feasible");
            opt_per_user = optimal_total_latency(&inst) / n as f64;
            let out = engine_run(
                &inst,
                state,
                &SlackDamped::default(),
                RunConfig::new(seed, 1_000_000),
            );
            assert!(out.converged);
            proto_ratio.push(latency_ratio(&inst, &out.state));
            let packed = greedy_assign(&inst).expect("feasible");
            greedy_ratio.push(total_latency(&inst, &packed) / optimal_total_latency(&inst));
        }
        ratios.push((gamma, proto_ratio.mean()));
        table.row(vec![
            format!("{gamma:.2}"),
            format!("{:.3} ± {:.3}", proto_ratio.mean(), proto_ratio.ci95()),
            format!("{:.3}", greedy_ratio.mean()),
            format!("{opt_per_user:.3}"),
        ]);
    }

    let tight = ratios.first().map(|r| r.1).unwrap_or(f64::NAN);
    let loose = ratios.last().map(|r| r.1).unwrap_or(f64::NAN);
    let notes = vec![format!(
        "shape check: the protocol's latency overhead over the optimum grows with slack \
         (γ = {:.2}: {tight:.3}× → γ = {:.2}: {loose:.3}×) — satisficing stops at the first \
         legal state; the greedy packer is worse still (it concentrates load by design). \
         All ratios are bounded small constants: legality caps how unbalanced a legal state \
         can be",
        gammas[0],
        gammas[gammas.len() - 1]
    )];

    ExperimentResult {
        id: "E20",
        artifact: "Table 17",
        title: "Price of satisfaction: latency of reached legal states",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 5);
        assert_eq!(res.id, "E20");
    }
}
