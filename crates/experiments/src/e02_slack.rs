//! **E2 / Table 2 — convergence vs slack factor `γ`.**
//!
//! Reconstructed claims T1/T2: the `O(log n)` bound needs `γ` bounded away
//! from 1; as `γ → 1` the tail of the process (filling the last free slots)
//! dominates and convergence degrades smoothly, with the zero-slack case
//! (`γ = 1`, `Δ = 0`) polynomially slower — a coupon-collector effect. The
//! table sweeps `γ` at fixed `n` and reports the degradation curve.

use crate::common::{mean_ci, pct, sweep_scenario};
use crate::ExperimentResult;
use qlb_core::SlackDamped;
use qlb_stats::Table;
use qlb_workload::{CapacityDist, Placement, Scenario};

/// Run E2.
pub fn run(quick: bool) -> ExperimentResult {
    let (n, seeds, max_rounds) = if quick {
        (1usize << 10, 5u32, 100_000u64)
    } else {
        (1usize << 14, 20, 1_000_000)
    };
    let m = n / 8;
    let gammas = [1.0, 1.01, 1.05, 1.1, 1.25, 1.5, 2.0];

    let mut table = Table::new(
        format!("Table 2 — rounds vs slack factor γ (slack-damped, n = {n}, m = {m}, hotspot)"),
        &[
            "γ",
            "Δ = Σc − n",
            "rounds (mean ± 95% CI)",
            "p-max",
            "converged",
        ],
    );
    let mut notes = Vec::new();
    let mut prev_mean = None;

    for &gamma in &gammas {
        let sc = Scenario::single_class(
            format!("e2-g{gamma}"),
            n,
            m,
            CapacityDist::Constant { cap: 8 },
            gamma,
            Placement::Hotspot,
        );
        let sweep = sweep_scenario(
            &sc,
            &|_| Box::new(SlackDamped::default()),
            seeds,
            max_rounds,
        );
        let delta = ((gamma * n as f64).ceil() as i64) - n as i64;
        table.row(vec![
            format!("{gamma:.2}"),
            delta.to_string(),
            mean_ci(&sweep.rounds),
            format!("{:.0}", sweep.rounds.max()),
            pct(sweep.converged_frac()),
        ]);
        if let Some(prev) = prev_mean {
            if sweep.rounds.mean() > prev {
                notes.push(format!(
                    "non-monotonicity: γ = {gamma} slower than the next-tighter slack"
                ));
            }
        }
        prev_mean = Some(sweep.rounds.mean());
    }

    notes.push(
        "shape check: rounds decrease monotonically (up to CI noise) as γ grows; \
         γ = 1.00 is the heaviest row (zero-slack tail)"
            .to_string(),
    );

    ExperimentResult {
        id: "E2",
        artifact: "Table 2",
        title: "Convergence vs slack factor (degradation toward zero slack)",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 7);
        assert_eq!(res.artifact, "Table 2");
    }
}
