//! `qlb-sim` — run one scenario from a JSON file (or a built-in preset)
//! with a chosen protocol and executor, and print the outcome.
//!
//! The "downstream adoption" tool: simulate *your* fleet without writing
//! Rust.
//!
//! ```text
//! qlb-sim --preset flash-crowd                 # built-in demo scenario
//! qlb-sim --scenario fleet.json --seed 7       # your scenario
//! qlb-sim --scenario fleet.json --protocol conditional --executor runtime
//! qlb-sim --emit-preset > fleet.json           # starting template
//! ```

use qlb_core::weighted::{
    WeightedConditional, WeightedInstance, WeightedProtocol, WeightedSlackDamped, WeightedState,
};
use qlb_core::{
    BlindUniform, ClassId, ConditionalUniform, Instance, Protocol, SlackDamped,
    SlackDampedCapacitySampling, State, ThresholdLevels,
};
use qlb_engine::{
    run_observed, run_open_system_observed, run_weighted_cfg_observed, Executor, OpenConfig,
    RunConfig, WeightedConfig,
};
use qlb_obs::{replay::Summary, NoopSink, Recorder, Sink, StreamSink};
use qlb_runtime::{run_distributed_observed, RuntimeConfig};
use qlb_stats::sparkline_fit;
use qlb_topo::{Graph, GraphDiffusion};
use qlb_workload::{CapacityDist, Placement, Scenario};
use std::io::BufWriter;
use std::process::exit;

// Counting allocator so `--mem-summary` can report the process high-water
// mark; when the flag is absent the bookkeeping is four relaxed atomics
// per allocation — noise for a CLI run.
#[global_allocator]
static GLOBAL: qlb_obs::CountingAlloc = qlb_obs::CountingAlloc;

fn preset() -> Scenario {
    Scenario::single_class(
        "flash-crowd",
        8192,
        1024,
        CapacityDist::Bimodal {
            small: 4,
            large: 60,
            frac_large: 0.1,
        },
        1.25,
        Placement::Hotspot,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    if args.iter().any(|a| a == "--emit-preset") {
        println!("{}", preset().to_json());
        return;
    }

    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let scenario = if let Some(path) = get("--scenario") {
        Scenario::from_path(&path).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        })
    } else if get("--preset").as_deref() == Some("flash-crowd")
        || args.iter().any(|a| a == "--preset")
    {
        preset()
    } else {
        eprintln!("need --scenario FILE or --preset flash-crowd");
        exit(2);
    };

    let seed: u64 = get("--seed").map_or(0, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad --seed");
            exit(2)
        })
    });
    let max_rounds: u64 = get("--max-rounds").map_or(100_000, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad --max-rounds");
            exit(2)
        })
    });

    let (inst, state) = scenario.build(seed).unwrap_or_else(|e| {
        eprintln!("scenario infeasible or invalid: {e}");
        exit(1);
    });

    // Optional topology restriction: users only probe graph neighbours
    // (forces the diffusion kernel, which handles sparse graphs).
    let topology = get("--topology").map(|t| {
        let m = inst.num_resources();
        match t.as_str() {
            "ring" => Graph::ring(m),
            "torus" => {
                let side = (m as f64).sqrt() as usize;
                if side * side != m {
                    eprintln!("--topology torus needs a square resource count (m = {m})");
                    exit(2);
                }
                Graph::torus(side, side)
            }
            "complete" => Graph::complete(m),
            other => {
                eprintln!("unknown topology {other}; choose ring | torus | complete");
                exit(2);
            }
        }
    });

    let proto_name = get("--protocol").unwrap_or_else(|| "slack-damped".into());
    let proto: Box<dyn Protocol> = if let Some(graph) = topology {
        println!(
            "topology: {} vertices, mean degree {:.1}, diameter {:?} (graph-diffusion kernel)",
            graph.num_vertices(),
            graph.mean_degree(),
            graph.diameter()
        );
        Box::new(GraphDiffusion::new(graph))
    } else {
        match proto_name.as_str() {
            "blind" => Box::new(BlindUniform),
            "conditional" => Box::new(ConditionalUniform),
            "slack-damped" => Box::new(SlackDamped::default()),
            "capacity-sampling" => Box::new(SlackDampedCapacitySampling::new(&inst)),
            "levels" => Box::new(ThresholdLevels::new(inst.num_classes() as u32)),
            other => {
                eprintln!(
                    "unknown protocol {other}; choose blind | conditional | slack-damped | \
                     capacity-sampling | levels"
                );
                exit(2);
            }
        }
    };

    println!(
        "scenario '{}': n = {}, m = {}, classes = {}, seed {seed}, protocol {}",
        scenario.name,
        inst.num_users(),
        inst.num_resources(),
        inst.num_classes(),
        proto.name(),
    );

    // Observability: --metrics-out dumps the run's JSONL trace post hoc,
    // --metrics-stream writes the same JSONL *while the run executes*
    // (tail it with qlb-trace --follow), and --metrics-summary replays the
    // trace into a human-readable digest. Without any of them the run uses
    // the NoopSink path (zero overhead).
    let metrics_out = get("--metrics-out");
    let metrics_stream = get("--metrics-stream");
    if metrics_out.is_some() && metrics_stream.is_some() {
        eprintln!("--metrics-out and --metrics-stream are mutually exclusive");
        exit(2);
    }
    let flush_every: u64 = get("--flush-every").map_or(qlb_obs::DEFAULT_FLUSH_EVERY, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad --flush-every");
            exit(2)
        })
    });
    let metrics_summary = args.iter().any(|a| a == "--metrics-summary");
    // Profiling knobs: sample the k hottest resources at each round end and
    // toggle the per-shard compute/wake profile of pooled rounds. Both ride
    // on whichever sink is active; with the NoopSink they cost nothing.
    let topk_resources: usize = get("--topk-resources").map_or(0, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad --topk-resources");
            exit(2)
        })
    });
    let shard_timing = match get("--shard-timing").as_deref() {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => {
            eprintln!("bad --shard-timing {other}; choose on | off");
            exit(2);
        }
    };

    // Driver (which engine loops the rounds: closed | open | weighted |
    // runtime) and executor (how one round is decided: dense | sparse |
    // threaded | sparse-threaded) are orthogonal flags — every driver
    // accepts every executor. The pre-driver CLI spelled drivers as
    // --executor values; those legacy spellings keep working.
    let driver_flag = get("--driver");
    let exec_flag = get("--executor").unwrap_or_else(|| "dense".into());
    let (driver, exec_name) = match exec_flag.as_str() {
        "engine" => (
            driver_flag.unwrap_or_else(|| "closed".into()),
            "dense".into(),
        ),
        "runtime" => ("runtime".into(), "dense".into()),
        "open" => ("open".into(), "dense".into()),
        _ => (driver_flag.unwrap_or_else(|| "closed".into()), exec_flag),
    };
    let threads: usize = get("--threads").map_or(4, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad --threads");
            exit(2)
        })
    });
    if threads == 0 {
        eprintln!("--threads must be at least 1");
        exit(2);
    }
    let exec = match exec_name.as_str() {
        "dense" => Executor::Dense,
        "sparse" => Executor::Sparse,
        "threaded" => Executor::Threaded(threads),
        "sparse-threaded" => Executor::SparseThreaded(threads),
        other => {
            eprintln!(
                "unknown executor {other}; choose dense | sparse | threaded | sparse-threaded"
            );
            exit(2);
        }
    };
    // Validate the sparse-soundness fallback up front and announce the
    // decision rather than leaving the silent in-engine fallback as the
    // only record of it. (The weighted model has no acts-while-satisfied
    // kernels, so its sparse path never falls back.)
    let sparse_requested = matches!(exec, Executor::Sparse | Executor::SparseThreaded(_));
    if sparse_requested && driver != "weighted" && proto.acts_when_satisfied() {
        println!(
            "note: protocol '{}' acts while satisfied — the sparse active-set executor \
             is unsound for it; falling back to the dense executor (same trajectory)",
            proto.name()
        );
    }
    let weight_max: u32 = get("--weight-max").map_or(4, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad --weight-max");
            exit(2)
        })
    });
    if weight_max == 0 {
        eprintln!("--weight-max must be at least 1");
        exit(2);
    }
    let open_rounds: u64 = get("--rounds").map_or(2_000, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad --rounds");
            exit(2)
        })
    });
    let open_cfg = OpenConfig::new(
        seed,
        open_rounds,
        get("--arrivals-per-round").map_or(4.0, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad --arrivals-per-round");
                exit(2)
            })
        }),
        get("--departure-prob").map_or(0.02, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad --departure-prob");
                exit(2)
            })
        }),
    )
    .with_warmup(open_rounds / 4)
    .with_executor(exec)
    .with_topk_resources(topk_resources)
    .with_shard_timing(shard_timing);

    let outcome = if let Some(path) = metrics_stream.as_deref() {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            exit(2);
        });
        let mut sink = StreamSink::with_flush_every(BufWriter::new(file), flush_every);
        let outcome = simulate(
            &inst,
            state,
            proto.as_ref(),
            &driver,
            &proto_name,
            weight_max,
            seed,
            max_rounds,
            open_cfg,
            &mut sink,
        );
        if let Err(e) = sink.finish() {
            eprintln!("error streaming metrics to {path}: {e}");
            exit(2);
        }
        println!("metrics streamed to {path}");
        if metrics_summary {
            // read the streamed file back — the same bytes any offline
            // consumer (qlb-trace) would see
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot re-read {path}: {e}");
                exit(2);
            });
            match Summary::from_jsonl(&text) {
                Ok(summary) => print!("{}", summary.render()),
                Err(e) => {
                    eprintln!("internal error replaying metrics: {e}");
                    exit(2);
                }
            }
        }
        outcome
    } else if metrics_out.is_some() || metrics_summary {
        let mut rec = Recorder::default();
        let outcome = simulate(
            &inst,
            state,
            proto.as_ref(),
            &driver,
            &proto_name,
            weight_max,
            seed,
            max_rounds,
            open_cfg,
            &mut rec,
        );
        let jsonl = rec.to_jsonl();
        if let Some(path) = metrics_out.as_deref() {
            std::fs::write(path, &jsonl).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(2);
            });
            println!("metrics written to {path}");
        }
        if metrics_summary {
            // replay the exact bytes we would write — same parser as a
            // later offline consumer of the JSONL file
            match Summary::from_jsonl(&jsonl) {
                Ok(summary) => print!("{}", summary.render()),
                Err(e) => {
                    eprintln!("internal error replaying metrics: {e}");
                    exit(2);
                }
            }
        }
        outcome
    } else {
        simulate(
            &inst,
            state,
            proto.as_ref(),
            &driver,
            &proto_name,
            weight_max,
            seed,
            max_rounds,
            open_cfg,
            &mut NoopSink,
        )
    };
    if args.iter().any(|a| a == "--mem-summary") {
        let n = inst.num_users().max(1);
        let peak = qlb_obs::mem::peak_bytes();
        println!(
            "memory: peak {peak} bytes ({:.2} bytes/user over n = {}), {} allocations",
            peak as f64 / n as f64,
            inst.num_users(),
            qlb_obs::mem::total_allocs(),
        );
    }
    if let Some((converged, rounds, migrations)) = outcome {
        report(converged, rounds, migrations);
    }
}

/// Run the selected driver with the chosen sink monomorphized in, print
/// its driver-specific digest, and return `(converged, rounds,
/// migrations)` — or `None` for the open-system driver, which reports
/// steady-state statistics instead of a convergence verdict. The round
/// executor rides in `open_cfg.executor` (every driver honours it).
#[allow(clippy::too_many_arguments)]
fn simulate<S: Sink>(
    inst: &Instance,
    state: State,
    proto: &dyn Protocol,
    driver: &str,
    proto_name: &str,
    weight_max: u32,
    seed: u64,
    max_rounds: u64,
    open_cfg: OpenConfig,
    sink: &mut S,
) -> Option<(bool, u64, u64)> {
    let exec = open_cfg.executor;
    match driver {
        "closed" => {
            let config = RunConfig::new(seed, max_rounds)
                .with_trace()
                .with_executor(exec)
                .with_topk_resources(open_cfg.topk_resources)
                .with_shard_timing(open_cfg.shard_timing);
            let out = run_observed(inst, state, proto, config, sink);
            let trace = out.trace.expect("trace requested");
            let unsat: Vec<f64> = trace.rounds.iter().map(|r| r.unsatisfied as f64).collect();
            println!("unsatisfied over rounds: {}", sparkline_fit(&unsat, 60));
            Some((out.converged, out.rounds, out.migrations))
        }
        "runtime" => {
            let config = RuntimeConfig::new(seed, max_rounds).with_shards(4, 2);
            let out = run_distributed_observed(inst, state, proto, config, sink);
            println!("messages exchanged: {}", out.messages);
            Some((out.converged, out.rounds, out.migrations))
        }
        "open" => {
            // the scenario supplies the fleet shape; the driver runs it as
            // an open system (arrivals/departures via the parking trick)
            if inst.num_classes() != 1 {
                eprintln!("--driver open needs a single-class scenario");
                exit(2);
            }
            let caps = inst.cap_row(ClassId(0)).to_vec();
            let out = run_open_system_observed(&caps, inst.num_users(), proto, open_cfg, sink);
            let unsat: Vec<f64> = out.series.iter().map(|s| s.unsatisfied as f64).collect();
            println!("unsatisfied over rounds: {}", sparkline_fit(&unsat, 60));
            println!(
                "open system over {} rounds: mean active {:.1}, mean unsatisfied fraction \
                 {:.4}, worst {:.4}",
                open_cfg.rounds,
                out.mean_active,
                out.mean_unsatisfied_frac,
                out.max_unsatisfied_frac
            );
            None
        }
        "weighted" => {
            // Lift the scenario into the weighted model: user i gets demand
            // 1 + (i mod --weight-max), and capacities scale by the mean
            // demand so the capacity margin γ of the unit scenario carries
            // over. The placement is reused verbatim.
            if inst.num_classes() != 1 {
                eprintln!("--driver weighted needs a single-class scenario");
                exit(2);
            }
            let n = inst.num_users();
            let weights: Vec<u32> = (0..n).map(|i| 1 + (i as u32 % weight_max)).collect();
            let total_w: u64 = weights.iter().map(|&w| w as u64).sum();
            let caps: Vec<u64> = inst
                .cap_row(ClassId(0))
                .iter()
                .map(|&c| ((c as u64) * total_w).div_ceil(n as u64))
                .collect();
            let winst = WeightedInstance::new(caps, weights).unwrap_or_else(|e| {
                eprintln!("weighted lift failed: {e}");
                exit(2);
            });
            let wstate =
                WeightedState::new(&winst, state.assignment().to_vec()).unwrap_or_else(|e| {
                    eprintln!("weighted lift failed: {e}");
                    exit(2);
                });
            let wproto: Box<dyn WeightedProtocol> = match proto_name {
                "slack-damped" => Box::new(WeightedSlackDamped::default()),
                "conditional" => Box::new(WeightedConditional),
                other => {
                    eprintln!(
                        "--driver weighted supports slack-damped | conditional (got {other})"
                    );
                    exit(2);
                }
            };
            let config = WeightedConfig::new(seed, max_rounds)
                .with_executor(exec)
                .with_topk_resources(open_cfg.topk_resources)
                .with_shard_timing(open_cfg.shard_timing);
            let out = run_weighted_cfg_observed(&winst, wstate, wproto.as_ref(), config, sink);
            println!(
                "weighted model: total demand {total_w}, weight moved {}",
                out.weight_moved
            );
            Some((out.converged, out.rounds, out.migrations))
        }
        other => {
            eprintln!("unknown driver {other}; choose closed | open | weighted | runtime");
            exit(2);
        }
    }
}

fn report(converged: bool, rounds: u64, migrations: u64) {
    if converged {
        println!("CONVERGED in {rounds} rounds with {migrations} migrations");
    } else {
        println!("NOT converged within the budget ({rounds} rounds, {migrations} migrations)");
        exit(1);
    }
}

fn print_help() {
    println!(
        "qlb-sim — run a QoS load-balancing scenario\n\n\
         USAGE:\n  qlb-sim --scenario FILE [--seed N] [--protocol P] [--driver D] [--executor E]\n          \
         [--threads T] [--max-rounds N]\n  \
         qlb-sim --preset flash-crowd\n  qlb-sim --emit-preset > fleet.json\n\n\
         PROTOCOLS: blind | conditional | slack-damped (default) | capacity-sampling | levels\n\
         TOPOLOGY:  --topology ring | torus | complete (neighbour-restricted diffusion)\n\
         DRIVERS:   closed (default) | open | weighted | runtime — which loop runs the rounds\n\
         EXECUTORS: dense (default) | sparse | threaded | sparse-threaded — how one round\n           \
         is decided; every driver accepts every executor, and every executor\n           \
         produces the same trajectory bit for bit. --threads N (default 4) sizes\n           \
         the persistent worker pool for the threaded executors.\n           \
         (Legacy spellings --executor engine|runtime|open still map to drivers.)\n\
         OPEN:      --rounds N --arrivals-per-round X --departure-prob P (open-system driver;\n           \
         the scenario supplies capacities and the user pool)\n\
         WEIGHTED:  --weight-max W (demands cycle 1..=W; capacities rescale to keep γ)\n\
         METRICS:   --metrics-out FILE.jsonl (dump events/counters/timers as JSONL post hoc)\n           \
         --metrics-stream FILE.jsonl [--flush-every K] (write the JSONL while the\n           \
         run executes; tail it with qlb-trace --follow)\n           \
         --metrics-summary (replay the trace into a digest on stdout)\n\
         PROFILING: --topk-resources K (sample the K hottest resources each round; default 0)\n           \
         --shard-timing on|off (per-shard compute/wake profile of pooled rounds;\n           \
         default on) — inspect both with qlb-trace profile FILE.jsonl\n           \
         --mem-summary (print the process peak allocation and bytes/user at exit)"
    );
}
