//! `qlb-exp` — regenerate the paper's tables and figures.
//!
//! ```text
//! qlb-exp --all [--quick] [--out results/]   # every experiment
//! qlb-exp E1 E5 [--quick]                    # selected experiments
//! qlb-exp --list                             # what exists
//! ```
//!
//! Markdown goes to stdout; each table is also written as CSV into the
//! output directory (default `results/`).

use qlb_experiments::{run_experiment, ExperimentResult, EXPERIMENT_IDS};
use std::io::Write;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print_help();
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));

    let selected: Vec<String> = if args.iter().any(|a| a == "--all") {
        EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        args.iter()
            .filter(|a| !a.starts_with("--"))
            .filter(|a| {
                Some(a.as_str())
                    != args
                        .iter()
                        .position(|x| x == "--out")
                        .and_then(|i| args.get(i + 1))
                        .map(|s| s.as_str())
            })
            .cloned()
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no experiments selected; try --all or --list");
        std::process::exit(2);
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let mut failures = 0;
    for id in &selected {
        match run_experiment(id, quick) {
            Some(result) => emit(&result, &out_dir),
            None => {
                eprintln!("unknown experiment id: {id}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

fn emit(result: &ExperimentResult, out_dir: &std::path::Path) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "\n## {} ({}) — {}\n",
        result.id, result.artifact, result.title
    )
    .unwrap();
    for (i, table) in result.tables.iter().enumerate() {
        writeln!(out, "{}", table.to_markdown()).unwrap();
        let suffix = if result.tables.len() > 1 {
            format!("-{}", i + 1)
        } else {
            String::new()
        };
        let path = out_dir.join(format!("{}{}.csv", result.id.to_lowercase(), suffix));
        std::fs::write(&path, table.to_csv()).expect("write csv");
        writeln!(out, "_CSV: {}_\n", path.display()).unwrap();
    }
    for note in &result.notes {
        writeln!(out, "> {note}").unwrap();
    }
}

fn print_help() {
    println!(
        "qlb-exp — regenerate the evaluation tables/figures\n\n\
         USAGE:\n  qlb-exp --all [--quick] [--out DIR]\n  qlb-exp E1 E2 ... [--quick]\n  \
         qlb-exp --list\n\nOPTIONS:\n  --all     run every experiment (E1–E12)\n  \
         --quick   small sizes / few seeds (seconds instead of minutes)\n  \
         --out DIR CSV output directory (default: results/)\n  --list    list experiment ids"
    );
}
