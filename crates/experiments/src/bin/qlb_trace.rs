//! `qlb-trace` — inspect a JSONL metrics trace, complete or still growing.
//!
//! The offline half of the streaming pipeline: `qlb-sim --metrics-stream
//! run.jsonl` (or `--metrics-out`) writes the trace, `qlb-trace` reads it
//! back through the same `qlb_obs::replay` code path and prints the Φ
//! trajectory, per-phase latency breakdown, message/snapshot counters, and
//! churn summaries.
//!
//! ```text
//! qlb-trace run.jsonl               # analyze a finished (or killed) run
//! qlb-trace run.jsonl --follow      # tail a run that is still writing
//! ```
//!
//! A trace cut mid-record by a crash is reported as truncated and analyzed
//! up to the cut — never a fatal error. In `--follow` mode the tool prints
//! one line per round as it lands, stops when the end-of-run trailer
//! arrives, and gives up after `--idle-ms` without growth.

use qlb_obs::recorder::Record;
use qlb_obs::replay::{Summary, TraceReader};
use qlb_obs::Event;
use qlb_stats::sparkline_fit;
use std::io::{Read, Seek, SeekFrom};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parse_ms = |flag: &str, default: u64| -> u64 {
        get(flag).map_or(default, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad {flag}");
                exit(2)
            })
        })
    };

    let path = match args.iter().find(|a| !a.starts_with("--")) {
        Some(p) => p.clone(),
        None => {
            eprintln!("need a trace file; see qlb-trace --help");
            exit(2);
        }
    };
    let follow = args.iter().any(|a| a == "--follow");

    let summary = if follow {
        let idle_ms = parse_ms("--idle-ms", 10_000);
        let poll_ms = parse_ms("--poll-ms", 200).max(1);
        follow_trace(&path, idle_ms, poll_ms)
    } else {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(2);
        });
        Summary::from_jsonl(&text).unwrap_or_else(|e| {
            eprintln!("{path}: corrupt trace: {e}");
            exit(2);
        })
    };

    print!("{}", report(&summary));
}

/// Tail a growing trace: poll the file for new bytes, parse them
/// incrementally, and print a line per completed round. Returns when the
/// end-of-run trailer arrives or the file stops growing for `idle_ms`.
fn follow_trace(path: &str, idle_ms: u64, poll_ms: u64) -> Summary {
    let mut summary = Summary::default();
    let mut reader = TraceReader::new();
    let mut records: Vec<Record> = Vec::new();
    let mut offset: u64 = 0;
    let mut idle = 0u64;
    let mut buf = Vec::new();
    loop {
        // the writer may not have created the file yet; that counts as idle
        let grew = match std::fs::File::open(path) {
            Ok(mut f) => {
                let len = f.metadata().map(|m| m.len()).unwrap_or(0);
                if len > offset {
                    f.seek(SeekFrom::Start(offset)).expect("seek");
                    buf.clear();
                    (&mut f)
                        .take(len - offset)
                        .read_to_end(&mut buf)
                        .expect("read");
                    offset = len;
                    let chunk = String::from_utf8_lossy(&buf);
                    if let Err(e) = reader.feed(&chunk, &mut records) {
                        eprintln!("{path}: corrupt trace: {e}");
                        exit(2);
                    }
                    true
                } else {
                    false
                }
            }
            Err(_) => false,
        };
        for record in records.drain(..) {
            if let Record::Event {
                event:
                    Event::RoundEnd {
                        round,
                        migrations,
                        unsatisfied,
                        overload,
                    },
                ..
            } = record
            {
                match overload {
                    Some(phi) => println!(
                        "round {round:>6}: {migrations:>6} migrations, \
                         {unsatisfied:>7} unsatisfied, Φ = {phi}"
                    ),
                    None => println!(
                        "round {round:>6}: {migrations:>6} migrations, \
                         {unsatisfied:>7} unsatisfied"
                    ),
                }
            }
            summary.ingest(&record);
        }
        if summary.saw_trailer() {
            println!("-- run finished (trailer seen) --");
            break;
        }
        if grew {
            idle = 0;
        } else {
            idle += poll_ms;
            if idle >= idle_ms {
                println!("-- no growth for {idle_ms} ms; stopping --");
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(poll_ms));
        }
    }
    if !reader.pending().is_empty() {
        // the writer died inside a write; everything before the cut counted
        summary.truncated = true;
    }
    summary
}

/// The full digest: the shared [`Summary::render`] body plus the Φ
/// trajectory sparkline and churn/staleness summaries.
fn report(summary: &Summary) -> String {
    let mut out = String::new();
    if !summary.overload_series.is_empty() {
        let phi: Vec<f64> = summary.overload_series.iter().map(|&v| v as f64).collect();
        out.push_str(&format!("Φ trajectory: {}\n", sparkline_fit(&phi, 60)));
    }
    out.push_str(&summary.render());
    let churn: u64 = summary
        .counters
        .get("churn_episodes")
        .copied()
        .unwrap_or_else(|| {
            summary
                .events_by_kind
                .get("ChurnEpisode")
                .copied()
                .unwrap_or(0)
        });
    let arrivals = summary.counters.get("arrivals").copied().unwrap_or(0);
    let departures = summary.counters.get("departures").copied().unwrap_or(0);
    if churn + arrivals + departures > 0 {
        out.push_str(&format!(
            "churn: {churn} episodes, {arrivals} arrivals, {departures} departures\n"
        ));
    }
    if let Some(&staleness) = summary.gauges.get("snapshot_staleness") {
        let stale = summary
            .counters
            .get("stale_snapshots")
            .copied()
            .unwrap_or(0);
        out.push_str(&format!(
            "staleness: last snapshot staleness {staleness}, {stale} stale snapshots seen\n"
        ));
    }
    out
}

fn print_help() {
    println!(
        "qlb-trace — inspect a qlb JSONL metrics trace (complete or live)\n\n\
         USAGE:\n  qlb-trace FILE.jsonl                analyze a finished or interrupted trace\n  \
         qlb-trace FILE.jsonl --follow       tail a trace that is still being written\n\n\
         OPTIONS:\n  --follow         poll the file and print each round as it lands\n  \
         --idle-ms N      stop following after N ms without growth (default 10000)\n  \
         --poll-ms N      polling interval in ms (default 200)\n\n\
         Traces come from qlb-sim --metrics-stream FILE.jsonl (live) or\n\
         --metrics-out FILE.jsonl (post hoc); both formats are identical.\n\
         A trace cut mid-record (killed run) is reported as truncated and\n\
         analyzed up to the cut."
    );
}
