//! `qlb-trace` — inspect and compare JSONL metrics traces.
//!
//! The offline half of the streaming pipeline: `qlb-sim --metrics-stream
//! run.jsonl` (or `--metrics-out`) writes the trace, `qlb-trace` reads it
//! back through the same `qlb_obs::replay` code path.
//!
//! ```text
//! qlb-trace run.jsonl               # analyze a finished (or killed) run
//! qlb-trace run.jsonl --follow      # tail a run that is still writing
//! qlb-trace profile run.jsonl       # per-shard profile + congestion heatmap
//! qlb-trace compare a.jsonl b.jsonl # diff two runs; nonzero exit on regression
//! qlb-trace watch --tcp HOST:PORT   # live telemetry dashboard off a daemon
//! qlb-trace watch serve.jsonl       # same dashboard off recorded snapshots
//! ```
//!
//! A trace cut mid-record by a crash is reported as truncated and analyzed
//! up to the cut — never a parse error. An incomplete trace (no end-of-run
//! trailer, e.g. the writer hit a latched I/O error and never finished)
//! still prints its analysis but the exit status is 1, so scripts can tell
//! a clean run from an interrupted one. In `--follow` mode the tool prints
//! one line per round as it lands, stops when the end-of-run trailer
//! arrives, gives up after `--idle-ms` without growth, and exits 2 if the
//! trace file is deleted or truncated mid-follow (both intervals must be
//! positive integers — zero and negatives are usage errors).
//!
//! `watch` renders the live telemetry dashboard: rolling request/placement
//! rates with sparkline history, windowed latency digests, per-class SLO
//! violation bars, and the rebalancer's budget utilization — either by
//! polling a running daemon's `{"op":"stats"}` wire op (`--tcp`/`--socket`)
//! or from the `StatsSnapshot` records a traced daemon leaves in its
//! trailer. `--once` renders a single frame and exits (status 1 when a
//! trace holds no snapshots), which is what the CI smoke job asserts.
//!
//! Exit status: 0 clean, 1 incomplete trace or compare regression, 2 usage
//! or unreadable/corrupt trace (including deleted/truncated mid-follow).

use qlb_obs::recorder::Record;
use qlb_obs::replay::{Summary, TraceReader};
use qlb_obs::{Event, StatsSnapshot};
use qlb_stats::sparkline_fit;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    match args[0].as_str() {
        "profile" => profile_cmd(&args[1..]),
        "compare" => compare_cmd(&args[1..]),
        "watch" => watch_cmd(&args[1..]),
        "spans" => spans_cmd(&args[1..]),
        "blackbox" => blackbox_cmd(&args[1..]),
        _ => analyze_cmd(&args),
    }
}

/// First non-flag argument, or usage error.
fn positional(args: &[String], what: &str) -> String {
    match args.iter().find(|a| !a.starts_with("--")) {
        Some(p) => p.clone(),
        None => {
            eprintln!("need {what}; see qlb-trace --help");
            exit(2);
        }
    }
}

/// Read and parse a whole trace file (exit 2 on I/O or corrupt trace).
fn load_summary(path: &str) -> Summary {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(2);
    });
    Summary::from_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("{path}: corrupt trace: {e}");
        exit(2);
    })
}

/// A trace without the end-of-run trailer (or cut mid-record) comes from a
/// writer that died or hit a latched I/O error before `finish()` — the
/// analysis is still printed, but the exit status must reflect it.
fn exit_incomplete(path: &str, summary: &Summary) -> ! {
    if summary.truncated {
        eprintln!("{path}: trace cut mid-record — analyzed up to the cut");
    }
    eprintln!("{path}: incomplete trace (no end-of-run trailer): the writer was interrupted or hit an I/O error");
    exit(1);
}

fn analyze_cmd(args: &[String]) {
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    // Both follow intervals must be strictly positive: a zero poll would
    // spin, a zero idle timeout would bail before the first poll, and a
    // negative value is not a duration. All three are usage errors (exit 2).
    let parse_ms = |flag: &str, default: u64| -> u64 {
        get(flag).map_or(default, |s| {
            let v: u64 = s.parse().unwrap_or_else(|_| {
                eprintln!("bad {flag}: expected a positive integer of milliseconds");
                exit(2)
            });
            if v == 0 {
                eprintln!("bad {flag}: must be positive, got 0");
                exit(2);
            }
            v
        })
    };

    let path = positional(args, "a trace file");
    let follow = args.iter().any(|a| a == "--follow");

    let summary = if follow {
        let idle_ms = parse_ms("--idle-ms", 10_000);
        let poll_ms = parse_ms("--poll-ms", 200);
        follow_trace(&path, idle_ms, poll_ms)
    } else {
        load_summary(&path)
    };

    print!("{}", report(&summary));
    if summary.truncated || !summary.saw_trailer() {
        exit_incomplete(&path, &summary);
    }
}

fn profile_cmd(args: &[String]) {
    let path = positional(args, "a trace file");
    let summary = load_summary(&path);
    print!("{}", profile_report(&summary));
    if summary.truncated || !summary.saw_trailer() {
        exit_incomplete(&path, &summary);
    }
}

/// Tail a growing trace: poll the file for new bytes, parse them
/// incrementally, and print a line per completed round. Returns when the
/// end-of-run trailer arrives or the file stops growing for `idle_ms`.
///
/// A file that does not exist *yet* counts as idle (the writer may still
/// be starting up), but a file that disappears or shrinks *after* bytes
/// were read is gone for good — deleted or rotated under the follower —
/// and waiting out the idle timeout would only hide that. That exits 2
/// immediately (the documented unreadable-trace status).
fn follow_trace(path: &str, idle_ms: u64, poll_ms: u64) -> Summary {
    let mut summary = Summary::default();
    let mut reader = TraceReader::new();
    let mut records: Vec<Record> = Vec::new();
    let mut offset: u64 = 0;
    let mut idle = 0u64;
    let mut buf = Vec::new();
    loop {
        // the writer may not have created the file yet; that counts as idle
        let grew = poll_trace_growth(path, &mut offset, &mut buf, &mut reader, &mut records);
        for record in records.drain(..) {
            if let Record::Event {
                event:
                    Event::RoundEnd {
                        round,
                        migrations,
                        unsatisfied,
                        overload,
                    },
                ..
            } = record
            {
                match overload {
                    Some(phi) => println!(
                        "round {round:>6}: {migrations:>6} migrations, \
                         {unsatisfied:>7} unsatisfied, Φ = {phi}"
                    ),
                    None => println!(
                        "round {round:>6}: {migrations:>6} migrations, \
                         {unsatisfied:>7} unsatisfied"
                    ),
                }
            }
            summary.ingest(&record);
        }
        if summary.saw_trailer() {
            println!("-- run finished (trailer seen) --");
            break;
        }
        if grew {
            idle = 0;
        } else {
            idle += poll_ms;
            if idle >= idle_ms {
                println!("-- no growth for {idle_ms} ms; stopping --");
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(poll_ms));
        }
    }
    if !reader.pending().is_empty() {
        // the writer died inside a write; everything before the cut counted
        summary.truncated = true;
    }
    summary
}

/// Read any bytes of `path` past `*offset` and feed them to `reader`.
/// Returns whether the file grew. A file that does not exist *yet* counts
/// as no growth (the writer may still be starting up); one that disappears
/// or shrinks after bytes were read is gone for good, and a parse error is
/// a corrupt trace — both exit 2, the documented unreadable-trace status.
fn poll_trace_growth(
    path: &str,
    offset: &mut u64,
    buf: &mut Vec<u8>,
    reader: &mut TraceReader,
    records: &mut Vec<Record>,
) -> bool {
    match std::fs::File::open(path) {
        Err(_) if *offset > 0 => {
            eprintln!("{path}: trace file deleted mid-follow");
            exit(2);
        }
        Ok(mut f) => {
            let len = f.metadata().map(|m| m.len()).unwrap_or(0);
            if len < *offset {
                eprintln!("{path}: trace file truncated mid-follow (rotated or rewritten)");
                exit(2);
            }
            if len > *offset {
                f.seek(SeekFrom::Start(*offset)).expect("seek");
                buf.clear();
                (&mut f).take(len - *offset).read_to_end(buf).expect("read");
                *offset = len;
                let chunk = String::from_utf8_lossy(buf);
                if let Err(e) = reader.feed(&chunk, records) {
                    eprintln!("{path}: corrupt trace: {e}");
                    exit(2);
                }
                true
            } else {
                false
            }
        }
        Err(_) => false,
    }
}

// ---------- watch: the live telemetry dashboard ----------

/// How many snapshots the live dashboard keeps for its rate sparklines.
const WATCH_HISTORY: usize = 240;

/// Line-oriented client for the daemon socket (watch live mode).
struct StatsClient {
    reader: BufReader<Box<dyn Read>>,
    writer: Box<dyn Write>,
    line: String,
}

impl StatsClient {
    fn connect_tcp(addr: &str) -> std::io::Result<Self> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(Box::new(stream)),
            writer: Box::new(writer),
            line: String::new(),
        })
    }

    fn connect_unix(path: &str) -> std::io::Result<Self> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(Box::new(stream)),
            writer: Box::new(writer),
            line: String::new(),
        })
    }

    /// One synchronous `{"op":"stats"}` round trip.
    fn poll(&mut self) -> Result<StatsSnapshot, String> {
        self.writer
            .write_all(b"{\"op\":\"stats\"}\n")
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("write failed: {e}"))?;
        self.line.clear();
        let n = self
            .reader
            .read_line(&mut self.line)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".into());
        }
        parse_stats_reply(self.line.trim())
    }
}

/// Extract the snapshot out of a `{"ok":true,...,"stats":{...}}` reply.
/// The daemon serializes the snapshot as the *last* reply field, so the
/// object is exactly the suffix between `"stats":` and the reply's closing
/// brace — no JSON-tree-to-struct conversion needed.
fn parse_stats_reply(reply: &str) -> Result<StatsSnapshot, String> {
    if !reply.starts_with("{\"ok\":true") {
        return Err(format!("stats op failed: {reply}"));
    }
    let idx = reply
        .find("\"stats\":")
        .ok_or_else(|| format!("reply has no stats object: {reply}"))?;
    let inner = reply[idx + "\"stats\":".len()..]
        .strip_suffix('}')
        .ok_or_else(|| format!("malformed stats reply: {reply}"))?;
    serde_json::from_str::<StatsSnapshot>(inner).map_err(|e| format!("bad stats object: {e}"))
}

/// First non-flag token that is not the value of a value-taking flag.
fn watch_positional(args: &[String]) -> Option<String> {
    const VALUE_FLAGS: [&str; 4] = ["--interval-ms", "--idle-ms", "--tcp", "--socket"];
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip = true;
        } else if !a.starts_with("--") {
            return Some(a.clone());
        }
    }
    None
}

fn watch_cmd(args: &[String]) {
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parse_ms = |flag: &str, default: u64| -> u64 {
        get(flag).map_or(default, |s| {
            let v: u64 = s.parse().unwrap_or_else(|_| {
                eprintln!("bad {flag}: expected a positive integer of milliseconds");
                exit(2)
            });
            if v == 0 {
                eprintln!("bad {flag}: must be positive, got 0");
                exit(2);
            }
            v
        })
    };
    let once = args.iter().any(|a| a == "--once");
    let interval_ms = parse_ms("--interval-ms", 1_000);
    let idle_ms = parse_ms("--idle-ms", 10_000);
    match (get("--tcp"), get("--socket")) {
        (Some(_), Some(_)) => {
            eprintln!("watch takes at most one of --tcp ADDR or --socket PATH");
            exit(2);
        }
        (None, None) => {
            let Some(path) = watch_positional(args) else {
                eprintln!("watch needs a trace file, --tcp ADDR, or --socket PATH");
                exit(2);
            };
            watch_trace(&path, once, interval_ms, idle_ms);
        }
        (tcp, socket) => watch_live(tcp.as_deref(), socket.as_deref(), once, interval_ms),
    }
}

/// Poll a live daemon's `stats` op and keep redrawing the dashboard.
fn watch_live(tcp: Option<&str>, socket: Option<&str>, once: bool, interval_ms: u64) {
    let target = tcp.or(socket).expect("caller validated").to_string();
    let mut client = match tcp {
        Some(addr) => StatsClient::connect_tcp(addr),
        None => StatsClient::connect_unix(socket.expect("caller validated")),
    }
    .unwrap_or_else(|e| {
        eprintln!("cannot connect to {target}: {e}");
        exit(2);
    });
    let mut history: Vec<StatsSnapshot> = Vec::new();
    loop {
        match client.poll() {
            Ok(snap) => {
                if history.len() == WATCH_HISTORY {
                    history.remove(0);
                }
                history.push(snap);
                if !once {
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", render_watch(&history, &format!("live {target}")));
                std::io::stdout().flush().ok();
            }
            Err(e) => {
                // a daemon that answered at least once and then went away
                // (e.g. a clean shutdown) ends the watch, not the script
                if history.is_empty() {
                    eprintln!("{target}: {e}");
                    exit(2);
                }
                println!("-- {e}; stopping --");
                return;
            }
        }
        if once {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Render the dashboard from a trace's recorded `StatsSnapshot` records —
/// once from a finished trace, or following a growing one.
fn watch_trace(path: &str, once: bool, interval_ms: u64, idle_ms: u64) {
    if once {
        let summary = load_summary(path);
        if summary.stats_snapshots.is_empty() {
            eprintln!(
                "{path}: no stats snapshots in this trace — record one with \
                 qlb-serve --trace and --stats-every > 0"
            );
            exit(1);
        }
        print!(
            "{}",
            render_watch(&summary.stats_snapshots, &format!("trace {path}"))
        );
        return;
    }
    let mut summary = Summary::default();
    let mut reader = TraceReader::new();
    let mut records: Vec<Record> = Vec::new();
    let mut offset: u64 = 0;
    let mut idle = 0u64;
    let mut buf = Vec::new();
    let mut rendered = 0usize;
    loop {
        let grew = poll_trace_growth(path, &mut offset, &mut buf, &mut reader, &mut records);
        for record in records.drain(..) {
            summary.ingest(&record);
        }
        if summary.stats_snapshots.len() > rendered {
            rendered = summary.stats_snapshots.len();
            print!(
                "\x1b[2J\x1b[H{}",
                render_watch(
                    &summary.stats_snapshots,
                    &format!("trace {path} (following)")
                )
            );
            std::io::stdout().flush().ok();
        }
        if summary.saw_trailer() {
            println!("-- run finished (trailer seen) --");
            break;
        }
        if grew {
            idle = 0;
        } else {
            idle += interval_ms;
            if idle >= idle_ms {
                println!("-- no growth for {idle_ms} ms; stopping --");
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
    }
    if summary.stats_snapshots.is_empty() {
        eprintln!(
            "{path}: no stats snapshots in this trace — record one with \
             qlb-serve --trace and --stats-every > 0"
        );
        exit(1);
    }
}

/// A fixed-width `[####......]` fill bar for a fraction in `[0, 1]`.
fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0) * width as f64).round() as usize).min(width);
    format!("[{}{}]", "#".repeat(filled), ".".repeat(width - filled))
}

/// One dashboard frame: newest snapshot in full, rate sparklines over the
/// retained history.
fn render_watch(history: &[StatsSnapshot], source: &str) -> String {
    let snap = history.last().expect("render_watch needs a snapshot");
    let mut out = format!(
        "qlb-serve telemetry — {source}\n\
         tick {:>8}   uptime {:>9.1} s   {} snapshots retained\n",
        snap.tick,
        snap.uptime_ms as f64 / 1e3,
        history.len(),
    );
    out.push_str(&format!(
        "placement: {} active, {} unsatisfied; admission rejects \
         pool {} / capacity {} / draining {}\n",
        snap.active,
        snap.unsatisfied,
        snap.rejects_pool,
        snap.rejects_capacity,
        snap.rejects_draining,
    ));
    let util = if snap.budget_max > 0 {
        snap.budget as f64 / snap.budget_max as f64
    } else {
        0.0
    };
    out.push_str(&format!(
        "rebalancer: backlog {:>5}   budget {}/{} {} {:>5.1}%   {} starved ticks\n",
        snap.backlog,
        snap.budget,
        snap.budget_max,
        bar(util, 10),
        util * 100.0,
        snap.starved_ticks,
    ));
    if !snap.rates.is_empty() {
        out.push_str("rates                 1s/s       10s/s       60s/s   1s history\n");
        for r in &snap.rates {
            let series: Vec<f64> = history
                .iter()
                .filter_map(|s| s.rates.iter().find(|x| x.name == r.name).map(|x| x.r1s))
                .collect();
            out.push_str(&format!(
                "  {:<16} {:>8.1} {:>11.1} {:>11.1}   {}\n",
                r.name,
                r.r1s,
                r.r10s,
                r.r60s,
                sparkline_fit(&series, 30),
            ));
        }
    }
    if !snap.latency.is_empty() {
        out.push_str("latency (windowed quantiles):\n");
        for d in &snap.latency {
            out.push_str(&format!(
                "  {:<16} p50 {:>8.1} µs   p95 {:>8.1} µs   p99 {:>8.1} µs   ({} samples)\n",
                d.name,
                us(d.p50_ns),
                us(d.p95_ns),
                us(d.p99_ns),
                d.count,
            ));
        }
    }
    if !snap.classes.is_empty() {
        out.push_str("per-class SLO violation (10 s window | lifetime):\n");
        for c in &snap.classes {
            out.push_str(&format!(
                "  class {:<4} {} {:>5.1}% | {:>5.1}%   ({} active, {} unsatisfied)\n",
                c.class,
                bar(c.violation_windowed, 20),
                c.violation_windowed * 100.0,
                c.violation_total * 100.0,
                c.active,
                c.unsatisfied,
            ));
        }
    }
    out
}

/// The full digest: the shared [`Summary::render`] body plus the Φ
/// trajectory sparkline and churn/staleness summaries.
fn report(summary: &Summary) -> String {
    let mut out = String::new();
    if !summary.overload_series.is_empty() {
        let phi: Vec<f64> = summary.overload_series.iter().map(|&v| v as f64).collect();
        out.push_str(&format!("Φ trajectory: {}\n", sparkline_fit(&phi, 60)));
    }
    out.push_str(&summary.render());
    let churn: u64 = summary
        .counters
        .get("churn_episodes")
        .copied()
        .unwrap_or_else(|| {
            summary
                .events_by_kind
                .get("ChurnEpisode")
                .copied()
                .unwrap_or(0)
        });
    let arrivals = summary.counters.get("arrivals").copied().unwrap_or(0);
    let departures = summary.counters.get("departures").copied().unwrap_or(0);
    if churn + arrivals + departures > 0 {
        out.push_str(&format!(
            "churn: {churn} episodes, {arrivals} arrivals, {departures} departures\n"
        ));
    }
    if let Some(&staleness) = summary.gauges.get("snapshot_staleness") {
        let stale = summary
            .counters
            .get("stale_snapshots")
            .copied()
            .unwrap_or(0);
        out.push_str(&format!(
            "staleness: last snapshot staleness {staleness}, {stale} stale snapshots seen\n"
        ));
    }
    out
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// The `profile` digest: per-shard utilization table, barrier-skew
/// percentiles, the dispatch wake-latency histogram, and the sampled
/// top-k congestion heatmap.
fn profile_report(summary: &Summary) -> String {
    let mut out = String::new();
    if summary.shards.is_empty() {
        out.push_str(
            "no per-shard profile in this trace — record one with a threaded \
             executor (qlb-sim --executor threaded) and shard timing on\n",
        );
    } else {
        // The longest shard of every pooled round is exactly the aggregate
        // compute phase (the critical path), so per-shard busy time over
        // that total is the utilization of the parallel section.
        let critical_ns = summary.phases.get("compute").map_or(0, |&(_, t, _)| t);
        let rounds = summary.shards.iter().map(|s| s.0).max().unwrap_or(0);
        out.push_str(&format!(
            "per-shard profile: {} shards over {} pooled rounds (critical path {:.3} ms)\n",
            summary.shards.len(),
            rounds,
            ms(critical_ns),
        ));
        out.push_str("  shard    rounds     busy ms   worst round µs   utilization\n");
        for (i, &(rounds, total_ns, max_ns)) in summary.shards.iter().enumerate() {
            let util = if critical_ns > 0 {
                100.0 * total_ns as f64 / critical_ns as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {i:>5}  {rounds:>8}  {:>10.3}  {:>15.1}  {util:>11.1}%\n",
                ms(total_ns),
                us(max_ns),
            ));
        }
        if let Some(util) = summary.mean_round_util_pct {
            // the table above charges every round against the summed
            // critical path, so a few OS-stalled rounds drag all shards
            // down; this is the round-by-round balance of the sharding
            out.push_str(&format!(
                "mean per-round utilization: {util:.1}% \
                 (Σ shard compute / (shards × slowest), averaged per round)\n"
            ));
        }
    }
    if let Some(skew) = summary.latency_hists.get("barrier_skew") {
        out.push_str(&format!(
            "barrier skew (max−min shard compute per round): p50 {:.1} µs, p95 {:.1} µs, \
             max {:.1} µs over {} rounds\n",
            us(skew.p50_ns),
            us(skew.p95_ns),
            us(skew.max_ns),
            skew.count,
        ));
    }
    if let Some(wake) = summary.latency_hists.get("dispatch_wake") {
        out.push_str(&format!(
            "dispatch wake latency (epoch publish → worker start): p50 {:.1} µs, \
             p95 {:.1} µs, max {:.1} µs over {} wakes\n",
            us(wake.p50_ns),
            us(wake.p95_ns),
            us(wake.max_ns),
            wake.count,
        ));
        let peak = wake.buckets.iter().map(|&(_, c)| c).max().unwrap_or(0);
        for &(bucket, count) in &wake.buckets {
            let limit_ns = qlb_obs::Histogram::bucket_limit(bucket as usize);
            let bar = "#".repeat(((count * 40).div_ceil(peak.max(1))) as usize);
            out.push_str(&format!(
                "  < {:>10.1} µs  {count:>8}  {bar}\n",
                us(limit_ns)
            ));
        }
    }
    out.push_str(&topk_heatmap(summary));
    out
}

/// Render the sampled top-k congestion series as one sparkline row per
/// resource (hottest first), each point the resource's load at that sample
/// (0 when it fell out of the top k).
fn topk_heatmap(summary: &Summary) -> String {
    if summary.topk.is_empty() {
        return String::new();
    }
    let samples = &summary.topk;
    // resources ever seen, keyed by their peak load
    let mut peak: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for (_, entries) in samples {
        for &(resource, load) in entries {
            let p = peak.entry(resource).or_insert(0);
            *p = (*p).max(load);
        }
    }
    let mut hottest: Vec<(u64, u64)> = peak.into_iter().collect();
    hottest.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let shown = hottest.len().min(10);
    let (first, last) = (samples[0].0, samples[samples.len() - 1].0);
    let mut out = format!(
        "top-k congestion: {} samples over rounds {first}..={last}, {} hot resources \
         ({} shown, hottest first)\n",
        samples.len(),
        hottest.len(),
        shown,
    );
    for &(resource, peak_load) in &hottest[..shown] {
        let series: Vec<f64> = samples
            .iter()
            .map(|(_, entries)| {
                entries
                    .iter()
                    .find(|&&(r, _)| r == resource)
                    .map_or(0.0, |&(_, load)| load as f64)
            })
            .collect();
        out.push_str(&format!(
            "  r{resource:<6} {} peak {peak_load}\n",
            sparkline_fit(&series, 50)
        ));
    }
    out
}

// ---------- spans: causal request spans + lifecycles ----------

/// Quantile of a sorted sample set (nearest-rank; 0 when empty).
fn quantile_of(sorted: &[u64], f: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * f).round() as usize;
    sorted[idx]
}

fn spans_cmd(args: &[String]) {
    let path = positional(args, "a trace file");
    let slowest: usize = args
        .iter()
        .position(|a| a == "--slowest")
        .and_then(|i| args.get(i + 1))
        .map_or(10, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad --slowest");
                exit(2)
            })
        });
    let ticket: Option<u64> = args
        .iter()
        .position(|a| a == "--ticket")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad --ticket");
                exit(2)
            })
        });
    let summary = load_summary(&path);
    if summary.spans.is_empty() {
        eprintln!(
            "{path}: no causal spans in this trace — record them with \
             qlb-serve --trace and --span-sample > 0"
        );
        exit(1);
    }
    print!("{}", spans_report(&summary, slowest, ticket));
    if summary.truncated || !summary.saw_trailer() {
        exit_incomplete(&path, &summary);
    }
}

/// The spans digest: verdict counts, per-phase latency breakdown,
/// slowest-spans table, and ticket lifecycles (admission → moves →
/// depart).
fn spans_report(summary: &Summary, slowest: usize, only_ticket: Option<u64>) -> String {
    let spans = &summary.spans;
    let mut out = format!("causal spans: {} retained\n", spans.len());

    // op / verdict counts
    let mut by_kind: std::collections::BTreeMap<(String, String), u64> =
        std::collections::BTreeMap::new();
    for s in spans {
        *by_kind
            .entry((s.op.clone(), s.verdict.clone()))
            .or_insert(0) += 1;
    }
    for ((op, verdict), count) in &by_kind {
        out.push_str(&format!("  {op:<8} {verdict:<10} {count:>8}\n"));
    }

    // per-phase latency breakdown over wire-op spans (migrations are
    // continuation stamps with no clocks of their own)
    let wire: Vec<_> = spans.iter().filter(|s| s.op != "migrate").collect();
    if !wire.is_empty() {
        let mut cols: [(&str, Vec<u64>); 5] = [
            ("parse", Vec::new()),
            ("admit", Vec::new()),
            ("probe", Vec::new()),
            ("reply", Vec::new()),
            ("total", Vec::new()),
        ];
        for s in &wire {
            cols[0].1.push(s.parse_ns);
            cols[1].1.push(s.admit_ns);
            cols[2].1.push(s.probe_ns);
            cols[3].1.push(s.reply_ns);
            cols[4].1.push(s.total_ns);
        }
        out.push_str(&format!(
            "per-phase latency over {} sampled wire ops:\n  phase        p50 µs      p95 µs      p99 µs\n",
            wire.len()
        ));
        for (name, mut v) in cols {
            v.sort_unstable();
            out.push_str(&format!(
                "  {name:<8} {:>9.2} {:>11.2} {:>11.2}\n",
                us(quantile_of(&v, 0.50)),
                us(quantile_of(&v, 0.95)),
                us(quantile_of(&v, 0.99)),
            ));
        }

        // slowest spans
        let mut by_total: Vec<_> = wire.clone();
        by_total.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.id.cmp(&b.id)));
        let shown = by_total.len().min(slowest.max(1));
        out.push_str(&format!(
            "slowest {shown} spans:\n  span id  op       verdict      total µs   parse    admit    probe    reply   probes\n"
        ));
        for s in &by_total[..shown] {
            out.push_str(&format!(
                "  {:>7}  {:<8} {:<10} {:>9.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8}\n",
                s.id,
                s.op,
                s.verdict,
                us(s.total_ns),
                us(s.parse_ns),
                us(s.admit_ns),
                us(s.probe_ns),
                us(s.reply_ns),
                s.probes,
            ));
        }
    }

    // lifecycles: group by ticket, order by span id (arrival order)
    let mut lives: std::collections::BTreeMap<u64, Vec<&qlb_obs::SpanRecord>> =
        std::collections::BTreeMap::new();
    for s in spans {
        if let Some(t) = s.ticket {
            if only_ticket.is_none_or(|want| want == t) {
                lives.entry(t).or_default().push(s);
            }
        }
    }
    lives.values_mut().for_each(|v| v.sort_by_key(|s| s.id));
    // only stories with some history are interesting (unless asked for)
    let stories: Vec<_> = lives
        .iter()
        .filter(|(_, v)| only_ticket.is_some() || v.len() > 1)
        .collect();
    if !stories.is_empty() {
        const MAX_STORIES: usize = 20;
        let shown = stories.len().min(MAX_STORIES);
        out.push_str(&format!(
            "lifecycles (admission → moves → depart), {shown} of {} shown:\n",
            stories.len()
        ));
        for (ticket, story) in &stories[..shown] {
            let mut steps: Vec<String> = Vec::new();
            for s in story.iter() {
                let step = match (s.op.as_str(), s.verdict.as_str()) {
                    ("place", "admitted") => match s.resource {
                        Some(r) => format!("admitted r{r}"),
                        None => "admitted".to_string(),
                    },
                    ("place", v) => format!("rejected ({v})"),
                    ("migrate", _) => match (s.from, s.resource) {
                        (Some(a), Some(b)) => format!("moved r{a}->r{b}"),
                        _ => "moved".to_string(),
                    },
                    ("depart", "departed") => "departed".to_string(),
                    (op, v) => format!("{op} ({v})"),
                };
                steps.push(step);
            }
            let ids: Vec<String> = story.iter().map(|s| s.id.to_string()).collect();
            out.push_str(&format!(
                "  ticket {ticket}: {}  [span ids {}]\n",
                steps.join(" -> "),
                ids.join(",")
            ));
        }
    } else if let Some(t) = only_ticket {
        out.push_str(&format!("no spans for ticket {t}\n"));
    }
    out
}

// ---------- blackbox: flight-recorder dump reader ----------

fn blackbox_cmd(args: &[String]) {
    let target = positional(args, "a black-box file or flight-recorder directory");
    // a directory means "the newest dump in it"
    let path = if std::fs::metadata(&target)
        .map(|m| m.is_dir())
        .unwrap_or(false)
    {
        let mut dumps: Vec<std::path::PathBuf> = std::fs::read_dir(&target)
            .map(|rd| {
                rd.filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| {
                        p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.starts_with("blackbox-") && n.ends_with(".jsonl"))
                    })
                    .collect()
            })
            .unwrap_or_default();
        dumps.sort();
        match dumps.pop() {
            Some(p) => p.to_string_lossy().into_owned(),
            None => {
                eprintln!("{target}: no blackbox-*.jsonl dumps in this directory");
                exit(1);
            }
        }
    } else {
        target
    };
    let summary = load_summary(&path);
    let Some((trigger, tick, uptime_ms, spans, dropped)) = summary.blackbox.clone() else {
        eprintln!("{path}: not a black-box dump (no BlackBox header record)");
        exit(1);
    };
    println!(
        "black box {path}\n  trigger: {trigger} at tick {tick} (uptime {:.1} s)\n  \
         evidence: {spans} spans, {} tick marks retained; {dropped} older records \
         dropped by the flight ring",
        uptime_ms as f64 / 1e3,
        summary.tick_marks.len(),
    );
    if !summary.tick_marks.is_empty() {
        const SHOW: usize = 10;
        let marks = &summary.tick_marks;
        let from = marks.len().saturating_sub(SHOW);
        println!(
            "  last {} ticks:    tick   backlog    budget    active   unsatisfied",
            marks.len() - from
        );
        for &(tick, backlog, budget, active, unsatisfied) in &marks[from..] {
            println!(
                "             {tick:>11} {backlog:>9} {budget:>9} {active:>9} {unsatisfied:>13}"
            );
        }
    }
    if !summary.spans.is_empty() {
        print!("{}", spans_report(&summary, 5, None));
    }
}

/// Percentage change from `a` to `b` (None when the baseline is zero).
fn pct(a: u64, b: u64) -> Option<f64> {
    (a > 0).then(|| 100.0 * (b as f64 - a as f64) / a as f64)
}

fn fmt_pct(a: u64, b: u64) -> String {
    match pct(a, b) {
        Some(p) => format!("{p:+.1}%"),
        None if b > 0 => "+∞".into(),
        None => "±0.0%".into(),
    }
}

fn compare_cmd(args: &[String]) {
    let threshold: f64 = args
        .iter()
        .position(|a| a == "--threshold")
        .and_then(|i| args.get(i + 1))
        .map_or(10.0, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad --threshold");
                exit(2)
            })
        });
    // `--threshold 10` leaves its value as a positional-looking token;
    // filter it out by position.
    let mut positionals = Vec::new();
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--threshold" {
            skip_next = true;
        } else if !a.starts_with("--") {
            positionals.push(a.clone());
        }
    }
    if positionals.len() != 2 {
        eprintln!("compare needs exactly two trace files; see qlb-trace --help");
        exit(2);
    }
    let (path_a, path_b) = (&positionals[0], &positionals[1]);
    let a = load_summary(path_a);
    let b = load_summary(path_b);
    for (path, s) in [(path_a, &a), (path_b, &b)] {
        if s.truncated || !s.saw_trailer() {
            eprintln!("{path}: incomplete trace — refusing to gate on a partial run");
            exit(1);
        }
    }

    println!("comparing {path_a} (baseline) → {path_b} (candidate), threshold ±{threshold}%");

    // Deterministic protocol work: these are reproducible across machines,
    // so they are the regression gate. Wall-clock deltas below are
    // informational only.
    let mut regressions: Vec<String> = Vec::new();
    let gated = ["rounds", "migrations", "messages_sent", "weight_moved"];
    println!("protocol work (gated):");
    for name in gated {
        let (va, vb) = (counter_of(&a, name), counter_of(&b, name));
        if va == 0 && vb == 0 {
            continue;
        }
        let delta = fmt_pct(va, vb);
        let exceeded = match pct(va, vb) {
            Some(p) => p > threshold,
            None => vb > 0, // sprang from zero: always over threshold
        };
        let mark = if exceeded { "  ← REGRESSION" } else { "" };
        println!("  {name:<14} {va:>12} → {vb:>12}  ({delta}){mark}");
        if exceeded {
            regressions.push(format!("{name} {delta} exceeds +{threshold}%"));
        }
    }
    if let (Some(ra), Some(rb)) = (convergence_round(&a), convergence_round(&b)) {
        println!("  convergence round: {ra} → {rb}");
    }

    // Φ-trajectory ratio: area under the overload-potential curve.
    let (phi_a, phi_b) = (phi_area(&a), phi_area(&b));
    if phi_a > 0.0 || phi_b > 0.0 {
        let ratio = if phi_a > 0.0 {
            phi_b / phi_a
        } else {
            f64::INFINITY
        };
        println!("Φ-trajectory area: {phi_a:.0} → {phi_b:.0} (ratio {ratio:.3})");
    }

    // Per-phase wall-clock breakdown (machine-dependent, never gated).
    let phase_names: std::collections::BTreeSet<&String> =
        a.phases.keys().chain(b.phases.keys()).collect();
    if !phase_names.is_empty() {
        println!("phase breakdown (wall-clock, informational):");
        for name in phase_names {
            let ta = a.phases.get(name).map_or(0, |&(_, t, _)| t);
            let tb = b.phases.get(name).map_or(0, |&(_, t, _)| t);
            println!(
                "  {name:<12} {:>10.3} ms → {:>10.3} ms  ({})",
                ms(ta),
                ms(tb),
                fmt_pct(ta, tb)
            );
        }
    }
    // Snapshot-pipeline counters (informational).
    for name in [
        "snapshots_sent",
        "stale_snapshots",
        "arrivals",
        "departures",
    ] {
        let (va, vb) = (counter_of(&a, name), counter_of(&b, name));
        if va + vb > 0 {
            println!("  {name:<14} {va:>12} → {vb:>12}  ({})", fmt_pct(va, vb));
        }
    }

    if regressions.is_empty() {
        println!("no regression beyond ±{threshold}% on gated counters");
    } else {
        for r in &regressions {
            println!("REGRESSION: {r}");
        }
        exit(1);
    }
}

fn counter_of(s: &Summary, name: &str) -> u64 {
    s.counters.get(name).copied().unwrap_or(0)
}

/// Round of the last `RoundEnd` event — the convergence round for runs
/// that converged (and the cutoff round otherwise).
fn convergence_round(s: &Summary) -> Option<u64> {
    (s.rounds > 0).then(|| s.rounds - 1)
}

/// Area under the Φ (overload-potential) trajectory.
fn phi_area(s: &Summary) -> f64 {
    s.overload_series.iter().map(|&v| v as f64).sum()
}

fn print_help() {
    println!(
        "qlb-trace — inspect and compare qlb JSONL metrics traces\n\n\
         USAGE:\n  qlb-trace FILE.jsonl                analyze a finished or interrupted trace\n  \
         qlb-trace FILE.jsonl --follow       tail a trace that is still being written\n  \
         qlb-trace profile FILE.jsonl        per-shard utilization, barrier skew, wake\n                                      \
         latency, and the top-k congestion heatmap\n  \
         qlb-trace compare A.jsonl B.jsonl   diff two runs (baseline → candidate)\n  \
         qlb-trace watch TARGET              live telemetry dashboard: rate sparklines,\n                                      \
         latency digests, per-class SLO violation\n                                      \
         bars, rebalancer budget utilization\n  \
         qlb-trace spans FILE.jsonl          causal request spans: per-phase latency\n                                      \
         breakdown (parse/admit/probe/reply), the\n                                      \
         slowest-spans table, and per-ticket life-\n                                      \
         cycles (admission → moves → depart)\n                                      \
         [--slowest N] [--ticket T]\n  \
         qlb-trace blackbox PATH             read a flight-recorder dump (or the newest\n                                      \
         blackbox-*.jsonl when PATH is a directory):\n                                      \
         trigger, tick context, retained spans\n\n\
         WATCH TARGETS:\n  \
         --tcp ADDR       poll a live daemon's {{\"op\":\"stats\"}} over TCP\n  \
         --socket PATH    same over a Unix socket\n  \
         FILE.jsonl       replay StatsSnapshot records from a qlb-serve trace\n                   \
         (follows a growing trace; --once renders the newest and exits,\n                   \
         status 1 if the trace has no snapshots)\n  \
         --interval-ms N  refresh interval (default 1000)\n\n\
         OPTIONS:\n  --follow         poll the file and print each round as it lands\n  \
         --idle-ms N      stop following after N ms without growth (default 10000;\n                   \
         must be a positive integer, else exit 2)\n  \
         --poll-ms N      polling interval in ms (default 200; must be a positive\n                   \
         integer, else exit 2)\n  \
         --threshold PCT  compare: flag gated counters that grew more than PCT%\n                   \
         (default 10); wall-clock deltas are never gated\n\n\
         Traces come from qlb-sim --metrics-stream FILE.jsonl (live) or\n\
         --metrics-out FILE.jsonl (post hoc); both formats are identical.\n\
         Record the profile inputs with qlb-sim --executor threaded\n\
         [--topk-resources K] [--shard-timing on|off].\n\n\
         EXIT STATUS: 0 clean; 1 incomplete trace (no end-of-run trailer —\n\
         interrupted writer or latched I/O error) or compare regression;\n\
         2 usage error or unreadable/corrupt trace, including a trace file\n\
         deleted or truncated while --follow was tailing it."
    );
}
