//! **E17 / Table 14 — topology-restricted sampling.**
//!
//! Users may only probe graph neighbours of their current resource. Two
//! regimes:
//!
//! * from a **uniform random** start, the crowd-normalized damped kernel
//!   (no moves by satisfied users) usually suffices — local surpluses sit
//!   next to local slack;
//! * from a **hotspot**, sparse topologies need the diffusion variant
//!   (satisfied users drift): the surplus percolates at the graph's
//!   diffusion speed, so convergence time orders by diameter —
//!   complete < random < torus < ring.
//!
//! The table sweeps four standard topologies at identical load and reports
//! both kernels; the deadlock column counts runs the paper's plain kernel
//! could not finish (the topological blocking phenomenon).

use crate::ExperimentResult;
use qlb_core::{Protocol, ResourceId, State};
use qlb_engine::RunConfig;
use qlb_stats::{Summary, Table};
use qlb_topo::{Graph, GraphDiffusion, GraphSlackDamped};
use qlb_workload::{CapacityDist, Placement, Scenario};

/// Run E17.
pub fn run(quick: bool) -> ExperimentResult {
    let (m, seeds, cutoff) = if quick {
        (64usize, 3u32, 100_000u64)
    } else {
        (256, 10, 1_000_000)
    };
    let side = (m as f64).sqrt() as usize;
    let m = side * side; // keep the torus square
    let n = m * 8; // cap 10 → γ = 1.25
    let sc = Scenario::single_class(
        "e17",
        n,
        m,
        CapacityDist::Constant { cap: 10 },
        1.25,
        Placement::Hotspot,
    );

    let topologies: Vec<(&str, Graph)> = vec![
        ("ring", Graph::ring(m)),
        ("torus", Graph::torus(side, side)),
        (
            "random (ER, deg ≈ 8)",
            Graph::erdos_renyi(m, 8.0 / m as f64, 1),
        ),
        ("complete", Graph::complete(m)),
    ];

    let mut table = Table::new(
        format!("Table 14 — topologies (n = {n}, m = {m}, γ = 1.25): random start vs hotspot"),
        &[
            "topology",
            "diameter",
            "mean deg",
            "damped, random start: rounds",
            "deadlocked",
            "diffusion, hotspot: rounds",
            "migrations/user",
        ],
    );
    let mut diffusion_rounds: Vec<(String, f64)> = Vec::new();

    for (name, graph) in topologies {
        let diameter = graph.diameter().expect("connected");
        let mean_deg = graph.mean_degree();

        // Plain kernel from a random start.
        let damped = GraphSlackDamped::new(graph.clone());
        let mut damped_rounds = Summary::new();
        let mut deadlocked = 0u32;
        for seed in 0..seeds as u64 {
            let (inst, _) = sc.build(seed).expect("feasible");
            let state = State::random(&inst, qlb_rng::mix64_pair(seed, 0xE17));
            let out = qlb_engine::run(&inst, state, &damped, RunConfig::new(seed, cutoff));
            if out.converged {
                damped_rounds.push(out.rounds as f64);
            } else {
                deadlocked += 1;
            }
        }

        // Diffusion kernel from the hotspot.
        let diffusion = GraphDiffusion::new(graph);
        let mut diff_rounds = Summary::new();
        let mut migrations = Summary::new();
        for seed in 0..seeds as u64 {
            let (inst, _) = sc.build(seed).expect("feasible");
            let state = State::all_on(&inst, ResourceId(0));
            let out = qlb_engine::run(&inst, state, &diffusion, RunConfig::new(seed, cutoff));
            assert!(out.converged, "diffusion must converge on {name}");
            diff_rounds.push(out.rounds as f64);
            migrations.push(out.migrations as f64 / n as f64);
        }
        diffusion_rounds.push((name.to_string(), diff_rounds.mean()));

        table.row(vec![
            name.to_string(),
            diameter.to_string(),
            format!("{mean_deg:.1}"),
            if damped_rounds.count() == 0 {
                "—".to_string()
            } else {
                format!("{:.1} ± {:.1}", damped_rounds.mean(), damped_rounds.ci95())
            },
            format!("{deadlocked}/{seeds}"),
            format!("{:.0} ± {:.0}", diff_rounds.mean(), diff_rounds.ci95()),
            format!("{:.2}", migrations.mean()),
        ]);
    }

    let ring = diffusion_rounds[0].1;
    let torus = diffusion_rounds[1].1;
    let complete = diffusion_rounds[3].1;
    let notes = vec![format!(
        "shape check: hotspot dispersal time orders by diameter — ring {ring:.0} > torus \
         {torus:.0} > complete {complete:.0} rounds ({}); sparse topologies need the \
         diffusion rule (the plain kernel's deadlocks are the topological blocking \
         phenomenon, cf. the qlb-topo deadlock test)",
        if ring > torus && torus > complete {
            "PASS"
        } else {
            "FAIL"
        }
    )];

    let _: &dyn Protocol = &GraphDiffusion::new(Graph::ring(9)); // trait-object sanity
    ExperimentResult {
        id: "E17",
        artifact: "Table 14",
        title: "Topology-restricted sampling: diffusion across graph families",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 4);
        assert_eq!(res.id, "E17");
    }
}
