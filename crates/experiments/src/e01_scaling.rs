//! **E1 / Table 1 — convergence rounds vs `n` (logarithmic scaling).**
//!
//! Reconstructed claim T1: with constant slack factor (`γ = 1.25`) the
//! slack-damped protocol reaches a legal state in `O(log n)` expected
//! rounds. We sweep `n` over powers of two with `m = n/8` capacity-10
//! resources (so `γ` is exactly 1.25 at every size) from the hotspot start,
//! and fit mean rounds against `log₂ n`: the shape check passes when the
//! log-fit `R²` is high and doubling `n` adds a roughly constant number of
//! rounds.

use crate::common::{mean_ci, pct, sweep_scenario};
use crate::ExperimentResult;
use qlb_core::SlackDamped;
use qlb_stats::{log_fit, Table};
use qlb_workload::{CapacityDist, Placement, Scenario};

/// Run E1.
pub fn run(quick: bool) -> ExperimentResult {
    let (exps, seeds): (std::ops::RangeInclusive<u32>, u32) =
        if quick { (10..=13, 5) } else { (10..=18, 20) };
    let max_rounds = 100_000;

    let mut table = Table::new(
        "Table 1 — rounds to convergence vs n (slack-damped, γ = 1.25, m = n/8, hotspot start)",
        &[
            "n",
            "m",
            "rounds (mean ± 95% CI)",
            "min",
            "max",
            "migrations/user",
            "converged",
        ],
    );
    let mut points = Vec::new();

    for e in exps {
        let n = 1usize << e;
        let m = n / 8;
        let sc = Scenario::single_class(
            format!("e1-n{n}"),
            n,
            m,
            CapacityDist::Constant { cap: 10 },
            1.25,
            Placement::Hotspot,
        );
        let sweep = sweep_scenario(
            &sc,
            &|_| Box::new(SlackDamped::default()),
            seeds,
            max_rounds,
        );
        points.push((n as f64, sweep.rounds.mean()));
        table.row(vec![
            n.to_string(),
            m.to_string(),
            mean_ci(&sweep.rounds),
            format!("{:.0}", sweep.rounds.min()),
            format!("{:.0}", sweep.rounds.max()),
            format!("{:.2}", sweep.migrations.mean() / n as f64),
            pct(sweep.converged_frac()),
        ]);
    }

    let mut notes = Vec::new();
    if let Some(fit) = log_fit(&points) {
        notes.push(format!(
            "log-fit: rounds ≈ {:.2}·log2(n) + {:.2}, R² = {:.4} (shape check: R² ≥ 0.9 ⇒ \
             logarithmic growth confirmed: {})",
            fit.slope,
            fit.intercept,
            fit.r_squared,
            if fit.r_squared >= 0.9 { "PASS" } else { "FAIL" }
        ));
    }

    ExperimentResult {
        id: "E1",
        artifact: "Table 1",
        title: "Convergence rounds vs n (logarithmic scaling of the main theorem)",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.id, "E1");
        assert_eq!(res.tables.len(), 1);
        assert_eq!(res.tables[0].num_rows(), 4); // 2^10..2^13
        assert!(!res.notes.is_empty());
        assert!(res.notes[0].contains("log-fit"));
    }
}
