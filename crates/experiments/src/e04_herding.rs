//! **E4 / Figure 2 — herding: what the migration coin buys.**
//!
//! Reconstructed claim T3: undamped concurrent migration herds — users
//! chasing the same free slots *overshoot* them, creating fresh overload
//! that then has to be drained again. The right metric is therefore not
//! only time-to-convergence but **overload creation**: the total positive
//! increments of the potential, `Σ_t (Φ_{t+1} − Φ_t)⁺`. A migration into a
//! resource can only create overload when several movers land together;
//! the damped coin keeps the *expected* inflow below every resource's free
//! capacity, so it creates almost none, while the blind kernel (which
//! ignores congestion entirely) never stops creating it and fails to
//! converge outright on tight instances.
//!
//! Instance: the **packed thin-slack** construction. Capacity-8 resources;
//! all but one sit at load 7 (one free slot each — *thin* slack), and the
//! remaining `m + 7` users pile on resource 0 (`Δ = 0` overall). The
//! unsatisfied crowd (`≈ m` users) then contends for `m − 1` single slots:
//! with undamped migration the expected arrivals per open resource is
//! `≈ U/m ≈ 1` against slack 1, so collisions — freshly created overload —
//! happen constantly; the damped coin divides arrivals by the capacity
//! and makes collisions rare.

use crate::ExperimentResult;
use qlb_core::{BlindUniform, ConditionalUniform, Protocol, SlackDamped};
use qlb_core::{Instance, ResourceId, State};
use qlb_engine::RunConfig;
use qlb_stats::{Summary, Table};

/// Total overload created over a run: `Σ_t (Φ_{t+1} − Φ_t)⁺`.
fn overload_created(overloads: &[u64]) -> u64 {
    overloads
        .windows(2)
        .map(|w| w[1].saturating_sub(w[0]))
        .sum()
}

/// The packed thin-slack instance: `m` capacity-8 resources; resources
/// `1..m` hold 7 users each (slack exactly 1), the remaining `m + 7` users
/// crowd resource 0. Total demand equals total capacity (`Δ = 0`).
fn packed_state(m: usize) -> (Instance, State) {
    let n = 8 * m;
    let inst = Instance::uniform(n, m, 8).expect("valid");
    let mut assignment = Vec::with_capacity(n);
    for r in 1..m {
        assignment.extend(std::iter::repeat_n(ResourceId(r as u32), 7));
    }
    assignment.resize(n, ResourceId(0));
    let state = State::new(&inst, assignment).expect("valid");
    debug_assert_eq!(state.load(ResourceId(0)) as usize, m + 7);
    (inst, state)
}

/// Run E4.
pub fn run(quick: bool) -> ExperimentResult {
    let (m, cutoff, seeds) = if quick {
        (64usize, 8_000u64, 3u32)
    } else {
        (512, 60_000, 10)
    };
    let n = 8 * m; // Δ = 0: total capacity equals demand

    let protos: Vec<(&str, Box<dyn Protocol>)> = vec![
        ("blind-uniform", Box::new(BlindUniform)),
        ("conditional-uniform", Box::new(ConditionalUniform)),
        ("slack-damped", Box::new(SlackDamped::default())),
    ];

    // Series: unsatisfied count at log-spaced checkpoints (seed 0).
    let checkpoints: Vec<u64> = (0..)
        .map(|i| 1u64 << i)
        .take_while(|&c| c <= cutoff)
        .collect();
    let mut series = Table::new(
        format!("Figure 2 — unsatisfied users over rounds (packed thin-slack, n = {n}, m = {m}, c_r = 8, Δ = 0, seed 0)"),
        &["round", "blind-uniform", "conditional-uniform", "slack-damped"],
    );
    let mut per_proto_series: Vec<Vec<u64>> = Vec::new();
    for (_, proto) in &protos {
        let (inst, state) = packed_state(m);
        let out = qlb_engine::run(
            &inst,
            state,
            proto.as_ref(),
            RunConfig::new(0, cutoff).with_trace(),
        );
        let trace = out.trace.expect("trace requested");
        per_proto_series.push(
            checkpoints
                .iter()
                .map(|&c| {
                    trace
                        .rounds
                        .iter()
                        .take_while(|r| r.round <= c)
                        .last()
                        .map_or(0, |r| r.unsatisfied)
                })
                .collect(),
        );
    }
    for (i, &c) in checkpoints.iter().enumerate() {
        series.row(vec![
            c.to_string(),
            per_proto_series[0][i].to_string(),
            per_proto_series[1][i].to_string(),
            per_proto_series[2][i].to_string(),
        ]);
    }

    // Summary over seeds: convergence + overload creation.
    let mut summary = Table::new(
        format!(
            "Figure 2 summary — convergence and overload creation within {cutoff} rounds, \
             {seeds} seeds"
        ),
        &[
            "protocol",
            "converged",
            "mean rounds (converged)",
            "overload created Σ(ΔΦ)⁺ (mean)",
            "per migration",
        ],
    );
    let mut created_by: Vec<(String, f64)> = Vec::new();
    let mut damped_rounds = f64::NAN;
    for (name, proto) in &protos {
        let mut rounds = Summary::new();
        let mut created = Summary::new();
        let mut per_mig = Summary::new();
        let mut converged = 0u32;
        for seed in 0..seeds as u64 {
            let (inst, state) = packed_state(m);
            let out = qlb_engine::run(
                &inst,
                state,
                proto.as_ref(),
                RunConfig::new(seed, cutoff).with_trace(),
            );
            let trace = out.trace.expect("trace requested");
            let overloads: Vec<u64> = trace
                .rounds
                .iter()
                .map(|r| r.overload.expect("single class"))
                .collect();
            let c = overload_created(&overloads);
            created.push(c as f64);
            per_mig.push(c as f64 / out.migrations.max(1) as f64);
            if out.converged {
                converged += 1;
                rounds.push(out.rounds as f64);
            }
        }
        if *name == "slack-damped" {
            damped_rounds = rounds.mean();
        }
        created_by.push((name.to_string(), created.mean()));
        summary.row(vec![
            name.to_string(),
            format!("{converged}/{seeds}"),
            if rounds.count() == 0 {
                "—".to_string()
            } else {
                format!("{:.1}", rounds.mean())
            },
            format!("{:.0}", created.mean()),
            format!("{:.3}", per_mig.mean()),
        ]);
    }

    let get = |name: &str| {
        created_by
            .iter()
            .find(|(n2, _)| n2 == name)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN)
    };
    let notes = vec![
        format!(
            "overload-creation hierarchy (mean Σ(ΔΦ)⁺): blind {:.0} ≫ conditional {:.0} > \
             damped {:.0} — damping keeps expected inflow below free capacity, so almost no \
             new overload is manufactured",
            get("blind-uniform"),
            get("conditional-uniform"),
            get("slack-damped")
        ),
        format!(
            "blind never converges; the congestion-aware kernels do (damped mean \
             {damped_rounds:.1} rounds). The damped guarantee is bounded expected overshoot — \
             the Σ(ΔΦ)⁺ column — which conditional migration lacks in the thin-slack regime"
        ),
    ];

    ExperimentResult {
        id: "E4",
        artifact: "Figure 2",
        title: "Herding and overload creation of undamped protocols",
        tables: vec![series, summary],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables.len(), 2);
        assert_eq!(res.tables[1].num_rows(), 3);
        assert_eq!(res.notes.len(), 2);
    }

    #[test]
    fn overload_created_sums_positive_increments() {
        assert_eq!(overload_created(&[10, 7, 9, 4, 5]), 3);
        assert_eq!(overload_created(&[5]), 0);
        assert_eq!(overload_created(&[]), 0);
        assert_eq!(overload_created(&[0, 0, 0]), 0);
    }

    #[test]
    fn damped_creates_least_overload() {
        let res = run(true);
        // parse the summary's "overload created" column ordering from notes
        assert!(res.notes[0].contains("damping keeps expected inflow"));
    }
}
