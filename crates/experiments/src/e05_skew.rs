//! **E5 / Table 3 — capacity skew and informed sampling.**
//!
//! The theory is distribution-free, but the *constants* are not: uniform
//! sampling probes every resource equally, so when most capacity hides in
//! a few giants (Zipf), most probes are wasted. The capacity-proportional
//! variant invests its probes where the slack is. The table crosses four
//! capacity shapes with the two samplers at equal total slack.

use crate::common::{mean_ci, pct, sweep_scenario};
use crate::ExperimentResult;
use qlb_core::{SlackDamped, SlackDampedCapacitySampling};
use qlb_stats::Table;
use qlb_workload::{CapacityDist, Placement, Scenario};

/// Run E5.
pub fn run(quick: bool) -> ExperimentResult {
    let (n, seeds, max_rounds) = if quick {
        (1usize << 10, 5u32, 200_000u64)
    } else {
        (1usize << 14, 20, 1_000_000)
    };
    let m = n / 8;

    let dists: Vec<(&str, CapacityDist)> = vec![
        ("constant", CapacityDist::Constant { cap: 10 }),
        (
            "uniform[1,20]",
            CapacityDist::UniformRange { lo: 1, hi: 20 },
        ),
        (
            "zipf(α=1.0)",
            CapacityDist::Zipf {
                alpha: 1.0,
                max_cap: (n / 4) as u32,
            },
        ),
        (
            "bimodal(10% large)",
            CapacityDist::Bimodal {
                small: 2,
                large: 100,
                frac_large: 0.1,
            },
        ),
    ];

    let mut table = Table::new(
        format!("Table 3 — capacity skew × sampling strategy (n = {n}, m = {m}, γ = 1.25)"),
        &[
            "capacity shape",
            "uniform sampling: rounds",
            "conv",
            "capacity-prop. sampling: rounds",
            "conv",
            "speedup",
        ],
    );
    let mut notes = Vec::new();

    for (name, dist) in dists {
        let sc = Scenario::single_class(format!("e5-{name}"), n, m, dist, 1.25, Placement::Hotspot);
        let uni = sweep_scenario(
            &sc,
            &|_| Box::new(SlackDamped::default()),
            seeds,
            max_rounds,
        );
        let prop = sweep_scenario(
            &sc,
            &|inst| Box::new(SlackDampedCapacitySampling::new(inst)),
            seeds,
            max_rounds,
        );
        let speedup = uni.rounds.mean() / prop.rounds.mean().max(1e-9);
        table.row(vec![
            name.to_string(),
            mean_ci(&uni.rounds),
            pct(uni.converged_frac()),
            mean_ci(&prop.rounds),
            pct(prop.converged_frac()),
            format!("{speedup:.2}×"),
        ]);
        if name.starts_with("zipf") {
            notes.push(format!(
                "shape check: informed sampling wins on zipf ({speedup:.2}× — expected ≫ 1)"
            ));
        }
    }

    ExperimentResult {
        id: "E5",
        artifact: "Table 3",
        title: "Capacity skew: oblivious vs capacity-proportional sampling",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 4);
        assert!(!res.notes.is_empty());
    }
}
