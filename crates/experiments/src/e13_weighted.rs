//! **E13 / Table 10 — weighted users (the bin-packing extension).**
//!
//! User `i` demands `w_i`; satisfaction is `Σ weights on r ≤ c_r`. The
//! weighted slack-damped kernel migrates only where the demand fits, coin
//! `(c−W)/c`. Expectations: convergence survives weight heterogeneity at
//! fixed slack, but degrades with skew (heavy users need large holes), and
//! the offline best-fit-decreasing baseline keeps succeeding (it packs
//! tightest-first). Weight distributions share a total demand so rows are
//! comparable.

use crate::ExperimentResult;
use qlb_core::weighted::{
    first_fit_decreasing, WeightedInstance, WeightedSlackDamped, WeightedState,
};
use qlb_core::ResourceId;
use qlb_engine::run_weighted;
use qlb_rng::{Rng64, SplitMix64};
use qlb_stats::{Summary, Table};

/// A named weight-vector generator with fixed total demand `w_total`.
fn weights_for(kind: &str, w_total: u64, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(qlb_rng::mix64_pair(seed, 0xE13));
    let mut out = Vec::new();
    let mut acc = 0u64;
    while acc < w_total {
        let w = match kind {
            "unit" => 1u32,
            "uniform 1..4" => 1 + rng.uniform(4) as u32,
            "heavy-tailed (20% w=8)" => {
                if rng.bernoulli(0.2) {
                    8
                } else {
                    1
                }
            }
            _ => unreachable!("unknown weight kind"),
        };
        let w = w.min((w_total - acc) as u32).max(1);
        out.push(w);
        acc += w as u64;
    }
    out
}

/// Run E13.
pub fn run(quick: bool) -> ExperimentResult {
    let (w_total, m, seeds, max_rounds) = if quick {
        (1024u64, 64usize, 3u32, 100_000u64)
    } else {
        (16384, 1024, 10, 1_000_000)
    };
    let cap = (w_total as f64 * 1.25 / m as f64).ceil() as u64; // γ = 1.25 on weight
    let kinds = ["unit", "uniform 1..4", "heavy-tailed (20% w=8)"];

    let mut table = Table::new(
        format!(
            "Table 10 — weighted users: slack-damped under weight skew \
             (Σw = {w_total}, m = {m}, cap = {cap}, γ = 1.25, hotspot)"
        ),
        &[
            "weights",
            "users (mean)",
            "max w",
            "rounds (mean ± CI)",
            "weight moved / Σw",
            "converged",
            "BFD offline",
        ],
    );
    let mut unit_rounds = f64::NAN;
    let mut heavy_rounds = f64::NAN;

    for kind in kinds {
        let mut rounds = Summary::new();
        let mut users = Summary::new();
        let mut moved_frac = Summary::new();
        let mut max_w = 0u64;
        let mut converged = 0u32;
        let mut bfd_ok = 0u32;
        for seed in 0..seeds as u64 {
            let weights = weights_for(kind, w_total, seed);
            let inst = WeightedInstance::new(vec![cap; m], weights).expect("valid");
            users.push(inst.num_users() as f64);
            max_w = max_w.max(inst.max_weight());
            bfd_ok += first_fit_decreasing(&inst).is_ok() as u32;
            let state = WeightedState::all_on(&inst, ResourceId(0));
            let out = run_weighted(
                &inst,
                state,
                &WeightedSlackDamped::default(),
                seed,
                max_rounds,
            );
            if out.converged {
                converged += 1;
                rounds.push(out.rounds as f64);
                moved_frac.push(out.weight_moved as f64 / w_total as f64);
            }
        }
        if kind == "unit" {
            unit_rounds = rounds.mean();
        }
        if kind.starts_with("heavy") {
            heavy_rounds = rounds.mean();
        }
        table.row(vec![
            kind.to_string(),
            format!("{:.0}", users.mean()),
            max_w.to_string(),
            format!("{:.1} ± {:.1}", rounds.mean(), rounds.ci95()),
            format!("{:.2}", moved_frac.mean()),
            format!("{converged}/{seeds}"),
            format!("{bfd_ok}/{seeds}"),
        ]);
    }

    let notes = vec![format!(
        "shape check: convergence survives weight skew at γ = 1.25 (100% expected in every \
         row); heavy-tailed weights cost {:.2}× the unit-weight rounds (large holes are \
         rarer), and best-fit-decreasing packs every instance offline",
        heavy_rounds / unit_rounds.max(1e-9)
    )];

    ExperimentResult {
        id: "E13",
        artifact: "Table 10",
        title: "Weighted users: convergence under demand heterogeneity",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_hit_total_exactly() {
        for kind in ["unit", "uniform 1..4", "heavy-tailed (20% w=8)"] {
            let w = weights_for(kind, 500, 3);
            assert_eq!(w.iter().map(|&x| x as u64).sum::<u64>(), 500, "{kind}");
            assert!(w.iter().all(|&x| x >= 1));
        }
    }

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 3);
        assert_eq!(res.id, "E13");
    }
}
