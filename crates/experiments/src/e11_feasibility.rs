//! **E11 / Table 9 — the exactness boundary of feasibility tests.**
//!
//! Three tests of "does a legal state exist", compared against ground
//! truth on random instances near the feasibility boundary:
//!
//! * **per-class counting** — each class fits alone (`n_k ≤ Σ_r c_k(r)`):
//!   cheap, necessary, and demonstrably *not* sufficient;
//! * **subset counting** — the `2^K` Hall-style bound of
//!   `Instance::counting_feasible`: exact for the *eligibility* flavour
//!   (it is precisely max-flow min-cut on the class-aggregated network),
//!   still not sufficient for the *latency* flavour;
//! * **flow oracle** — `qlb-flow`'s polynomial exact test (eligibility
//!   only).
//!
//! Ground truth: the flow oracle for eligibility tables, exhaustive search
//! for latency tables (tiny sizes). The table reports false-positive rates,
//! confirming the exactness boundary claimed in `DESIGN.md`.

use crate::ExperimentResult;
use qlb_flow::{brute_force_feasible, flow_feasible};
use qlb_rng::{Rng64, SplitMix64};
use qlb_stats::Table;

/// Per-class counting bound (weak necessary condition).
fn per_class_counting(sizes: &[usize], tbl: &[u32], m: usize) -> bool {
    sizes.iter().enumerate().all(|(k, &nk)| {
        let cap: u64 = tbl[k * m..(k + 1) * m].iter().map(|&c| c as u64).sum();
        nk as u64 <= cap
    })
}

/// Subset (Hall) counting bound over all class subsets.
fn subset_counting(sizes: &[usize], tbl: &[u32], m: usize) -> bool {
    let kk = sizes.len();
    for mask in 1u32..(1 << kk) {
        let need: u64 = (0..kk)
            .filter(|k| mask & (1 << k) != 0)
            .map(|k| sizes[k] as u64)
            .sum();
        let have: u64 = (0..m)
            .map(|r| {
                (0..kk)
                    .filter(|k| mask & (1 << k) != 0)
                    .map(|k| tbl[k * m + r])
                    .max()
                    .unwrap_or(0) as u64
            })
            .sum();
        if need > have {
            return false;
        }
    }
    true
}

struct Tally {
    cases: u32,
    feasible: u32,
    fp_per_class: u32,
    fp_subset: u32,
    any_fn: u32,
}

/// Run E11.
pub fn run(quick: bool) -> ExperimentResult {
    let cases = if quick { 300u32 } else { 3000 };
    let mut rng = SplitMix64::new(0xE11);

    // ---- eligibility flavour: ground truth = flow oracle ----
    let mut elig = Tally {
        cases: 0,
        feasible: 0,
        fp_per_class: 0,
        fp_subset: 0,
        any_fn: 0,
    };
    for _ in 0..cases {
        let m = 2 + rng.uniform_usize(3);
        let kk = 2 + rng.uniform_usize(2);
        let mut tbl = vec![0u32; kk * m];
        for r in 0..m {
            let cap = 1 + rng.uniform(4) as u32;
            for k in 0..kk {
                if rng.bernoulli(0.6) {
                    tbl[k * m + r] = cap;
                }
            }
        }
        // sizes near the boundary
        let total: u64 = (0..m)
            .map(|r| (0..kk).map(|k| tbl[k * m + r]).max().unwrap_or(0) as u64)
            .sum();
        let sizes: Vec<usize> = (0..kk)
            .map(|_| rng.uniform(total / kk as u64 + 2) as usize)
            .collect();
        let truth = flow_feasible(&sizes, &tbl, m)
            .expect("two-valued by construction")
            .feasible;
        elig.cases += 1;
        elig.feasible += truth as u32;
        let pc = per_class_counting(&sizes, &tbl, m);
        let sub = subset_counting(&sizes, &tbl, m);
        if pc && !truth {
            elig.fp_per_class += 1;
        }
        if sub && !truth {
            elig.fp_subset += 1;
        }
        if truth && (!pc || !sub) {
            elig.any_fn += 1; // would falsify "necessary"
        }
    }

    // ---- latency flavour: ground truth = brute force ----
    let mut lat = Tally {
        cases: 0,
        feasible: 0,
        fp_per_class: 0,
        fp_subset: 0,
        any_fn: 0,
    };
    for _ in 0..cases {
        let m = 1 + rng.uniform_usize(3);
        let kk = 2 + rng.uniform_usize(2);
        // nested caps from thresholds × speeds
        let speeds: Vec<u32> = (0..m).map(|_| 1 + rng.uniform(6) as u32).collect();
        let mut thresholds: Vec<u32> = (0..kk).map(|_| 1 + rng.uniform(3) as u32).collect();
        thresholds.sort_unstable();
        let mut tbl = vec![0u32; kk * m];
        for (k, &t) in thresholds.iter().enumerate() {
            for (r, &s) in speeds.iter().enumerate() {
                tbl[k * m + r] = t * s;
            }
        }
        let total: u64 = (0..m).map(|r| tbl[(kk - 1) * m + r] as u64).sum();
        let sizes: Vec<usize> = (0..kk)
            .map(|_| rng.uniform(total / (2 * kk as u64) + 2) as usize)
            .collect();
        if sizes.iter().sum::<usize>() > 10 {
            continue; // keep brute force cheap
        }
        let truth = brute_force_feasible(&sizes, &tbl, m);
        lat.cases += 1;
        lat.feasible += truth as u32;
        let pc = per_class_counting(&sizes, &tbl, m);
        let sub = subset_counting(&sizes, &tbl, m);
        if pc && !truth {
            lat.fp_per_class += 1;
        }
        if sub && !truth {
            lat.fp_subset += 1;
        }
        if truth && (!pc || !sub) {
            lat.any_fn += 1;
        }
    }

    let mut table = Table::new(
        format!("Table 9 — feasibility tests vs ground truth ({cases} random boundary instances per flavour)"),
        &[
            "flavour",
            "cases",
            "feasible",
            "per-class counting: false positives",
            "subset counting: false positives",
            "false negatives (either)",
        ],
    );
    for (name, t) in [("eligibility", &elig), ("latency", &lat)] {
        table.row(vec![
            name.to_string(),
            t.cases.to_string(),
            t.feasible.to_string(),
            t.fp_per_class.to_string(),
            t.fp_subset.to_string(),
            t.any_fn.to_string(),
        ]);
    }

    let notes = vec![
        format!(
            "exactness boundary: subset counting has {} false positives on eligibility \
             (expected 0 — it equals max-flow min-cut there) and {} on latency \
             (expected > 0 — exact latency feasibility is NP-hard)",
            elig.fp_subset, lat.fp_subset
        ),
        format!(
            "necessity: counting bounds produced {} false negatives (expected 0)",
            elig.any_fn + lat.any_fn
        ),
    ];

    ExperimentResult {
        id: "E11",
        artifact: "Table 9",
        title: "Feasibility oracles: counting bounds vs exact tests",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_invariants() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 2);
        // necessity must hold exactly
        assert!(res.notes[1].contains("0 false negatives") || res.notes[1].contains("produced 0"));
    }

    #[test]
    fn per_class_weaker_than_subset() {
        // shared bottleneck: both classes only like r0
        let tbl = [2, 0, 2, 0];
        let sizes = [2usize, 2];
        assert!(per_class_counting(&sizes, &tbl, 2));
        assert!(!subset_counting(&sizes, &tbl, 2));
    }
}
