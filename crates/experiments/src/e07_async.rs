//! **E7 / Table 5 — bounded asynchrony (outdated observations).**
//!
//! Reconstructed claim T4: with observations up to `D` rounds stale, the
//! protocol still converges, paying at most an `O(D)`-factor slowdown. The
//! table runs the *actor runtime* (real message passing) with delay bounds
//! `D ∈ {0, 1, 2, 4, 8}`; `D = 0` doubles as the engine-equivalence anchor.

use crate::ExperimentResult;
use qlb_core::{ResourceId, SlackDamped, State};
use qlb_obs::{Counter, Recorder};
use qlb_runtime::{run_distributed_observed, RuntimeConfig};
use qlb_stats::{Summary, Table};
use qlb_workload::{CapacityDist, Placement, Scenario};

/// Run E7.
pub fn run(quick: bool) -> ExperimentResult {
    let (n, seeds) = if quick {
        (1usize << 9, 3u32)
    } else {
        (1usize << 12, 10)
    };
    let m = n / 8;
    let delays = [0u64, 1, 2, 4, 8];
    let max_rounds = 200_000;

    let sc = Scenario::single_class(
        "e7",
        n,
        m,
        CapacityDist::Constant { cap: 10 },
        1.25,
        Placement::Hotspot,
    );

    let mut table = Table::new(
        format!(
            "Table 5 — actor runtime under observation delay D (n = {n}, m = {m}, γ = 1.25, \
             4 user shards × 2 resource shards)"
        ),
        &[
            "D",
            "rounds (mean ± CI)",
            "slowdown vs D=0",
            "migrations (mean)",
            "messages/round",
            "snapshots sent",
            "converged",
        ],
    );
    let mut base_mean = None;
    let mut notes = Vec::new();

    for &d in &delays {
        let mut rounds = Summary::new();
        let mut migrations = Summary::new();
        let mut msg_per_round = Summary::new();
        let mut snapshots = Summary::new();
        let mut converged = 0u32;
        for seed in 0..seeds as u64 {
            let (inst, _) = sc.build(seed).expect("feasible");
            let state = State::all_on(&inst, ResourceId(0));
            // Communication cost comes from the observability counters:
            // the runtime's per-actor message accounting feeds the sink.
            let mut rec = Recorder::default();
            let out = run_distributed_observed(
                &inst,
                state,
                &SlackDamped::default(),
                RuntimeConfig::new(seed, max_rounds)
                    .with_shards(4, 2)
                    .with_max_delay(d),
                &mut rec,
            );
            debug_assert_eq!(rec.counter(Counter::MessagesSent), out.messages);
            if out.converged {
                converged += 1;
                rounds.push(out.rounds as f64);
                migrations.push(out.migrations as f64);
                msg_per_round
                    .push(rec.counter(Counter::MessagesSent) as f64 / (out.rounds.max(1)) as f64);
                snapshots.push(rec.counter(Counter::SnapshotsSent) as f64);
            }
        }
        let slowdown = base_mean.map_or("1.00×".to_string(), |b: f64| {
            format!("{:.2}×", rounds.mean() / b)
        });
        if base_mean.is_none() {
            base_mean = Some(rounds.mean());
        }
        table.row(vec![
            d.to_string(),
            format!("{:.1} ± {:.1}", rounds.mean(), rounds.ci95()),
            slowdown,
            format!("{:.0}", migrations.mean()),
            format!("{:.0}", msg_per_round.mean()),
            format!("{:.0}", snapshots.mean()),
            format!("{converged}/{seeds}"),
        ]);
        if d == 8 {
            let factor = rounds.mean() / base_mean.unwrap_or(1.0);
            notes.push(format!(
                "shape check: D = 8 slows convergence by {factor:.2}× (graceful, not divergent); \
                 expected O(D) ⇒ factor ≲ 8: {}",
                if factor <= 10.0 { "PASS" } else { "FAIL" }
            ));
        }
    }

    ExperimentResult {
        id: "E7",
        artifact: "Table 5",
        title: "Bounded asynchrony on the message-passing runtime",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let res = run(true);
        assert_eq!(res.tables[0].num_rows(), 5);
        assert!(!res.notes.is_empty());
    }
}
