//! `qlb-trace` CLI contract tests: the `--follow` interval flags are
//! validated (zero and non-numeric values are usage errors, exit 2), and a
//! trace file deleted out from under `--follow` exits 2 immediately
//! instead of idling out — both documented in `qlb-trace --help`.

use qlb_obs::{Event, Sink, StreamSink};
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

fn trace_bin() -> &'static str {
    env!("CARGO_BIN_EXE_qlb-trace")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("qlb-trace-cli-{tag}-{}.jsonl", std::process::id()))
}

/// Write a partial trace (a few round records, flushed, no trailer) — the
/// shape `--follow` sees while a run is still writing.
fn write_partial_trace(path: &PathBuf) {
    let f = std::fs::File::create(path).unwrap();
    let mut sink = StreamSink::with_flush_every(f, 1);
    for round in 0..3u64 {
        sink.event(Event::RoundStart { round, active: 4 });
        sink.event(Event::RoundEnd {
            round,
            migrations: 1,
            unsatisfied: 3 - round,
            overload: None,
        });
    }
    // dropped without finish(): buffered lines land, no trailer
}

#[test]
fn zero_and_garbage_follow_intervals_are_usage_errors() {
    let path = temp_path("flags");
    write_partial_trace(&path);
    for args in [
        ["--follow", "--idle-ms", "0"],
        ["--follow", "--poll-ms", "0"],
        ["--follow", "--idle-ms", "-50"],
        ["--follow", "--poll-ms", "soon"],
    ] {
        let out = Command::new(trace_bin())
            .arg(&path)
            .args(args)
            .output()
            .expect("run qlb-trace");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} should be a usage error; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("bad --"),
            "no diagnostic for {args:?}: {stderr}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn follow_times_out_idle_with_the_incomplete_status() {
    let path = temp_path("idle");
    write_partial_trace(&path);
    let out = Command::new(trace_bin())
        .arg(&path)
        .args(["--follow", "--idle-ms", "100", "--poll-ms", "10"])
        .output()
        .expect("run qlb-trace");
    // no trailer ever arrives → incomplete trace, exit 1 (not a crash)
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("no growth"),
        "missing idle notice: {stdout}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn deleting_the_trace_mid_follow_exits_2() {
    let path = temp_path("deleted");
    write_partial_trace(&path);
    let mut child = Command::new(trace_bin())
        .arg(&path)
        // idle timeout far longer than the test: only deletion can end it
        .args(["--follow", "--idle-ms", "60000", "--poll-ms", "10"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn qlb-trace");
    // give the follower time to read the existing bytes, then delete
    std::thread::sleep(Duration::from_millis(300));
    std::fs::remove_file(&path).unwrap();
    let t0 = Instant::now();
    let status = loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            break st;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "qlb-trace kept following a deleted trace"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(2), "deletion mid-follow must exit 2");
    let mut stderr = String::new();
    use std::io::Read;
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(
        stderr.contains("deleted mid-follow"),
        "missing diagnostic: {stderr}"
    );
}
