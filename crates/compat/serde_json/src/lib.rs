//! Offline stand-in for `serde_json`.
//!
//! Serializes the stand-in `serde::Value` tree to JSON text and parses JSON
//! text back. Numbers are kept exact where possible: integers round-trip
//! through `u64`/`i64`, floats are printed with Rust's shortest-round-trip
//! `{:?}` formatting, so `f64` values survive a serialize → parse cycle
//! bit-for-bit.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error type for serialization and parsing.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parse a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    Ok(T::deserialize_value(&value)?)
}

/// Parse a JSON string into a raw [`Value`] tree.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing input at byte {pos}")));
    }
    Ok(value)
}

// ---------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::String(s) => write_string(out, s),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, x, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, x, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest representation that round-trips.
        out.push_str(&format!("{x:?}"));
    } else {
        // JSON has no Inf/NaN; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::new("bad \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("bad \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::new("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so valid).
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid utf-8"))?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("expected number at byte {start}")));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(mag) = stripped.parse::<u64>() {
                if mag <= i64::MAX as u64 {
                    return Ok(Value::I64(-(mag as i64)));
                }
            }
        } else if let Ok(x) = text.parse::<u64>() {
            return Ok(Value::U64(x));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(parse_value_str("42").unwrap(), Value::U64(42));
        assert_eq!(parse_value_str("-7").unwrap(), Value::I64(-7));
        assert_eq!(parse_value_str("1.25").unwrap(), Value::F64(1.25));
        assert_eq!(parse_value_str("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value_str("null").unwrap(), Value::Null);
        assert_eq!(
            parse_value_str("\"a\\nb\"").unwrap(),
            Value::String("a\nb".into())
        );
    }

    #[test]
    fn nested_roundtrip() {
        let v = Value::Object(vec![
            ("xs".into(), Value::Array(vec![Value::U64(1), Value::F64(0.5)])),
            ("name".into(), Value::String("q\"x".into())),
            ("none".into(), Value::Null),
        ]);
        let mut compact = String::new();
        write_value(&mut compact, &v, None, 0);
        assert_eq!(parse_value_str(&compact).unwrap(), v);
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0);
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn f64_exact_roundtrip() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 12345.678901234567] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} drifted via {s}");
        }
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![1u32, 2, 3];
        let s = to_string(&xs).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(xs, back);
    }
}
