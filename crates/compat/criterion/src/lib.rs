//! Offline stand-in for the `criterion` crate.
//!
//! Mirrors the subset of criterion's API the workspace benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, `Throughput`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros — but measures with a plain wall-clock loop:
//! a short warm-up, then timed batches until a small time budget is spent.
//! It prints one line per benchmark (mean ns/iter and, when a throughput
//! was declared, derived elements/sec). No plots, no statistics files.

use std::time::{Duration, Instant};

/// How per-iteration setup state is grouped; accepted for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is cheap to hold; batches may be large.
    SmallInput,
    /// Setup output is large; keep batches small.
    LargeInput,
    /// One setup call per timed call.
    PerIteration,
}

/// Declared work per iteration, used to derive a rate in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Self { total: Duration::ZERO, iters: 0, budget }
    }

    /// Time `routine` repeatedly until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up: one untimed call
        let _ = routine();
        let mut batch = 1u64;
        while self.total < self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.total += start.elapsed();
            self.iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }

    /// Time `routine` over fresh `setup()` outputs; setup is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = routine(setup());
        while self.total < self.budget {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.total.as_nanos() as f64 / self.iters as f64
    }
}

/// Top-level harness handle.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Small budget per benchmark keeps full-suite runs quick; override
        // with QLB_BENCH_MS for more stable numbers.
        let ms = std::env::var("QLB_BENCH_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(60);
        Self { budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.as_ref().to_string(),
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(self.budget, name.as_ref(), None, f);
        self
    }
}

/// A named group; prefixes each benchmark's report line.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API parity; the wall-clock loop has no sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_one(self.criterion.budget, &full, self.throughput, f);
        self
    }

    /// End the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    budget: Duration,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher::new(budget);
    f(&mut b);
    let mean = b.mean_ns();
    match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            let rate = n as f64 * 1e9 / mean;
            println!("bench {name:<48} {mean:>14.1} ns/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            let rate = n as f64 * 1e9 / mean;
            println!("bench {name:<48} {mean:>14.1} ns/iter  {rate:>14.0} B/s");
        }
        _ => println!("bench {name:<48} {mean:>14.1} ns/iter"),
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion { budget: Duration::from_millis(2) };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4)).sample_size(10);
        let mut calls = 0u64;
        g.bench_function("inc", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u32, 2, 3], |v| v.iter().sum::<u32>(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(calls > 0);
    }
}
