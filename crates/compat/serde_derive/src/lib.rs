//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the stand-in `serde::Serialize` / `serde::Deserialize`
//! traits (which render through a JSON-shaped `serde::Value`). The parser is
//! deliberately small: it handles exactly the item shapes this workspace
//! derives on —
//!
//! * named-field structs → JSON objects,
//! * one-field tuple structs → transparent (the inner value),
//! * enums of unit and named-field variants → externally tagged, like real
//!   serde's JSON encoding (`"Variant"` / `{"Variant": {...}}`).
//!
//! Generics, tuple variants, and `where` clauses are rejected loudly rather
//! than miscompiled. `#[serde(...)]` attributes are accepted and ignored;
//! the only one used in this workspace is `transparent` on newtypes, which
//! is this derive's default behaviour anyway.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    NewtypeStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    /// `None` = unit variant; `Some(fields)` = named-field variant.
    fields: Option<Vec<String>>,
}

/// Derive the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize_value(&self.{f})),"
                    )
                })
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{\
                   fn serialize_value(&self) -> ::serde::Value {{\
                     ::serde::Value::Object(::std::vec![{entries}])\
                   }}\
                 }}"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\
               fn serialize_value(&self) -> ::serde::Value {{\
                 ::serde::Serialize::serialize_value(&self.0)\
               }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        None => format!(
                            "{name}::{vname} => ::serde::Value::String(\
                               ::std::string::String::from(\"{vname}\")),"
                        ),
                        Some(fields) => {
                            let pat = fields.join(", ");
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::serialize_value({f})),"
                                    )
                                })
                                .collect::<String>();
                            format!(
                                "{name}::{vname} {{ {pat} }} => ::serde::Value::Object(\
                                   ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                     ::serde::Value::Object(::std::vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{\
                   fn serialize_value(&self) -> ::serde::Value {{\
                     match self {{ {arms} }}\
                   }}\
                 }}"
            )
        }
    };
    body.parse().expect("serde_derive: generated Serialize impl must parse")
}

/// Derive the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(\
                           v.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                           .map_err(|e| e.ctx(\"{name}.{f}\"))?,"
                    )
                })
                .collect::<String>();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                   fn deserialize_value(v: &::serde::Value) \
                       -> ::std::result::Result<Self, ::serde::DeError> {{\
                     if v.as_object().is_none() {{\
                       return ::std::result::Result::Err(\
                         ::serde::DeError::new(\"expected object for {name}\"));\
                     }}\
                     ::std::result::Result::Ok({name} {{ {inits} }})\
                   }}\
                 }}"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\
               fn deserialize_value(v: &::serde::Value) \
                   -> ::std::result::Result<Self, ::serde::DeError> {{\
                 ::std::result::Result::Ok({name}(\
                   ::serde::Deserialize::deserialize_value(v)\
                     .map_err(|e| e.ctx(\"{name}\"))?))\
               }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect::<String>();
            let tagged_arms = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|fields| (&v.name, fields)))
                .map(|(vname, fields)| {
                    let inits = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize_value(\
                                   _inner.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                                   .map_err(|e| e.ctx(\"{name}::{vname}.{f}\"))?,"
                            )
                        })
                        .collect::<String>();
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok(\
                           {name}::{vname} {{ {inits} }}),"
                    )
                })
                .collect::<String>();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                   fn deserialize_value(v: &::serde::Value) \
                       -> ::std::result::Result<Self, ::serde::DeError> {{\
                     match v {{\
                       ::serde::Value::String(_s) => match _s.as_str() {{\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::DeError::new(\
                           ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\
                       }},\
                       ::serde::Value::Object(_entries) if _entries.len() == 1 => {{\
                         let (_tag, _inner) = &_entries[0];\
                         match _tag.as_str() {{\
                           {tagged_arms}\
                           other => ::std::result::Result::Err(::serde::DeError::new(\
                             ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\
                         }}\
                       }}\
                       _ => ::std::result::Result::Err(::serde::DeError::new(\
                         \"expected variant string or single-key object for {name}\")),\
                     }}\
                   }}\
                 }}"
            )
        }
    };
    body.parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic items are not supported by the offline stand-in");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let fields = count_tuple_fields(&inner);
                if fields != 1 {
                    panic!(
                        "serde_derive: tuple struct {name} has {fields} fields; \
                         only 1-field newtypes are supported"
                    );
                }
                Item::NewtypeStruct { name }
            }
            other => panic!("serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive on `{other}` items"),
    }
}

/// Advance past `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field body: `[attrs] [vis] name : Type, ...`.
/// Types are skipped by consuming until a comma at angle-bracket depth 0.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let fname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field {fname}, found {other:?}"),
        }
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(fname);
    }
    fields
}

/// Variants of an enum body: `[attrs] Name [ { fields } | (tuple) ], ...`.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let vname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "serde_derive: tuple variant {vname} is not supported by the \
                     offline stand-in; use a named-field variant"
                );
            }
            _ => None,
        };
        // Discriminants (`= expr`) are not used on serde-derived enums here.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => panic!("serde_derive: expected `,` after variant, found {other}"),
        }
        variants.push(Variant { name: vname, fields });
    }
    variants
}

/// Number of fields in a tuple-struct body (top-level comma count).
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1usize;
    let mut angle_depth = 0i32;
    for tok in tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => fields += 1,
                _ => {}
            }
        }
    }
    // A trailing comma would overcount; tolerate it.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        fields -= 1;
    }
    fields
}
