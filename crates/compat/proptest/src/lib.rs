//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API this workspace uses: range and
//! tuple strategies, `prop_map`, `collection::vec`, `bool::ANY`, the
//! `proptest!` macro, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for a hermetic build:
//! - no shrinking — a failing case panics with its inputs' debug description
//!   left to the assertion message, and the deterministic per-case seed means
//!   a failure replays by rerunning the same test binary;
//! - no persistence — `*.proptest-regressions` files are ignored;
//! - case generation is seeded from the test's module path and name, so runs
//!   are reproducible across processes without any state files.

/// Deterministic per-case random source (splitmix64 over a derived seed).
pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Splitmix64 stream seeded from (test name, case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derive the stream for one named test case.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the name, then mix in the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut rng = Self {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            };
            // burn one output so near-identical seeds decorrelate
            rng.next_u64();
            rng
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // widening-multiply map; bias is irrelevant for test-input generation
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with a function.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy producing one fixed (cloned) value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i64).wrapping_add(rng.below(span + 1) as i64) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    $(let $v = $s.generate(rng);)+
                    ($($v,)+)
                }
            }
        };
    }

    tuple_strategy!(A/a);
    tuple_strategy!(A/a, B/b);
    tuple_strategy!(A/a, B/b, C/c);
    tuple_strategy!(A/a, B/b, C/c, D/d);
    tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
    tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);
    tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f, G/g);
    tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f, G/g, H/h);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length and elements are independently random.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A uniformly random boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The usual glob import: strategies, config, and the macros.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(args in strategies) { body }` becomes
/// a test that runs `body` over `config.cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::test_runner::ProptestConfig = $config;
            let __pt_strats = ($($strat,)+);
            let __pt_name = concat!(module_path!(), "::", stringify!($name));
            for __pt_case in 0..__pt_config.cases {
                let mut __pt_rng =
                    $crate::test_runner::TestRng::for_case(__pt_name, __pt_case as u64);
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__pt_strats, &mut __pt_rng);
                // IIFE so prop_assume! can `return` out of just this case
                let __pt_case_fn = move || $body;
                __pt_case_fn();
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

/// Assert a condition inside a property; panics (failing the case) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Assert two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Skip the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; tuples and prop_map compose.
        #[test]
        fn ranges_in_bounds(
            a in 2usize..=64,
            b in 1u32..8,
            (lo, hi) in (0u64..100, 100u64..200).prop_map(|(x, y)| (x, y)),
            xs in crate::collection::vec(0u32..=6, 1..=12),
            flag in crate::bool::ANY,
            f in 1.0f64..3.0,
        ) {
            prop_assert!((2..=64).contains(&a));
            prop_assert!(b < 8 && b >= 1);
            prop_assert!(lo < 100 && (100..200).contains(&hi));
            prop_assert!(!xs.is_empty() && xs.len() <= 12 && xs.iter().all(|&x| x <= 6));
            prop_assert!(flag || !flag);
            prop_assert!((1.0..3.0).contains(&f));
        }

        /// prop_assume skips cases without failing the test.
        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::for_case("t", 3);
        let mut r2 = crate::test_runner::TestRng::for_case("t", 3);
        let s = 0u64..=u64::MAX;
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
