//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so it vendors a minimal serialization framework under the `serde` name.
//! Unlike real serde's visitor architecture, this stand-in round-trips every
//! value through a JSON-shaped [`Value`] tree: `Serialize` renders *into* a
//! `Value`, `Deserialize` parses *from* one. The derive macros (re-exported
//! from the sibling `serde_derive` stub) cover exactly the shapes this
//! workspace uses: named-field structs, newtype (tuple) structs — always
//! treated as `#[serde(transparent)]` — and enums with unit or named-field
//! variants (externally tagged, matching real serde's JSON encoding).
//!
//! The surface is intentionally tiny; extend it only when a workspace type
//! actually needs more.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped tree: the single data model of this stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (JSON number without sign or fraction).
    U64(u64),
    /// Signed integer (negative JSON number without fraction).
    I64(i64),
    /// Floating-point JSON number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved so output is stable.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Look up a key in an object value (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Borrow the string if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret this value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Interpret this value as `u64` if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) => u64::try_from(x).ok(),
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                Some(x as u64)
            }
            _ => None,
        }
    }

    /// Interpret this value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(x) => Some(x as f64),
            Value::I64(x) => Some(x as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }
}

/// Deserialization error: a message plus an outermost-first context path.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// New error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Wrap with a context frame (field or variant name).
    pub fn ctx(self, frame: &str) -> Self {
        Self {
            msg: format!("{frame}: {}", self.msg),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    /// Produce the `Value` tree encoding of `self`.
    fn serialize_value(&self) -> Value;
}

/// Reconstruct `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse `Self` out of a `Value` tree.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// primitive impls
// ---------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let x = v
                    .as_u64()
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(x).map_err(|_| DeError::new(concat!(stringify!($t), " overflow")))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let x = match *v {
                    Value::I64(x) => x,
                    Value::U64(x) => i64::try_from(x)
                        .map_err(|_| DeError::new("integer overflow"))?,
                    _ => return Err(DeError::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(x).map_err(|_| DeError::new(concat!(stringify!($t), " overflow")))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::deserialize_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(xs) => xs.iter().map(T::deserialize_value).collect(),
            _ => Err(DeError::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::deserialize_value(&42u32.serialize_value()).unwrap(), 42);
        assert_eq!(
            f64::deserialize_value(&1.5f64.serialize_value()).unwrap(),
            1.5
        );
        assert_eq!(
            Option::<f64>::deserialize_value(&Value::Null).unwrap(),
            None
        );
        assert_eq!(
            Vec::<u32>::deserialize_value(&vec![1u32, 2].serialize_value()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v.get("b"), None);
    }
}
