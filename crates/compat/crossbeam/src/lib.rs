//! Offline stand-in for the `crossbeam` crate.
//!
//! Supplies only `crossbeam::channel::unbounded` and the `Sender` /
//! `Receiver` halves, which is all the runtime crate uses. The queue is a
//! `Mutex<VecDeque>` plus a `Condvar` — adequate for the shard-per-thread
//! message runtime, which exchanges a few messages per simulated round, not
//! a high-throughput data plane. Disconnect semantics match crossbeam:
//! `recv` drains remaining messages after all senders drop, then errors;
//! `send` errors once every receiver is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct ChanState<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<ChanState<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Sending half; cloneable (mpmc).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (mpmc).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(ChanState {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender { shared: Arc::clone(&shared) },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // wake receivers blocked on an empty queue so they observe
                // the disconnect
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; after the last sender drops,
        /// drain what is queued, then return `Err(RecvError)`.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Take a message if one is queued right now.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.shared
                .state
                .lock()
                .unwrap()
                .queue
                .pop_front()
                .ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_channel() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            assert_eq!((0..5).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(), vec![
                0, 1, 2, 3, 4
            ]);
        }

        #[test]
        fn disconnect_after_drain() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1u8).is_err());
        }

        #[test]
        fn cross_thread_handoff() {
            let (tx, rx) = unbounded();
            let writer = std::thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            while let Ok(x) = rx.recv() {
                sum += x;
            }
            writer.join().unwrap();
            assert_eq!(sum, 4950);
        }

        #[test]
        fn cloned_receivers_share_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1u8).unwrap();
            tx.send(2u8).unwrap();
            drop(tx);
            let a = rx1.recv().unwrap();
            let b = rx2.recv().unwrap();
            assert_eq!((a, b), (1, 2));
            assert_eq!(rx1.recv(), Err(RecvError));
        }
    }
}
