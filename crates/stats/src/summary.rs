//! Streaming univariate summaries (Welford's algorithm).

/// Count, mean, variance, extrema of a sample, accumulated in one pass with
/// Welford's numerically-stable update.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Summarize an iterator of observations.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Self::new();
        for v in values {
            s.push(v);
        }
        s
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval
    /// (`1.96 · sem`); adequate for the ≥ 20-seed repetitions the harness
    /// uses.
    pub fn ci95(&self) -> f64 {
        1.96 * self.sem()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge two summaries (parallel reduction; Chan et al. update).
    pub fn merge(&self, other: &Summary) -> Summary {
        if self.n == 0 {
            return other.clone();
        }
        if other.n == 0 {
            return self.clone();
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        Summary {
            n,
            mean,
            m2,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} ± {:.3} (n={}, min={:.3}, max={:.3})",
            self.mean(),
            self.ci95(),
            self.n,
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sem(), 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance 4 → sample variance 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of([3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all = Summary::of(xs.iter().copied());
        let left = Summary::of(xs[..37].iter().copied());
        let right = Summary::of(xs[37..].iter().copied());
        let merged = left.merge(&right);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-9);
        assert!((merged.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(merged.min(), all.min());
        assert_eq!(merged.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let s = Summary::of([1.0, 2.0]);
        assert_eq!(s.merge(&Summary::new()), s);
        assert_eq!(Summary::new().merge(&s), s);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = Summary::of((0..10).map(|i| i as f64));
        let large = Summary::of((0..1000).map(|i| (i % 10) as f64));
        assert!(large.ci95() < small.ci95());
    }

    #[test]
    fn display_formats() {
        let s = Summary::of([1.0, 2.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("2.000"));
    }
}
