//! Quantiles and histograms.

/// The `q`-quantile (`0 ≤ q ≤ 1`) of a sample, by linear interpolation
/// between closest ranks (type-7, the R/NumPy default).
///
/// Returns `None` for an empty sample.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    Some(quantile_sorted(&sorted, q))
}

/// Several quantiles at once (sorts once).
pub fn quantiles(values: &[f64], qs: &[f64]) -> Option<Vec<f64>> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    Some(qs.iter().map(|&q| quantile_sorted(&sorted, q)).collect())
}

fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Histogram with `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "empty range");
        assert!(buckets > 0, "need at least one bucket");
        Self {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1); // fp guard
            self.buckets[idx] += 1;
        }
    }

    /// In-range bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.buckets.iter().sum::<u64>()
    }

    /// `(bucket_lower_edge, count)` pairs for reporting.
    pub fn edges(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + width * i as f64, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
        assert_eq!(quantile(&[4.0, 1.0, 2.0, 3.0], 0.5), Some(2.5));
    }

    #[test]
    fn extremes() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
    }

    #[test]
    fn interpolation_type7() {
        // [10, 20, 30, 40]: q=0.25 → pos 0.75 → 10 + 0.75*10 = 17.5
        assert_eq!(quantile(&[10.0, 20.0, 30.0, 40.0], 0.25), Some(17.5));
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.99), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn out_of_range_q_panics() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn quantiles_batch_matches_single() {
        let xs = [9.0, 2.0, 7.0, 4.0, 5.0];
        let batch = quantiles(&xs, &[0.1, 0.5, 0.9]).unwrap();
        for (i, &q) in [0.1, 0.5, 0.9].iter().enumerate() {
            assert_eq!(batch[i], quantile(&xs, q).unwrap());
        }
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.9, -1.0, 10.0, 5.5] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_edges() {
        let h = Histogram::new(0.0, 10.0, 2);
        let edges: Vec<f64> = h.edges().map(|(e, _)| e).collect();
        assert_eq!(edges, vec![0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn bad_histogram_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }
}
