//! Terminal sparklines — compact series rendering for examples and CLI
//! output (a "figure" that fits in one line of a log).

/// The eight block glyphs from lowest to highest.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a series as a one-line sparkline, scaled to `[min, max]` of the
/// data. Empty input renders as an empty string; a constant series renders
/// as all-minimum glyphs (there is nothing to show).
///
/// ```
/// use qlb_stats::sparkline;
/// assert_eq!(sparkline(&[0.0, 1.0, 2.0, 3.0]), "▁▃▆█");
/// ```
pub fn sparkline(values: &[f64]) -> String {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        assert!(v.is_finite(), "sparkline input must be finite");
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if values.is_empty() {
        return String::new();
    }
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            if span == 0.0 {
                BLOCKS[0]
            } else {
                let t = (v - lo) / span;
                let idx = ((t * (BLOCKS.len() - 1) as f64).round() as usize).min(BLOCKS.len() - 1);
                BLOCKS[idx]
            }
        })
        .collect()
}

/// As [`sparkline`], but downsampled to at most `width` glyphs by taking
/// the maximum of each bucket (peaks are the interesting feature of decay
/// curves, so max-pooling preserves them).
pub fn sparkline_fit(values: &[f64], width: usize) -> String {
    assert!(width > 0, "width must be positive");
    if values.len() <= width {
        return sparkline(values);
    }
    let bucket = values.len().div_ceil(width);
    let pooled: Vec<f64> = values
        .chunks(bucket)
        .map(|c| c.iter().copied().fold(f64::NEG_INFINITY, f64::max))
        .collect();
    sparkline(&pooled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_empty() {
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn monotone_ramp() {
        assert_eq!(sparkline(&[0.0, 1.0, 2.0, 3.0]), "▁▃▆█");
    }

    #[test]
    fn constant_is_flat() {
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▁▁▁");
    }

    #[test]
    fn extremes_map_to_extreme_glyphs() {
        let s: Vec<char> = sparkline(&[10.0, 0.0, 10.0]).chars().collect();
        assert_eq!(s[0], '█');
        assert_eq!(s[1], '▁');
        assert_eq!(s[2], '█');
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = sparkline(&[1.0, f64::NAN]);
    }

    #[test]
    fn fit_downsamples_with_max_pooling() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = sparkline_fit(&values, 10);
        assert_eq!(s.chars().count(), 10);
        assert!(s.ends_with('█'));
        // short inputs pass through
        assert_eq!(sparkline_fit(&[0.0, 3.0], 10).chars().count(), 2);
    }

    #[test]
    fn fit_preserves_peaks() {
        // a single spike must survive pooling
        let mut values = vec![0.0; 64];
        values[31] = 100.0;
        let s = sparkline_fit(&values, 8);
        assert!(s.contains('█'), "spike lost: {s}");
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = sparkline_fit(&[1.0], 0);
    }
}
