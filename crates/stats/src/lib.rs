//! # qlb-stats — experiment statistics and table rendering
//!
//! Small, dependency-free numerics for the experiment harness: streaming
//! summaries ([`Summary`]), quantiles and histograms ([`mod@quantile`]),
//! ordinary-least-squares fits ([`fit`] — used to check the `a·log n + b`
//! convergence shape of the main theorem), Markdown/CSV table output
//! ([`table`]) so every experiment prints the same artifact it writes to
//! `results/`, and terminal sparklines ([`spark`]) for one-line decay
//! figures in examples and CLI output.

#![warn(missing_docs)]

pub mod fit;
pub mod quantile;
pub mod spark;
pub mod summary;
pub mod table;

pub use fit::{linear_fit, log_fit, Fit};
pub use quantile::{quantile, quantiles, Histogram};
pub use spark::{sparkline, sparkline_fit};
pub use summary::Summary;
pub use table::Table;
