//! Ordinary least squares — checking convergence-rate shapes.
//!
//! The reconstructed main theorem predicts rounds-to-convergence
//! `≈ a·log n + b`. The harness verifies the *shape*, not the constants, by
//! fitting measured means against `log₂ n` and reporting `R²`: a log-shaped
//! curve fits with `R² ≈ 1`, a polynomial one does not.

/// A fitted line `y = intercept + slope·x` with its coefficient of
/// determination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Slope `b`.
    pub slope: f64,
    /// Intercept `a`.
    pub intercept: f64,
    /// Coefficient of determination `R² ∈ [0, 1]` (1 = perfect fit). When
    /// the response is constant, `R²` is defined as 1 if the fit is exact.
    pub r_squared: f64,
}

impl Fit {
    /// Predicted response at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Least-squares line through `(x, y)` pairs.
///
/// Returns `None` for fewer than two points or a degenerate (constant-`x`)
/// design.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<Fit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0 // constant response fitted exactly by slope 0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(Fit {
        slope,
        intercept,
        r_squared,
    })
}

/// Fit `y = a + b·log₂(x)`: the shape test for logarithmic convergence.
///
/// Returns `None` if any `x ≤ 0` or the design is degenerate.
pub fn log_fit(points: &[(f64, f64)]) -> Option<Fit> {
    if points.iter().any(|&(x, _)| x <= 0.0) {
        return None;
    }
    let transformed: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.log2(), y)).collect();
    linear_fit(&transformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(100.0) - 203.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_high_r2() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                (x, 1.0 + 0.5 * x + if i % 2 == 0 { 0.1 } else { -0.1 })
            })
            .collect();
        let fit = linear_fit(&pts).unwrap();
        assert!(fit.r_squared > 0.99);
        assert!((fit.slope - 0.5).abs() < 0.01);
    }

    #[test]
    fn degenerate_designs_rejected() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(3.0, 1.0), (3.0, 5.0)]).is_none());
    }

    #[test]
    fn constant_response_is_perfect_flat_fit() {
        let fit = linear_fit(&[(1.0, 4.0), (2.0, 4.0), (3.0, 4.0)]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 4.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn log_fit_recovers_log_curve() {
        // y = 5 + 3·log2(x)
        let pts: Vec<(f64, f64)> = (4..14)
            .map(|e| {
                let x = (1u64 << e) as f64;
                (x, 5.0 + 3.0 * x.log2())
            })
            .collect();
        let fit = log_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept - 5.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn log_fit_distinguishes_linear_growth() {
        // y = x grows much faster than log: R² of the log fit over a wide
        // range is visibly poor.
        let pts: Vec<(f64, f64)> = (0..16)
            .map(|e| ((1u64 << e) as f64, (1u64 << e) as f64))
            .collect();
        let fit = log_fit(&pts).unwrap();
        assert!(fit.r_squared < 0.7, "R² {} should be poor", fit.r_squared);
    }

    #[test]
    fn log_fit_rejects_nonpositive_x() {
        assert!(log_fit(&[(0.0, 1.0), (2.0, 2.0)]).is_none());
        assert!(log_fit(&[(-1.0, 1.0), (2.0, 2.0)]).is_none());
    }
}
