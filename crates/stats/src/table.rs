//! Markdown / CSV table rendering for the experiment harness.
//!
//! Every experiment produces one `Table`; the harness prints the Markdown
//! form to stdout (what `EXPERIMENTS.md` embeds) and writes the CSV form to
//! `results/` for downstream plotting.

/// A simple rectangular table with a title and column headers.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as column-aligned Markdown (title as an H3 heading).
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", dashes.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Render as RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with a sensible number of digits for tables.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = Table::new("Demo", &["n", "rounds"]);
        t.row(vec!["1024".into(), "12.3".into()]);
        t.row(vec!["2048".into(), "13.1".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### Demo\n"));
        assert!(md.contains("| n    | rounds |"));
        assert!(md.contains("| 1024 | 12.3   |"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn csv_renders_and_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn empty_table_still_renders() {
        let t = Table::new("empty", &["col"]);
        assert!(t.to_markdown().contains("| col |"));
        assert_eq!(t.to_csv(), "col\n");
    }

    #[test]
    fn fmt_f_ranges() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(0.1234), "0.123");
        assert_eq!(fmt_f(12.34), "12.3");
        assert_eq!(fmt_f(1234.6), "1235");
        assert_eq!(fmt_f(-4.56789), "-4.568");
    }
}
