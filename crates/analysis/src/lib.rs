//! # qlb-analysis — exact Markov-chain analysis
//!
//! On tiny instances the slack-damped dynamics can be analysed *exactly*:
//! users are anonymous, so the load **profile** `(x_1, …, x_m)` is a
//! Markov chain on the compositions of `n` into `m` parts. Legal profiles
//! are absorbing; the expected rounds-to-convergence is the expected
//! absorption time, computable in closed form by solving the linear system
//!
//! ```text
//!   (I − Q) f = 1      (Q = transient-to-transient transition block)
//! ```
//!
//! This gives the repository a ground truth stronger than any simulation:
//! experiment E18 checks that the engine's empirical mean over tens of
//! thousands of seeded runs matches the exact expectation to within
//! statistical error — validating the kernel, the round semantics, and the
//! RNG pipeline end to end.
//!
//! The transition model mirrors `qlb_core::step::decide_user` for
//! [`qlb_core::SlackDamped`] exactly: each user on an overloaded resource
//! `r` independently samples a uniform resource `t` and moves with
//! probability `(c_t − x_t)⁺/c_t` (staying when `t = r`); per-source
//! destination counts are therefore multinomial, and the profile
//! transition is their convolution across sources.
//!
//! State-space sizes are `C(n + m − 1, m − 1)` — keep `n ≲ 12`, `m ≲ 4`.

//! ```
//! use qlb_analysis::exact_expected_rounds;
//!
//! // Two capacity-1 resources, two users piled on the first: exactly one
//! // must move; per round that happens with probability 1/2, so E[T] = 2.
//! let e = exact_expected_rounds(vec![1, 1], 2);
//! assert!((e - 2.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

mod chain;
mod profiles;
mod solver;

pub use chain::{exact_expected_rounds, ProfileChain};
pub use profiles::{enumerate_profiles, profile_index};
pub use solver::solve_linear;
