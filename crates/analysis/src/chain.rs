//! The profile Markov chain of the slack-damped protocol.

use crate::profiles::{enumerate_profiles, profile_index};
use crate::solver::solve_linear;
use std::collections::HashMap;

/// The exact profile chain of `SlackDamped` on a single-class instance
/// with capacities `caps` and `n` users.
pub struct ProfileChain {
    caps: Vec<u32>,
    n: u32,
    damping: f64,
    profiles: Vec<Vec<u32>>,
    index: HashMap<Vec<u32>, usize>,
}

impl ProfileChain {
    /// Build the chain.
    ///
    /// # Panics
    /// Panics on empty capacities, zero capacities (the experiments keep
    /// every resource usable), infeasible totals (absorption would not
    /// exist), or non-positive damping.
    pub fn new(caps: Vec<u32>, n: u32, damping: f64) -> Self {
        assert!(!caps.is_empty(), "need resources");
        assert!(caps.iter().all(|&c| c > 0), "zero-capacity resource");
        assert!(
            caps.iter().map(|&c| c as u64).sum::<u64>() >= n as u64,
            "infeasible instance has no absorbing states"
        );
        assert!(damping > 0.0 && damping.is_finite(), "bad damping");
        let profiles = enumerate_profiles(n, caps.len());
        let index = profile_index(&profiles);
        Self {
            caps,
            n,
            damping,
            profiles,
            index,
        }
    }

    /// Number of profiles (states).
    pub fn num_states(&self) -> usize {
        self.profiles.len()
    }

    /// Is the profile legal (absorbing)?
    pub fn is_legal(&self, x: &[u32]) -> bool {
        x.iter().zip(&self.caps).all(|(&load, &cap)| load <= cap)
    }

    /// Per-user destination distribution for a user on overloaded `r` at
    /// profile `x`: index `t` = probability of ending the round on `t`.
    fn destination_distribution(&self, x: &[u32], r: usize) -> Vec<f64> {
        let m = self.caps.len();
        let mut q = vec![0.0; m];
        let mut move_total = 0.0;
        for t in 0..m {
            if t == r {
                continue;
            }
            let cap = self.caps[t];
            let load = x[t];
            if load < cap {
                let coin = (self.damping * (cap - load) as f64 / cap as f64).min(1.0);
                q[t] = coin / m as f64;
                move_total += q[t];
            }
        }
        q[r] = 1.0 - move_total;
        q
    }

    /// One row of the transition kernel: distribution over successor
    /// profiles from `x` (sparse map, probabilities sum to 1).
    pub fn transition_row(&self, x: &[u32]) -> HashMap<usize, f64> {
        let m = self.caps.len();
        // Sources: per resource, number of movers (unsatisfied users).
        let sources: Vec<(usize, u32)> = (0..m)
            .filter(|&r| x[r] > self.caps[r])
            .map(|r| (r, x[r]))
            .collect();
        let mut row = HashMap::new();
        if sources.is_empty() {
            row.insert(self.index[x], 1.0);
            return row;
        }
        // Convolve multinomial outcomes across sources.
        let mut acc: Vec<(Vec<u32>, f64)> = vec![(x.to_vec(), 1.0)];
        for &(r, users) in &sources {
            let q = self.destination_distribution(x, r);
            let outcomes = multinomial_outcomes(users, &q);
            let mut next = Vec::with_capacity(acc.len() * outcomes.len());
            for (profile, p) in &acc {
                for (counts, po) in &outcomes {
                    let mut np = profile.clone();
                    // `counts[t]` users from `r` end on `t`; stayers are
                    // counts[r]. Remove all movers from r, add arrivals.
                    for (t, &k) in counts.iter().enumerate() {
                        if t == r {
                            continue;
                        }
                        np[r] -= k;
                        np[t] += k;
                    }
                    next.push((np, p * po));
                }
            }
            acc = next;
        }
        for (profile, p) in acc {
            *row.entry(self.index[&profile]).or_insert(0.0) += p;
        }
        row
    }

    /// Exact expected rounds to reach a legal profile from `start`.
    ///
    /// # Panics
    /// Panics if `start` is not a profile of this chain.
    pub fn expected_rounds_from(&self, start: &[u32]) -> f64 {
        assert_eq!(start.iter().sum::<u32>(), self.n, "wrong user count");
        let transient: Vec<usize> = (0..self.profiles.len())
            .filter(|&i| !self.is_legal(&self.profiles[i]))
            .collect();
        if self.is_legal(start) {
            return 0.0;
        }
        let tindex: HashMap<usize, usize> = transient
            .iter()
            .enumerate()
            .map(|(ti, &si)| (si, ti))
            .collect();
        let k = transient.len();
        // (I − Q) f = 1
        let mut a = vec![vec![0.0; k]; k];
        for (ti, &si) in transient.iter().enumerate() {
            a[ti][ti] = 1.0;
            for (&sj, &p) in &self.transition_row(&self.profiles[si]) {
                if let Some(&tj) = tindex.get(&sj) {
                    a[ti][tj] -= p;
                }
            }
        }
        let f = solve_linear(a, vec![1.0; k]).expect("absorbing chain is non-singular");
        f[tindex[&self.index[start]]]
    }
}

impl ProfileChain {
    /// The survival function `P[T > t]` of the absorption time from
    /// `start`, for `t = 0..=max_t`, by forward iteration of the transient
    /// distribution. `survival[0] = 1` unless `start` is already legal.
    ///
    /// Complements [`ProfileChain::expected_rounds_from`]: the experiments
    /// compare both the mean and the tail against simulation.
    ///
    /// # Panics
    /// Panics if `start` is not a profile of this chain.
    pub fn survival_from(&self, start: &[u32], max_t: usize) -> Vec<f64> {
        assert_eq!(start.iter().sum::<u32>(), self.n, "wrong user count");
        let mut dist = vec![0.0f64; self.profiles.len()];
        dist[self.index[start]] = 1.0;
        let mut out = Vec::with_capacity(max_t + 1);
        for _t in 0..=max_t {
            let transient_mass: f64 = (0..self.profiles.len())
                .filter(|&i| !self.is_legal(&self.profiles[i]))
                .map(|i| dist[i])
                .sum();
            out.push(transient_mass);
            // advance one round (absorbing states keep their mass)
            let mut next = vec![0.0f64; self.profiles.len()];
            for (i, &mass) in dist.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                if self.is_legal(&self.profiles[i]) {
                    next[i] += mass;
                    continue;
                }
                for (&j, &p) in &self.transition_row(&self.profiles[i]) {
                    next[j] += mass * p;
                }
            }
            dist = next;
        }
        out
    }
}

/// All ways to distribute `users` over categories with probabilities `q`
/// (categories with `q = 0` receive nobody), with multinomial pmf.
fn multinomial_outcomes(users: u32, q: &[f64]) -> Vec<(Vec<u32>, f64)> {
    let mut out = Vec::new();
    let mut counts = vec![0u32; q.len()];
    // log-factorials would be overkill at this scale; use direct recursion
    // carrying the running probability and multinomial coefficient.
    fn rec(
        idx: usize,
        remaining: u32,
        prob: f64,
        ways: f64,
        q: &[f64],
        counts: &mut Vec<u32>,
        out: &mut Vec<(Vec<u32>, f64)>,
    ) {
        if idx + 1 == q.len() {
            if q[idx] == 0.0 && remaining > 0 {
                return;
            }
            counts[idx] = remaining;
            let p = prob * q[idx].powi(remaining as i32) * ways;
            out.push((counts.clone(), p));
            counts[idx] = 0;
            return;
        }
        let max_here = if q[idx] == 0.0 { 0 } else { remaining };
        let mut choose = 1.0; // C(remaining, k) built incrementally
        for k in 0..=max_here {
            if k > 0 {
                choose = choose * (remaining - k + 1) as f64 / k as f64;
            }
            counts[idx] = k;
            rec(
                idx + 1,
                remaining - k,
                prob * q[idx].powi(k as i32),
                ways * choose,
                q,
                counts,
                out,
            );
        }
        counts[idx] = 0;
    }
    rec(0, users, 1.0, 1.0, q, &mut counts, &mut out);
    out
}

/// Convenience wrapper: exact expected rounds of `SlackDamped` (default
/// damping) from the hotspot start (`n` users on resource 0).
pub fn exact_expected_rounds(caps: Vec<u32>, n: u32) -> f64 {
    let m = caps.len();
    let chain = ProfileChain::new(caps, n, 1.0);
    let mut start = vec![0u32; m];
    start[0] = n;
    chain.expected_rounds_from(&start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multinomial_sums_to_one() {
        for q in [vec![0.5, 0.5], vec![0.2, 0.0, 0.8], vec![1.0]] {
            for users in [0u32, 1, 3, 5] {
                let outcomes = multinomial_outcomes(users, &q);
                let total: f64 = outcomes.iter().map(|(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-12, "users={users}, q={q:?}");
                for (counts, _) in &outcomes {
                    assert_eq!(counts.iter().sum::<u32>(), users);
                }
            }
        }
    }

    #[test]
    fn multinomial_zero_probability_excluded() {
        let outcomes = multinomial_outcomes(3, &[0.0, 1.0]);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].0, vec![0, 3]);
    }

    #[test]
    fn transition_rows_are_stochastic() {
        let chain = ProfileChain::new(vec![3, 3], 5, 1.0);
        for p in enumerate_profiles(5, 2) {
            let row = chain.transition_row(&p);
            let total: f64 = row.values().sum();
            assert!((total - 1.0).abs() < 1e-10, "profile {p:?}");
        }
    }

    #[test]
    fn legal_profiles_are_absorbing() {
        let chain = ProfileChain::new(vec![3, 3], 5, 1.0);
        let legal = vec![3u32, 2];
        assert!(chain.is_legal(&legal));
        let row = chain.transition_row(&legal);
        assert_eq!(row.len(), 1);
        assert!((row[&chain.index[&legal]] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_resource_hand_check() {
        // caps [1, 1], n = 1: any placement is legal → 0 rounds.
        let chain = ProfileChain::new(vec![1, 1], 1, 1.0);
        assert_eq!(chain.expected_rounds_from(&[1, 0]), 0.0);

        // caps [1, 1], n = 2 on resource 0: the two users must split.
        // Each of the 2 users (overloaded at x=2) samples uniformly:
        // with prob 1/2 it samples r1 (empty, coin 1) and moves.
        // Absorbed iff exactly one of the two moves: p = 2·(1/2)(1/2) = 1/2.
        // If both move, profile flips to (0,2) — symmetric. If none, stays.
        // E[T] = 1/p = 2.
        let chain = ProfileChain::new(vec![1, 1], 2, 1.0);
        let e = chain.expected_rounds_from(&[2, 0]);
        assert!((e - 2.0).abs() < 1e-9, "E[T] = {e}");
    }

    #[test]
    fn survival_is_monotone_and_consistent_with_mean() {
        let chain = ProfileChain::new(vec![4, 4], 6, 1.0);
        let surv = chain.survival_from(&[6, 0], 60);
        assert_eq!(surv[0], 1.0);
        for w in surv.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "survival must be non-increasing");
        }
        assert!(surv.last().unwrap() < &1e-6, "tail must vanish");
        // E[T] = Σ_{t≥0} P[T > t]; the truncated sum approximates the mean
        let mean_from_survival: f64 = surv.iter().sum();
        let exact = chain.expected_rounds_from(&[6, 0]);
        assert!(
            (mean_from_survival - exact).abs() < 1e-4,
            "Σ survival {mean_from_survival} vs E[T] {exact}"
        );
    }

    #[test]
    fn survival_from_legal_start_is_zero() {
        let chain = ProfileChain::new(vec![4, 4], 6, 1.0);
        let surv = chain.survival_from(&[3, 3], 5);
        assert!(surv.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn survival_tail_matches_simulation() {
        use qlb_core::{Instance, ResourceId, SlackDamped, State};
        use qlb_engine::{run, RunConfig};
        let caps = vec![4u32, 4];
        let n = 6u32;
        let chain = ProfileChain::new(caps.clone(), n, 1.0);
        let surv = chain.survival_from(&[n, 0], 10);
        let inst = Instance::with_capacities(n as usize, caps).unwrap();
        let runs = 4000u64;
        let mut exceed3 = 0u64;
        for seed in 0..runs {
            let state = State::all_on(&inst, ResourceId(0));
            let out = run(
                &inst,
                state,
                &SlackDamped::default(),
                RunConfig::new(seed, 100_000),
            );
            if out.rounds > 3 {
                exceed3 += 1;
            }
        }
        let emp = exceed3 as f64 / runs as f64;
        assert!(
            (emp - surv[3]).abs() < 0.03,
            "P[T>3]: exact {} vs empirical {emp}",
            surv[3]
        );
    }

    #[test]
    fn expected_rounds_decrease_with_more_slack() {
        let tight = exact_expected_rounds(vec![3, 3], 6); // Δ = 0
        let loose = exact_expected_rounds(vec![5, 5], 6); // Δ = 4
        assert!(loose < tight, "loose {loose} vs tight {tight}");
        assert!(loose > 0.0);
    }

    #[test]
    fn matches_engine_empirically() {
        // The headline validation (E18 does this at scale): exact vs
        // simulated mean on a tiny instance.
        use qlb_core::{Instance, ResourceId, SlackDamped, State};
        use qlb_engine::{run, RunConfig};
        let caps = vec![4u32, 4, 4];
        let n = 7u32;
        let exact = exact_expected_rounds(caps.clone(), n);

        let inst = Instance::with_capacities(n as usize, caps).unwrap();
        let runs = 6000u64;
        let mut total = 0u64;
        for seed in 0..runs {
            let state = State::all_on(&inst, ResourceId(0));
            let out = run(
                &inst,
                state,
                &SlackDamped::default(),
                RunConfig::new(seed, 100_000),
            );
            assert!(out.converged);
            total += out.rounds;
        }
        let empirical = total as f64 / runs as f64;
        let rel = (empirical - exact).abs() / exact;
        assert!(
            rel < 0.05,
            "exact {exact:.4} vs empirical {empirical:.4} (rel {rel:.3})"
        );
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_rejected() {
        let _ = ProfileChain::new(vec![1, 1], 3, 1.0);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_cap_rejected() {
        let _ = ProfileChain::new(vec![0, 4], 2, 1.0);
    }
}
