//! Dense linear solver (Gaussian elimination with partial pivoting).

/// Solve `A x = b` in place; `a` is row-major `n × n`.
///
/// Returns `None` for (numerically) singular systems.
///
/// # Panics
/// Panics on mismatched dimensions.
pub fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix/vector size mismatch");
    for row in &a {
        assert_eq!(row.len(), n, "matrix must be square");
    }

    for col in 0..n {
        // partial pivot
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);

        let diag = a[col][col];
        let (pivot_rows, rest) = a.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        for (off, row) in rest.iter_mut().enumerate() {
            let i = col + 1 + off;
            let factor = row[col] / diag;
            if factor == 0.0 {
                continue;
            }
            for (x, &p) in row[col..].iter_mut().zip(&pivot_row[col..]) {
                *x -= factor * p;
            }
            b[i] -= factor * b[col];
        }
    }
    // back substitution
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = b[i];
        for j in (i + 1)..n {
            acc -= a[i][j] * x[j];
        }
        x[i] = acc / a[i][i];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_system() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_linear(a, vec![3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn known_2x2() {
        // 2x + y = 5; x − y = 1 → x = 2, y = 1
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve_linear(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn needs_pivoting() {
        // zero on the initial diagonal forces a row swap
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_linear(a, vec![7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn random_systems_verify() {
        use qlb_rng::{Rng64, SplitMix64};
        let mut rng = SplitMix64::new(11);
        for _case in 0..20 {
            let n = 8;
            let a: Vec<Vec<f64>> = (0..n)
                .map(|i| {
                    (0..n)
                        .map(|j| rng.next_f64() + if i == j { 4.0 } else { 0.0 })
                        .collect()
                })
                .collect();
            let x_true: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0 - 5.0).collect();
            let b: Vec<f64> = (0..n)
                .map(|i| (0..n).map(|j| a[i][j] * x_true[j]).sum())
                .collect();
            let x = solve_linear(a, b).unwrap();
            for (xs, xt) in x.iter().zip(&x_true) {
                assert!((xs - xt).abs() < 1e-8, "{xs} vs {xt}");
            }
        }
    }
}
