//! Enumeration of load profiles (compositions of `n` into `m` parts).

use std::collections::HashMap;

/// All compositions of `n` into `m` non-negative parts, in lexicographic
/// order. `C(n + m − 1, m − 1)` profiles.
///
/// # Panics
/// Panics for `m == 0` with `n > 0` (no profile can hold users).
pub fn enumerate_profiles(n: u32, m: usize) -> Vec<Vec<u32>> {
    assert!(m > 0 || n == 0, "cannot place users on zero resources");
    let mut out = Vec::new();
    let mut current = vec![0u32; m];
    recurse(n, 0, &mut current, &mut out);
    out
}

fn recurse(remaining: u32, idx: usize, current: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
    if idx + 1 == current.len() {
        current[idx] = remaining;
        out.push(current.clone());
        current[idx] = 0;
        return;
    }
    for take in 0..=remaining {
        current[idx] = take;
        recurse(remaining - take, idx + 1, current, out);
    }
    current[idx] = 0;
}

/// Index map from profile to position in [`enumerate_profiles`]' order.
pub fn profile_index(profiles: &[Vec<u32>]) -> HashMap<Vec<u32>, usize> {
    profiles
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binom(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let mut r = 1u64;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn counts_match_stars_and_bars() {
        for (n, m) in [(0u32, 1usize), (3, 1), (4, 2), (6, 3), (5, 4)] {
            let profiles = enumerate_profiles(n, m);
            assert_eq!(
                profiles.len() as u64,
                binom(n as u64 + m as u64 - 1, m as u64 - 1),
                "n={n}, m={m}"
            );
            for p in &profiles {
                assert_eq!(p.iter().sum::<u32>(), n);
                assert_eq!(p.len(), m);
            }
        }
    }

    #[test]
    fn profiles_are_unique_and_indexed() {
        let profiles = enumerate_profiles(5, 3);
        let index = profile_index(&profiles);
        assert_eq!(index.len(), profiles.len());
        for (i, p) in profiles.iter().enumerate() {
            assert_eq!(index[p], i);
        }
    }

    #[test]
    fn single_resource_has_one_profile() {
        assert_eq!(enumerate_profiles(7, 1), vec![vec![7]]);
    }

    #[test]
    fn zero_users() {
        assert_eq!(enumerate_profiles(0, 3), vec![vec![0, 0, 0]]);
    }
}
