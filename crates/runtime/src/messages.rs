//! Wire messages between the coordinator, resource shards, and user shards.

use qlb_core::Move;

/// Messages received by a resource shard (from the coordinator and from
/// every user shard, multiplexed on one channel).
#[derive(Debug)]
pub(crate) enum ToResource {
    /// Coordinator: broadcast the snapshot for `round`.
    Emit {
        /// Round whose snapshot to publish.
        round: u64,
    },
    /// A user shard's migration batch for `round` (possibly empty; every
    /// user shard sends exactly one per round so shards can count).
    Moves {
        /// Round the batch belongs to.
        round: u64,
        /// The migrations (only deltas touching this shard are applied).
        moves: Vec<Move>,
    },
    /// Shut down and report final loads.
    Stop,
}

/// Messages received by a user shard.
#[derive(Debug)]
pub(crate) enum ToUser {
    /// A resource shard's slice of the round-`round` snapshot.
    Snapshot {
        /// Round the snapshot describes (loads after `round` applied
        /// rounds).
        round: u64,
        /// First resource index of the slice.
        start: usize,
        /// Congestions of the shard's resources.
        loads: Vec<u32>,
    },
    /// Shut down and report final positions.
    Stop,
}

/// Messages received by the coordinator.
#[derive(Debug)]
pub(crate) enum ToCoordinator {
    /// A user shard finished deciding `round`.
    Report {
        /// The round reported.
        round: u64,
        /// Truly unsatisfied users in this shard (fresh snapshot).
        unsatisfied: u64,
        /// Migrations this shard emitted this round.
        migrations: u64,
        /// Largest observation delay drawn by any owned user this round
        /// (0 in synchronous mode) — feeds the staleness gauge.
        max_staleness: u64,
    },
    /// Final positions of a user shard (sent after `Stop`),
    /// delta-compressed against the shard's **initial** positions — the
    /// coordinator still holds those, so only the users that actually
    /// moved cross the wire (`qlb_core::StateDelta` wire format, base
    /// generation 0).
    FinalAssign {
        /// First user index of the shard.
        start: usize,
        /// Serialized [`qlb_core::StateDelta`] over the shard's users.
        delta: Vec<u8>,
    },
}
