//! # qlb-runtime — message-passing actor runtime
//!
//! `qlb-engine` shows the protocol's mathematics; this crate shows the
//! protocol is genuinely *distributed*: resources and users run as actors
//! on separate OS threads exchanging crossbeam channel messages, with no
//! shared mutable state.
//!
//! ## Topology
//!
//! ```text
//!            Emit(t) / Stop                Snapshot(t)  (loads slice)
//!  coordinator ───────────▶ resource shard ───────────▶ user shard
//!       ▲                        ▲                          │
//!       │  Report(t)             │  Moves(t)                │
//!       └────────────────────────┴──────────────────────────┘
//! ```
//!
//! * **Resource shards** own disjoint ranges of resources and their true
//!   congestion. Each round they broadcast a load snapshot and apply the
//!   migration batches they receive (increments/decrements commute, so
//!   arrival order across shards is irrelevant — determinism holds).
//! * **User shards** own disjoint ranges of users (their positions). They
//!   assemble the snapshot slices, run the *same* decision kernel as the
//!   engine (`qlb_core::step::decide_user`), send migration batches back,
//!   and report true satisfaction counts.
//! * The **coordinator** (caller thread) paces rounds and detects
//!   convergence.
//!
//! ## Synchrony and the bounded-delay mode
//!
//! With `max_delay = 0` every decision observes the current snapshot and
//! the runtime reproduces `qlb-engine` **bit-for-bit** (same rounds, same
//! migrations, same final state) — verified by tests and experiment E10.
//!
//! With `max_delay = D > 0`, each user's observation in round `t` is the
//! snapshot of round `t − d` for a per-(user, round) random `d ≤ D`: the
//! classical *outdated information* model. Users may then migrate while
//! actually satisfied or sit still while actually unsatisfied; experiment
//! E7 measures how convergence degrades with `D` (the reconstructed theorem
//! T4 predicts a multiplicative `O(D)` slowdown, not divergence).
//! Convergence detection always uses fresh information — that is harness
//! instrumentation, not part of the protocol.
//!
//! ```
//! use qlb_core::prelude::*;
//! use qlb_runtime::{run_distributed, RuntimeConfig};
//!
//! let inst = Instance::uniform(256, 32, 10).unwrap();
//! let start = State::all_on(&inst, ResourceId(0));
//! let out = run_distributed(
//!     &inst,
//!     start,
//!     &SlackDamped::default(),
//!     RuntimeConfig::new(42, 10_000).with_shards(4, 2),
//! );
//! assert!(out.converged);
//! assert!(out.messages > 0); // it really talked over channels
//! ```

#![warn(missing_docs)]

mod driver;
mod messages;
mod resource_shard;
mod user_shard;

pub use driver::{run_distributed, run_distributed_observed, DistributedOutcome, RuntimeConfig};
