//! Coordinator: spawns the actor topology and paces the rounds.

use crate::messages::{ToCoordinator, ToResource, ToUser};
use crate::resource_shard::ResourceShard;
use crate::user_shard::UserShard;
use crossbeam::channel::unbounded;
use qlb_core::{Instance, Protocol, ResourceId, State, StateDelta};
use qlb_obs::{timed, Counter, DeltaSnapshot, Event, Gauge, NoopSink, Phase, Sink};

/// Configuration of a distributed run.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Seed; the synchronous mode reproduces `qlb_engine::run` with the
    /// same seed exactly.
    pub seed: u64,
    /// Round budget.
    pub max_rounds: u64,
    /// Number of user-shard actors (≥ 1).
    pub user_shards: usize,
    /// Number of resource-shard actors (≥ 1).
    pub resource_shards: usize,
    /// Maximum observation delay `D`; 0 = synchronous.
    pub max_delay: u64,
    /// Probability a snapshot slice is lost per (resource shard, user
    /// shard, round); the observer then keeps the previous round's values.
    /// 0 = reliable links.
    pub stale_prob: f64,
}

impl RuntimeConfig {
    /// Synchronous config with 2×2 shards.
    pub fn new(seed: u64, max_rounds: u64) -> Self {
        Self {
            seed,
            max_rounds,
            user_shards: 2,
            resource_shards: 2,
            max_delay: 0,
            stale_prob: 0.0,
        }
    }

    /// Set the shard counts.
    pub fn with_shards(mut self, user_shards: usize, resource_shards: usize) -> Self {
        self.user_shards = user_shards;
        self.resource_shards = resource_shards;
        self
    }

    /// Set the observation-delay bound (asynchronous mode).
    pub fn with_max_delay(mut self, d: u64) -> Self {
        self.max_delay = d;
        self
    }

    /// Set the snapshot-loss probability (failure injection).
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_stale_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.stale_prob = p;
        self
    }
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// True iff a (truly) legal state was reached within the budget.
    pub converged: bool,
    /// Rounds executed.
    pub rounds: u64,
    /// Total migrations.
    pub migrations: u64,
    /// Channel messages exchanged (snapshots + batches + reports), for the
    /// communication-cost accounting of experiment E7.
    pub messages: u64,
    /// Final state (assembled from the shards' ground truth).
    pub state: State,
}

/// Execute a protocol on the actor runtime.
///
/// # Panics
/// Panics if shard counts are zero or exceed the entity counts they shard.
pub fn run_distributed<P: Protocol + ?Sized>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: RuntimeConfig,
) -> DistributedOutcome {
    run_distributed_observed(inst, state, proto, config, &mut NoopSink)
}

/// [`run_distributed`] with an observability sink attached.
///
/// Only the coordinator (the caller thread) touches the sink — the actor
/// threads stay sink-free and ship their accounting back in-band: user
/// shards extend their per-round reports with the largest observation
/// delay drawn (the snapshot-staleness gauge), and resource shards return
/// snapshot-send / stale-slice totals at teardown. The coordinator emits
/// per-round snapshot send/receive events, message counters, the barrier
/// wait timer (report collection), and round events. Derived data only —
/// trajectories are bit-identical to [`run_distributed`].
///
/// # Panics
/// Panics if shard counts are zero, as [`run_distributed`].
pub fn run_distributed_observed<P: Protocol + ?Sized, S: Sink>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: RuntimeConfig,
    sink: &mut S,
) -> DistributedOutcome {
    let n = inst.num_users();
    let m = inst.num_resources();
    assert!(config.user_shards >= 1, "need at least one user shard");
    assert!(
        config.resource_shards >= 1,
        "need at least one resource shard"
    );
    // Shard boundaries first: `split` can produce fewer non-empty ranges
    // than requested (ceil-division chunks), and every spawned user shard
    // waits for exactly one snapshot slice per *actual* resource shard —
    // sizing channels off the request instead of the split would deadlock.
    let res_bounds = split(m, config.resource_shards.min(m));
    let user_bounds = split(n, config.user_shards.min(n.max(1)));
    let rs = res_bounds.len();
    let us = user_bounds.len();
    debug_assert!(rs >= 1 && us >= 1);

    // Channels.
    let (coord_tx, coord_rx) = unbounded::<ToCoordinator>();
    let res_channels: Vec<_> = (0..rs).map(|_| unbounded::<ToResource>()).collect();
    let user_channels: Vec<_> = (0..us).map(|_| unbounded::<ToUser>()).collect();
    let res_txs: Vec<_> = res_channels.iter().map(|(tx, _)| tx.clone()).collect();
    let user_txs: Vec<_> = user_channels.iter().map(|(tx, _)| tx.clone()).collect();

    // The coordinator keeps the initial assignment; user shards hand back
    // only deltas against it at teardown.
    let mut outcome_assign: Vec<u32> = state.assignment().iter().map(|r| r.0).collect();
    let mut rounds = 0u64;
    let mut migrations = 0u64;
    let mut messages = 0u64;
    let mut converged = false;

    std::thread::scope(|scope| {
        // Resource shard actors.
        let mut res_handles = Vec::with_capacity(rs);
        for (i, (lo, hi)) in res_bounds.iter().copied().enumerate() {
            let rx = res_channels[i].1.clone();
            let user_txs = user_txs.clone();
            let loads = state.loads()[lo..hi].to_vec();
            let shard = ResourceShard::new(lo, loads, rx, user_txs).with_loss(
                config.seed,
                i,
                config.stale_prob,
            );
            res_handles.push(scope.spawn(move || shard.run()));
        }
        // User shard actors.
        for (i, (lo, hi)) in user_bounds.iter().copied().enumerate() {
            let rx = user_channels[i].1.clone();
            let res_txs = res_txs.clone();
            let coord_tx = coord_tx.clone();
            let positions = state.assignment()[lo..hi].to_vec();
            let shard = UserShard::new(
                inst,
                proto,
                config.seed,
                lo,
                positions,
                rx,
                res_txs,
                coord_tx,
                config.max_delay,
            );
            scope.spawn(move || shard.run());
        }

        // ---- coordinator loop ----
        let mut round = 0u64;
        loop {
            // Ask resource shards to publish the round's snapshot.
            timed(sink, Phase::Snapshot, || {
                for (tx, _) in &res_channels {
                    tx.send(ToResource::Emit { round }).expect("shard alive");
                }
            });
            messages += rs as u64; // Emits
            messages += (rs * us) as u64; // snapshots
            if S::ENABLED {
                for shard in 0..rs {
                    sink.event(Event::SnapshotSend {
                        round,
                        shard: shard as u64,
                    });
                }
            }
            // Collect user-shard reports (the round barrier).
            let mut unsatisfied = 0u64;
            let mut round_migrations = 0u64;
            let mut round_staleness = 0u64;
            timed(sink, Phase::Barrier, || {
                let mut reports = 0usize;
                while reports < us {
                    match coord_rx.recv().expect("user shard alive") {
                        ToCoordinator::Report {
                            round: r,
                            unsatisfied: u,
                            migrations: g,
                            max_staleness,
                        } => {
                            debug_assert_eq!(r, round, "reports arrive in round order");
                            unsatisfied += u;
                            round_migrations += g;
                            round_staleness = round_staleness.max(max_staleness);
                            reports += 1;
                        }
                        ToCoordinator::FinalAssign { .. } => {
                            unreachable!("no Stop sent yet")
                        }
                    }
                }
            });
            messages += us as u64; // reports
            messages += (us * rs) as u64; // move batches
            if S::ENABLED {
                // every user shard assembled a full snapshot before its
                // report could arrive
                for shard in 0..us {
                    sink.event(Event::SnapshotRecv {
                        round,
                        shard: shard as u64,
                    });
                }
                sink.add(Counter::Reports, us as u64);
                sink.add(Counter::MoveBatches, (us * rs) as u64);
                sink.add(Counter::MessagesSent, (rs + rs * us + us + us * rs) as u64);
                sink.set(Gauge::SnapshotStaleness, round_staleness);
                sink.set(Gauge::Unsatisfied, unsatisfied);
            }

            if unsatisfied == 0 {
                converged = true;
                rounds = round;
                break;
            }
            migrations += round_migrations;
            if S::ENABLED {
                sink.add(Counter::Rounds, 1);
                sink.add(Counter::Migrations, round_migrations);
                sink.event(Event::RoundEnd {
                    round,
                    migrations: round_migrations,
                    unsatisfied,
                    overload: None,
                });
            }
            round += 1;
            if round >= config.max_rounds {
                rounds = round;
                break;
            }
        }

        // ---- teardown & state assembly ----
        for (tx, _) in &res_channels {
            tx.send(ToResource::Stop).expect("shard alive");
        }
        for (tx, _) in &user_channels {
            tx.send(ToUser::Stop).expect("shard alive");
        }
        let mut finals = 0usize;
        while finals < us {
            if let ToCoordinator::FinalAssign { start, delta } =
                coord_rx.recv().expect("user shard alive")
            {
                let d = StateDelta::from_bytes(&delta).expect("well-formed shard delta");
                let end = start + d.num_users() as usize;
                d.apply(&mut outcome_assign[start..end], 0)
                    .expect("shard delta applies to the initial positions");
                finals += 1;
            }
        }
        // Resource shards return their true loads (used as a cross-check)
        // plus their snapshot accounting.
        let mut true_loads = vec![0u32; m];
        for h in res_handles {
            let (start, loads, (sent, stale)) = h.join().expect("resource shard panicked");
            true_loads[start..start + loads.len()].copy_from_slice(&loads);
            if S::ENABLED {
                sink.add(Counter::SnapshotsSent, sent);
                sink.add(Counter::StaleSnapshots, stale);
            }
        }
        let assembled = State::new(
            inst,
            outcome_assign.iter().map(|&r| ResourceId(r)).collect(),
        )
        .expect("valid assembled state");
        assert_eq!(
            assembled.loads(),
            &true_loads[..],
            "shard ground truths diverged — runtime bug"
        );
        // Trailer checkpoint: the whole run as one delta over the initial
        // assignment — what a recovering coordinator would need to rebuild
        // the final state from the start state alone.
        if S::ENABLED {
            let initial: Vec<u32> = state.assignment().iter().map(|r| r.0).collect();
            let d = StateDelta::encode(&initial, &outcome_assign, 0, rounds.max(1));
            sink.delta_snapshot(&DeltaSnapshot {
                round: rounds,
                base_gen: d.base_gen(),
                gen: d.gen(),
                users: d.num_users(),
                changed: d.changed(),
                bytes: &d.to_bytes(),
            });
        }
    });

    let state = State::new(
        inst,
        outcome_assign.iter().map(|&r| ResourceId(r)).collect(),
    )
    .expect("valid final state");
    // With lossy links the coordinator's stop condition is based on possibly
    // stale observations; the reported flag is always TRUE legality.
    let converged = converged && state.is_legal(inst);
    DistributedOutcome {
        converged,
        rounds,
        migrations,
        messages,
        state,
    }
}

/// Split `n` items into `k` contiguous, non-empty-where-possible ranges.
fn split(n: usize, k: usize) -> Vec<(usize, usize)> {
    let chunk = n.div_ceil(k.max(1)).max(1);
    (0..k)
        .map(|i| ((i * chunk).min(n), ((i + 1) * chunk).min(n)))
        .filter(|(lo, hi)| lo < hi || n == 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlb_core::SlackDamped;
    use qlb_engine::{run, RunConfig};

    #[test]
    fn split_covers_everything() {
        for n in [0usize, 1, 7, 100] {
            for k in [1usize, 2, 3, 16] {
                let parts = split(n, k);
                let total: usize = parts.iter().map(|(lo, hi)| hi - lo).sum();
                assert_eq!(total, n, "n={n}, k={k}");
                for w in parts.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "gaps in split");
                }
            }
        }
    }

    #[test]
    fn synchronous_runtime_matches_engine_exactly() {
        let inst = Instance::uniform(200, 16, 16).unwrap();
        let state = State::all_on(&inst, ResourceId(0));
        let proto = SlackDamped::default();
        let seed = 31;

        let engine = run(&inst, state.clone(), &proto, RunConfig::new(seed, 10_000));
        for (us, rs) in [(1, 1), (2, 3), (4, 4), (7, 2)] {
            let dist = run_distributed(
                &inst,
                state.clone(),
                &proto,
                RuntimeConfig::new(seed, 10_000).with_shards(us, rs),
            );
            assert!(dist.converged);
            assert_eq!(dist.rounds, engine.rounds, "shards ({us},{rs})");
            assert_eq!(dist.migrations, engine.migrations, "shards ({us},{rs})");
            assert_eq!(dist.state, engine.state, "shards ({us},{rs})");
        }
    }

    #[test]
    fn already_legal_stops_at_zero_rounds() {
        let inst = Instance::uniform(8, 4, 3).unwrap();
        let state = State::round_robin(&inst);
        let out = run_distributed(
            &inst,
            state,
            &SlackDamped::default(),
            RuntimeConfig::new(1, 100),
        );
        assert!(out.converged);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.migrations, 0);
    }

    #[test]
    fn round_budget_respected() {
        let inst = Instance::uniform(64, 8, 10).unwrap();
        let state = State::all_on(&inst, ResourceId(0));
        let out = run_distributed(
            &inst,
            state,
            &SlackDamped::default(),
            RuntimeConfig::new(1, 1),
        );
        assert!(!out.converged);
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn asynchronous_mode_still_converges() {
        let inst = Instance::uniform(128, 16, 10).unwrap(); // γ = 1.25
        let state = State::all_on(&inst, ResourceId(0));
        for d in [1u64, 2, 4] {
            let out = run_distributed(
                &inst,
                state.clone(),
                &SlackDamped::default(),
                RuntimeConfig::new(9, 50_000).with_max_delay(d),
            );
            assert!(out.converged, "D={d} did not converge");
            assert!(out.state.is_legal(&inst));
        }
    }

    #[test]
    fn async_mode_is_deterministic() {
        let inst = Instance::uniform(64, 8, 10).unwrap();
        let state = State::all_on(&inst, ResourceId(0));
        let cfg = RuntimeConfig::new(4, 50_000)
            .with_shards(3, 2)
            .with_max_delay(3);
        let a = run_distributed(&inst, state.clone(), &SlackDamped::default(), cfg);
        let b = run_distributed(&inst, state, &SlackDamped::default(), cfg);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.state, b.state);
    }

    #[test]
    fn lossy_links_still_converge() {
        let inst = Instance::uniform(128, 16, 10).unwrap();
        let state = State::all_on(&inst, ResourceId(0));
        for p in [0.1f64, 0.3, 1.0] {
            let out = run_distributed(
                &inst,
                state.clone(),
                &SlackDamped::default(),
                RuntimeConfig::new(13, 100_000)
                    .with_shards(3, 2)
                    .with_stale_prob(p),
            );
            assert!(out.converged, "loss p = {p} prevented convergence");
            assert!(out.state.is_legal(&inst));
        }
    }

    #[test]
    fn zero_loss_matches_reliable_run() {
        let inst = Instance::uniform(64, 8, 10).unwrap();
        let state = State::all_on(&inst, ResourceId(0));
        let reliable = run_distributed(
            &inst,
            state.clone(),
            &SlackDamped::default(),
            RuntimeConfig::new(5, 10_000).with_shards(2, 2),
        );
        let zero_loss = run_distributed(
            &inst,
            state,
            &SlackDamped::default(),
            RuntimeConfig::new(5, 10_000)
                .with_shards(2, 2)
                .with_stale_prob(0.0),
        );
        assert_eq!(reliable.rounds, zero_loss.rounds);
        assert_eq!(reliable.state, zero_loss.state);
    }

    #[test]
    fn lossy_runs_are_deterministic() {
        let inst = Instance::uniform(64, 8, 10).unwrap();
        let state = State::all_on(&inst, ResourceId(0));
        let cfg = RuntimeConfig::new(8, 100_000)
            .with_shards(2, 2)
            .with_stale_prob(0.4);
        let a = run_distributed(&inst, state.clone(), &SlackDamped::default(), cfg);
        let b = run_distributed(&inst, state, &SlackDamped::default(), cfg);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.state, b.state);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn bad_loss_probability_rejected() {
        let _ = RuntimeConfig::new(1, 1).with_stale_prob(1.5);
    }

    #[test]
    fn message_accounting_positive() {
        let inst = Instance::uniform(32, 4, 10).unwrap();
        let state = State::all_on(&inst, ResourceId(0));
        let out = run_distributed(
            &inst,
            state,
            &SlackDamped::default(),
            RuntimeConfig::new(2, 1_000).with_shards(2, 2),
        );
        assert!(out.converged);
        // at least one full round of messaging happened
        assert!(out.messages >= (2 + 4 + 2 + 4) as u64);
    }

    /// Regression: `split(6, 5)` yields only 3 non-empty resource ranges;
    /// the driver must size snapshot expectations off the actual shard
    /// count or user shards wait forever for slices nobody sends.
    #[test]
    fn ragged_shard_split_does_not_deadlock() {
        let inst = Instance::uniform(59, 6, 9).unwrap();
        let state = State::random(&inst, 3);
        let out = run_distributed(
            &inst,
            state,
            &SlackDamped::default(),
            RuntimeConfig::new(7, 7).with_shards(5, 5),
        );
        // budget-capped run must terminate and agree with the engine
        let eng = qlb_engine::run(
            &inst,
            State::random(&inst, 3),
            &SlackDamped::default(),
            qlb_engine::RunConfig::new(7, 7),
        );
        assert_eq!(out.rounds, eng.rounds);
        assert_eq!(out.state, eng.state);
    }

    #[test]
    fn observed_run_matches_and_accounts_messages() {
        use qlb_obs::Recorder;
        let inst = Instance::uniform(64, 8, 10).unwrap();
        let state = State::all_on(&inst, ResourceId(0));
        let cfg = RuntimeConfig::new(21, 10_000)
            .with_shards(3, 2)
            .with_max_delay(2)
            .with_stale_prob(0.2);
        let plain = run_distributed(&inst, state.clone(), &SlackDamped::default(), cfg);
        let mut rec = Recorder::default();
        let observed =
            run_distributed_observed(&inst, state, &SlackDamped::default(), cfg, &mut rec);
        // bit-identical trajectory with the sink attached
        assert_eq!(plain.rounds, observed.rounds);
        assert_eq!(plain.migrations, observed.migrations);
        assert_eq!(plain.state, observed.state);
        // the counters agree with the driver's own accounting
        assert_eq!(
            rec.counter(qlb_obs::Counter::MessagesSent),
            observed.messages
        );
        assert_eq!(
            rec.counter(qlb_obs::Counter::Migrations),
            observed.migrations
        );
        // every Emit became user_shards slices from each resource shard
        assert_eq!(
            rec.counter(qlb_obs::Counter::SnapshotsSent),
            (observed.rounds + 1) * 2 * 3
        );
        // injected loss showed up
        assert!(rec.counter(qlb_obs::Counter::StaleSnapshots) > 0);
        // barrier waits were timed every round
        assert_eq!(
            rec.timers().histogram(qlb_obs::Phase::Barrier).count(),
            observed.rounds + 1
        );
    }

    #[test]
    fn more_shards_than_entities_is_clamped() {
        let inst = Instance::uniform(3, 2, 2).unwrap();
        let state = State::all_on(&inst, ResourceId(0));
        let out = run_distributed(
            &inst,
            state,
            &SlackDamped::default(),
            RuntimeConfig::new(2, 1_000).with_shards(64, 64),
        );
        assert!(out.converged);
        assert!(out.state.is_legal(&inst));
    }
}
