//! The resource-shard actor: owns true congestion for a resource range.

use crate::messages::{ToResource, ToUser};
use crossbeam::channel::{Receiver, Sender};
use qlb_core::Move;
use qlb_rng::{Rng64, RoundStream};
use std::collections::HashMap;

/// Salt for the snapshot-loss stream (independent of protocol and delay
/// streams).
const STALE_SALT: u64 = 0x10_55; // "LOSS"

/// State and event loop of one resource shard.
pub(crate) struct ResourceShard {
    /// First resource index owned.
    start: usize,
    /// True congestion of owned resources.
    loads: Vec<u32>,
    /// Inbox.
    rx: Receiver<ToResource>,
    /// Broadcast targets (all user shards).
    user_txs: Vec<Sender<ToUser>>,
    /// Number of user shards (batches to expect per round).
    num_user_shards: usize,
    /// Out-of-order buffer: round → batches received so far.
    pending: HashMap<u64, Vec<Vec<Move>>>,
    /// Run seed (addresses the loss stream).
    seed: u64,
    /// This shard's index (addresses the loss stream).
    shard_index: usize,
    /// Probability that a snapshot slice to a given user shard is lost —
    /// the observer then keeps the previous round's values.
    stale_prob: f64,
    /// Loads as of the previous broadcast (what a lossy link re-delivers).
    prev_loads: Option<Vec<u32>>,
    /// Snapshot slices sent over the run (observability accounting).
    snapshots_sent: u64,
    /// Slices that re-delivered stale values due to injected loss.
    stale_slices: u64,
}

impl ResourceShard {
    pub(crate) fn new(
        start: usize,
        loads: Vec<u32>,
        rx: Receiver<ToResource>,
        user_txs: Vec<Sender<ToUser>>,
    ) -> Self {
        let num_user_shards = user_txs.len();
        Self {
            start,
            loads,
            rx,
            user_txs,
            num_user_shards,
            pending: HashMap::new(),
            seed: 0,
            shard_index: 0,
            stale_prob: 0.0,
            prev_loads: None,
            snapshots_sent: 0,
            stale_slices: 0,
        }
    }

    /// Enable lossy snapshot links: with probability `stale_prob` per
    /// (user shard, round), the slice sent is the *previous* round's values
    /// — modelling a lost update whose observer retains stale state.
    pub(crate) fn with_loss(mut self, seed: u64, shard_index: usize, stale_prob: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&stale_prob));
        self.seed = seed;
        self.shard_index = shard_index;
        self.stale_prob = stale_prob;
        self
    }

    /// Run until `Stop`; returns `(start, final loads, snapshot stats)`
    /// where the stats are `(slices sent, stale slices delivered)`.
    pub(crate) fn run(mut self) -> (usize, Vec<u32>, (u64, u64)) {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                ToResource::Emit { round } => self.broadcast(round),
                ToResource::Moves { round, moves } => {
                    let batch = self.pending.entry(round).or_default();
                    batch.push(moves);
                    if batch.len() == self.num_user_shards {
                        let batches = self.pending.remove(&round).expect("just inserted");
                        for moves in batches {
                            self.apply(&moves);
                        }
                    }
                }
                ToResource::Stop => break,
            }
        }
        (
            self.start,
            self.loads,
            (self.snapshots_sent, self.stale_slices),
        )
    }

    fn broadcast(&mut self, round: u64) {
        for (us, tx) in self.user_txs.iter().enumerate() {
            // Deterministic loss decision per (resource shard, user shard,
            // round): a lost slice re-delivers the previous round's values.
            let lose = self.stale_prob > 0.0 && {
                let mut rng = RoundStream::new(
                    qlb_rng::mix64_pair(self.seed, STALE_SALT),
                    (self.shard_index as u64) << 32 | us as u64,
                    round,
                );
                rng.bernoulli(self.stale_prob)
            };
            let loads = match (&self.prev_loads, lose) {
                (Some(prev), true) => {
                    self.stale_slices += 1;
                    prev.clone()
                }
                _ => self.loads.clone(),
            };
            self.snapshots_sent += 1;
            // A send fails only if the runtime is tearing down; ignore.
            let _ = tx.send(ToUser::Snapshot {
                round,
                start: self.start,
                loads,
            });
        }
        self.prev_loads = Some(self.loads.clone());
    }

    fn apply(&mut self, moves: &[Move]) {
        let end = self.start + self.loads.len();
        for mv in moves {
            let from = mv.from.index();
            let to = mv.to.index();
            if (self.start..end).contains(&from) {
                debug_assert!(self.loads[from - self.start] > 0, "negative load");
                self.loads[from - self.start] -= 1;
            }
            if (self.start..end).contains(&to) {
                self.loads[to - self.start] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use qlb_core::{ResourceId, UserId};

    fn mv(user: u32, from: u32, to: u32) -> Move {
        Move {
            user: UserId(user),
            from: ResourceId(from),
            to: ResourceId(to),
        }
    }

    #[test]
    fn applies_only_owned_deltas() {
        let (tx, rx) = unbounded();
        let (utx, urx) = unbounded();
        // shard owns resources 2..4 with loads [5, 5]
        let shard = ResourceShard::new(2, vec![5, 5], rx, vec![utx]);
        // one user shard: a batch moving u0: r2→r3 (both owned),
        // u1: r0→r2 (arrival only), u2: r3→r0 (departure only),
        // u3: r0→r1 (unrelated)
        tx.send(ToResource::Moves {
            round: 0,
            moves: vec![mv(0, 2, 3), mv(1, 0, 2), mv(2, 3, 0), mv(3, 0, 1)],
        })
        .unwrap();
        tx.send(ToResource::Emit { round: 1 }).unwrap();
        tx.send(ToResource::Stop).unwrap();
        let (start, loads, (sent, stale)) = shard.run();
        assert_eq!(start, 2);
        // r2: 5 −1 (u0 out) +1 (u1 in) = 5; r3: 5 +1 (u0 in) −1 (u2 out) = 5
        assert_eq!(loads, vec![5, 5]);
        assert_eq!((sent, stale), (1, 0)); // one Emit, reliable link
                                           // snapshot emitted after application
        match urx.recv().unwrap() {
            ToUser::Snapshot {
                round,
                start,
                loads,
            } => {
                assert_eq!(round, 1);
                assert_eq!(start, 2);
                assert_eq!(loads, vec![5, 5]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn waits_for_all_user_shards() {
        let (tx, rx) = unbounded();
        let (utx, _urx) = unbounded();
        // two user shards expected
        let shard = ResourceShard::new(0, vec![3], rx, vec![utx.clone(), utx]);
        tx.send(ToResource::Moves {
            round: 0,
            moves: vec![mv(0, 0, 1)],
        })
        .unwrap();
        // second shard's (empty) batch completes the round
        tx.send(ToResource::Moves {
            round: 0,
            moves: vec![],
        })
        .unwrap();
        tx.send(ToResource::Stop).unwrap();
        let (_, loads, _) = shard.run();
        assert_eq!(loads, vec![2]);
    }

    #[test]
    fn buffers_out_of_order_rounds() {
        let (tx, rx) = unbounded();
        let (utx, _urx) = unbounded();
        let shard = ResourceShard::new(0, vec![4], rx, vec![utx.clone(), utx]);
        // round 1 batch arrives before round 0 completes
        tx.send(ToResource::Moves {
            round: 1,
            moves: vec![mv(0, 0, 1)],
        })
        .unwrap();
        tx.send(ToResource::Moves {
            round: 0,
            moves: vec![mv(1, 0, 1)],
        })
        .unwrap();
        tx.send(ToResource::Moves {
            round: 0,
            moves: vec![],
        })
        .unwrap();
        tx.send(ToResource::Moves {
            round: 1,
            moves: vec![],
        })
        .unwrap();
        tx.send(ToResource::Stop).unwrap();
        let (_, loads, _) = shard.run();
        assert_eq!(loads, vec![2]); // both departures applied
    }
}
