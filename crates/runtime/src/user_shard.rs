//! The user-shard actor: owns positions for a user range and runs the
//! decision kernel.

use crate::messages::{ToCoordinator, ToResource, ToUser};
use crossbeam::channel::{Receiver, Sender};
use qlb_core::step::decide_user;
use qlb_core::{Instance, Protocol, ResourceId, StateDelta, UserId};
use qlb_rng::{Rng64, RoundStream};
use std::collections::{HashMap, VecDeque};

/// Salt separating the observation-delay stream from protocol streams, so
/// turning asynchrony on never perturbs the protocol's own coin flips.
const DELAY_SALT: u64 = 0x0b_5e7d_e1a0; // "observe delay"

/// State and event loop of one user shard.
pub(crate) struct UserShard<'a, P: Protocol + ?Sized> {
    inst: &'a Instance,
    proto: &'a P,
    seed: u64,
    /// First owned user index.
    start: usize,
    /// Current position of each owned user (ground truth for these users).
    positions: Vec<ResourceId>,
    /// Positions at spawn time — the base the final-state delta is encoded
    /// against (the coordinator still holds the same base).
    initial: Vec<u32>,
    /// Inbox.
    rx: Receiver<ToUser>,
    /// All resource shards (each receives our batch every round).
    res_txs: Vec<Sender<ToResource>>,
    /// Coordinator.
    coord_tx: Sender<ToCoordinator>,
    /// Number of resource shards (snapshot slices to expect per round).
    num_res_shards: usize,
    /// Maximum observation delay `D` (0 = synchronous).
    max_delay: u64,
    /// Assembled snapshots of the last `D + 1` rounds (front = oldest).
    history: VecDeque<(u64, Vec<u32>)>,
    /// Slices received for not-yet-complete rounds.
    partial: HashMap<u64, (usize, Vec<u32>)>,
}

impl<'a, P: Protocol + ?Sized> UserShard<'a, P> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        inst: &'a Instance,
        proto: &'a P,
        seed: u64,
        start: usize,
        positions: Vec<ResourceId>,
        rx: Receiver<ToUser>,
        res_txs: Vec<Sender<ToResource>>,
        coord_tx: Sender<ToCoordinator>,
        max_delay: u64,
    ) -> Self {
        let num_res_shards = res_txs.len();
        let initial = positions.iter().map(|r| r.0).collect();
        Self {
            inst,
            proto,
            seed,
            start,
            positions,
            initial,
            rx,
            res_txs,
            coord_tx,
            num_res_shards,
            max_delay,
            history: VecDeque::new(),
            partial: HashMap::new(),
        }
    }

    /// Run until `Stop`; then report final positions to the coordinator.
    pub(crate) fn run(mut self) {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                ToUser::Snapshot {
                    round,
                    start,
                    loads,
                } => {
                    if let Some(full) = self.assemble(round, start, loads) {
                        self.act(round, full);
                    }
                }
                ToUser::Stop => break,
            }
        }
        let current: Vec<u32> = self.positions.iter().map(|r| r.0).collect();
        let delta = StateDelta::encode(&self.initial, &current, 0, 1);
        let _ = self.coord_tx.send(ToCoordinator::FinalAssign {
            start: self.start,
            delta: delta.to_bytes(),
        });
    }

    /// Merge a slice; return the full load vector once all shards reported.
    fn assemble(&mut self, round: u64, start: usize, loads: Vec<u32>) -> Option<Vec<u32>> {
        let m = self.inst.num_resources();
        let entry = self
            .partial
            .entry(round)
            .or_insert_with(|| (0, vec![0u32; m]));
        entry.1[start..start + loads.len()].copy_from_slice(&loads);
        entry.0 += 1;
        if entry.0 == self.num_res_shards {
            let (_, full) = self.partial.remove(&round).expect("just inserted");
            Some(full)
        } else {
            None
        }
    }

    /// Decide the round against (possibly stale) snapshots and report.
    fn act(&mut self, round: u64, fresh: Vec<u32>) {
        // Maintain history for delayed observation.
        self.history.push_back((round, fresh));
        while self.history.len() as u64 > self.max_delay + 1 {
            self.history.pop_front();
        }
        let fresh = &self.history.back().expect("just pushed").1;

        // True (instrumentation) satisfaction count from the fresh snapshot.
        let mut unsatisfied = 0u64;
        for (off, &r) in self.positions.iter().enumerate() {
            let u = UserId((self.start + off) as u32);
            let cls = self.inst.class_of(u);
            if !self.inst.satisfies(cls, r, fresh[r.index()]) {
                unsatisfied += 1;
            }
        }

        // Decisions against delayed observations.
        let mut moves = Vec::new();
        let mut max_staleness = 0u64;
        for off in 0..self.positions.len() {
            let u = UserId((self.start + off) as u32);
            let (observed, delay) = self.observed_loads(u, round);
            max_staleness = max_staleness.max(delay);
            let own = self.positions[off];
            if let Some(mv) = decide_user(self.inst, observed, own, u, self.proto, self.seed, round)
            {
                self.positions[off] = mv.to;
                moves.push(mv);
            }
        }
        let migrations = moves.len() as u64;

        // Every resource shard receives our (possibly empty) batch.
        for tx in &self.res_txs {
            let _ = tx.send(ToResource::Moves {
                round,
                moves: moves.clone(),
            });
        }
        let _ = self.coord_tx.send(ToCoordinator::Report {
            round,
            unsatisfied,
            migrations,
            max_staleness,
        });
    }

    /// The snapshot user `u` observes in `round` and the delay `d` it was
    /// drawn at: the freshest one (`d = 0`) when synchronous, else the one
    /// `d ≤ max_delay` rounds old, with `d` drawn from a dedicated
    /// per-(user, round) stream.
    fn observed_loads(&self, u: UserId, round: u64) -> (&[u32], u64) {
        if self.max_delay == 0 {
            return (&self.history.back().expect("history non-empty").1, 0);
        }
        let avail = self.history.len() as u64; // ≥ 1
        let span = self.max_delay.min(avail - 1);
        let mut delay_rng = RoundStream::new(
            qlb_rng::mix64_pair(self.seed, DELAY_SALT),
            u.0 as u64,
            round,
        );
        let d = delay_rng.uniform(span + 1);
        // back = freshest = delay 0
        let idx = self.history.len() - 1 - d as usize;
        (&self.history[idx].1, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use qlb_core::{Instance, SlackDamped, State};

    /// Drive a single user shard by hand and check it reproduces the
    /// engine's decisions for the same round.
    #[test]
    fn shard_reproduces_engine_round() {
        let inst = Instance::uniform(8, 4, 3).unwrap();
        let state = State::all_on(&inst, ResourceId(0));
        let proto = SlackDamped::default();
        let seed = 77;

        let expected = qlb_core::step::decide_round(&inst, &state, &proto, seed, 0);

        let (utx, urx) = unbounded();
        let (rtx, rrx) = unbounded();
        let (ctx, crx) = unbounded();
        let shard = UserShard::new(
            &inst,
            &proto,
            seed,
            0,
            state.assignment().to_vec(),
            urx,
            vec![rtx],
            ctx,
            0,
        );
        // one resource shard covering everything
        utx.send(ToUser::Snapshot {
            round: 0,
            start: 0,
            loads: state.loads().to_vec(),
        })
        .unwrap();
        utx.send(ToUser::Stop).unwrap();
        shard.run();

        match rrx.recv().unwrap() {
            ToResource::Moves { round, moves } => {
                assert_eq!(round, 0);
                assert_eq!(moves, expected);
            }
            other => panic!("unexpected {other:?}"),
        }
        match crx.recv().unwrap() {
            ToCoordinator::Report {
                unsatisfied,
                migrations,
                ..
            } => {
                assert_eq!(unsatisfied, 8);
                assert_eq!(migrations, expected.len() as u64);
            }
            other => panic!("unexpected {other:?}"),
        }
        // final positions reflect the moves, reconstructed through the
        // delta the shard sent
        match crx.recv().unwrap() {
            ToCoordinator::FinalAssign { start, delta } => {
                assert_eq!(start, 0);
                let d = StateDelta::from_bytes(&delta).unwrap();
                let mut assignment: Vec<u32> = state.assignment().iter().map(|r| r.0).collect();
                d.apply(&mut assignment, 0).unwrap();
                for mv in &expected {
                    assert_eq!(assignment[mv.user.index()], mv.to.0);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn assembles_multi_shard_snapshots() {
        let inst = Instance::uniform(4, 4, 2).unwrap();
        let proto = SlackDamped::default();
        let (_utx, urx) = unbounded();
        let (rtx, _rrx) = unbounded();
        let (ctx, _crx) = unbounded();
        let mut shard = UserShard::new(
            &inst,
            &proto,
            1,
            0,
            vec![ResourceId(0); 4],
            urx,
            vec![rtx.clone(), rtx],
            ctx,
            0,
        );
        assert!(shard.assemble(0, 0, vec![7, 8]).is_none());
        let full = shard.assemble(0, 2, vec![9, 10]).unwrap();
        assert_eq!(full, vec![7, 8, 9, 10]);
    }

    #[test]
    fn delayed_observation_uses_history() {
        let inst = Instance::uniform(2, 2, 5).unwrap();
        let proto = SlackDamped::default();
        let (_utx, urx) = unbounded();
        let (rtx, _rrx) = unbounded();
        let (ctx, _crx) = unbounded();
        let mut shard = UserShard::new(
            &inst,
            &proto,
            1,
            0,
            vec![ResourceId(0); 2],
            urx,
            vec![rtx],
            ctx,
            2, // D = 2
        );
        shard.history.push_back((0, vec![10, 0]));
        shard.history.push_back((1, vec![5, 5]));
        shard.history.push_back((2, vec![0, 10]));
        // With D = 2 and 3 snapshots, observed loads must be one of the
        // three vectors; collect over rounds to see staleness occur.
        let mut seen_stale = false;
        for round in 0..64 {
            let (obs, d) = shard.observed_loads(UserId(0), round);
            let obs = obs.to_vec();
            assert!(
                [vec![10, 0], vec![5, 5], vec![0, 10]].contains(&obs),
                "unexpected observation {obs:?}"
            );
            if obs != vec![0, 10] {
                assert!(d > 0, "stale observation with zero reported delay");
                seen_stale = true;
            }
        }
        assert!(seen_stale, "delay never produced a stale observation");
        // Synchronous shard always sees the freshest.
        shard.max_delay = 0;
        for round in 0..16 {
            assert_eq!(shard.observed_loads(UserId(0), round), (&[0u32, 10][..], 0));
        }
    }
}
