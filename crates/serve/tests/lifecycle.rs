//! Daemon lifecycle integration test: start the real `qlb-serve` binary
//! on a temp Unix socket, drive the full protocol over it — place,
//! query, drain, depart, shutdown — and assert the trace trailer landed
//! and `qlb-trace` accepts the trace.

use serde_json::{parse_value_str, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Daemon {
    child: Child,
    sock: PathBuf,
    trace: PathBuf,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.sock);
        let _ = std::fs::remove_file(&self.trace);
    }
}

fn start_daemon(tag: &str, extra_args: &[&str]) -> Daemon {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let sock = dir.join(format!("qlb-serve-it-{tag}-{pid}.sock"));
    let trace = dir.join(format!("qlb-serve-it-{tag}-{pid}.jsonl"));
    let _ = std::fs::remove_file(&sock);
    let child = Command::new(env!("CARGO_BIN_EXE_qlb-serve"))
        .arg("--socket")
        .arg(&sock)
        .arg("--trace")
        .arg(&trace)
        .args(extra_args)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn qlb-serve");
    Daemon { child, sock, trace }
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    line: String,
}

impl Client {
    fn connect(d: &Daemon) -> Self {
        let t0 = Instant::now();
        let stream = loop {
            match UnixStream::connect(&d.sock) {
                Ok(s) => break s,
                Err(e) => {
                    assert!(
                        t0.elapsed() < Duration::from_secs(20),
                        "daemon socket never came up: {e}"
                    );
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        };
        let writer = stream.try_clone().unwrap();
        Self {
            reader: BufReader::new(stream),
            writer,
            line: String::new(),
        }
    }

    fn ask(&mut self, req: &str) -> Value {
        self.writer.write_all(req.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        self.line.clear();
        let n = self.reader.read_line(&mut self.line).unwrap();
        assert!(n > 0, "daemon closed connection after {req}");
        parse_value_str(self.line.trim())
            .unwrap_or_else(|e| panic!("unparseable reply {:?}: {e}", self.line))
    }
}

fn get<'v>(v: &'v Value, k: &str) -> &'v Value {
    v.get(k).unwrap_or_else(|| panic!("missing {k} in {v:?}"))
}

fn u64_of(v: &Value, k: &str) -> u64 {
    get(v, k)
        .as_u64()
        .unwrap_or_else(|| panic!("{k} not a u64"))
}

#[test]
fn full_lifecycle_over_a_unix_socket() {
    // Two latency classes over 12 speed-8 resources: class 0 strict
    // (threshold 0.5 → cap 4), class 1 lenient (threshold 1.0 → cap 8).
    let dir = std::env::temp_dir();
    let scenario_path = dir.join(format!("qlb-serve-it-sc-{}.json", std::process::id()));
    std::fs::write(
        &scenario_path,
        r#"{
          "name": "serve-lifecycle",
          "n": 0,
          "m": 12,
          "capacity": { "Constant": { "cap": 8 } },
          "slack_factor": null,
          "placement": "RoundRobin",
          "classes": [
            { "Latency": { "threshold": 0.5, "count": 8 } },
            { "Latency": { "threshold": 1.0, "count": 16 } }
          ]
        }"#,
    )
    .unwrap();
    let mut d = start_daemon(
        "full",
        &[
            "--scenario",
            scenario_path.to_str().unwrap(),
            "--extra-slots",
            "40",
            "--seed",
            "42",
            "--idle-ms",
            "2",
            "--stats-every",
            "4",
        ],
    );
    let mut c = Client::connect(&d);

    // --- place across both classes, mixed weights ---
    let mut tickets: Vec<(u64, u64)> = Vec::new(); // (user, weight)
    for (class, weight) in [(0u64, 1u64), (1, 2), (0, 1), (1, 1), (1, 3)] {
        let v = c.ask(&format!(
            "{{\"op\":\"place\",\"class\":{class},\"weight\":{weight}}}"
        ));
        assert_eq!(get(&v, "ok"), &Value::Bool(true), "reply {v:?}");
        assert_eq!(get(&v, "admitted"), &Value::Bool(true), "reply {v:?}");
        assert_eq!(u64_of(&v, "weight"), weight);
        tickets.push((u64_of(&v, "user"), weight));
    }

    // --- query: scenario population (24) + our 8 slots ---
    let v = c.ask("{\"op\":\"query\"}");
    assert_eq!(u64_of(&v, "active"), 24 + 8);
    assert_eq!(u64_of(&v, "placements"), 5);
    let classes = match get(&v, "classes") {
        Value::Array(a) => a,
        other => panic!("classes not an array: {other:?}"),
    };
    assert_eq!(classes.len(), 2);
    // nothing rejected yet: the per-reason breakdown is present and zero
    let rr = get(&v, "reject_reasons");
    for reason in ["pool", "capacity", "draining"] {
        assert_eq!(u64_of(rr, reason), 0, "unexpected {reason} rejects");
    }

    // --- live stats: windowed rates and per-class SLO accounting ---
    let v = c.ask("{\"op\":\"stats\"}");
    assert_eq!(get(&v, "ok"), &Value::Bool(true), "reply {v:?}");
    assert_eq!(get(&v, "op"), &Value::String("stats".into()));
    let stats = get(&v, "stats");
    assert!(u64_of(stats, "tick") >= 1, "telemetry saw no ticks: {v:?}");
    assert_eq!(u64_of(stats, "budget_max"), 8);
    let rates = match get(stats, "rates") {
        Value::Array(a) => a,
        other => panic!("rates not an array: {other:?}"),
    };
    let rate_names: Vec<&str> = rates
        .iter()
        .map(|r| get(r, "name").as_str().expect("rate name"))
        .collect();
    for expect in ["requests", "placements", "serve_departs", "rounds"] {
        assert!(rate_names.contains(&expect), "no {expect} rate in {v:?}");
    }
    // Rates divide by covered wall time, which is still ~0 ms this early;
    // keep asking (each ask is itself traffic) until the window opens.
    let t0 = Instant::now();
    loop {
        let v = c.ask("{\"op\":\"stats\"}");
        let stats = get(&v, "stats");
        let rates = match get(stats, "rates") {
            Value::Array(a) => a,
            other => panic!("rates not an array: {other:?}"),
        };
        let req_rate = rates
            .iter()
            .find(|r| get(r, "name").as_str() == Some("requests"))
            .expect("requests rate present");
        if get(req_rate, "r60s").as_f64().expect("r60s is a number") > 0.0 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "request rate never went live: {v:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let slo = match get(stats, "classes") {
        Value::Array(a) => a,
        other => panic!("stats classes not an array: {other:?}"),
    };
    assert_eq!(slo.len(), 2);
    for cs in slo {
        let w = get(cs, "violation_windowed")
            .as_f64()
            .expect("windowed fraction");
        let t = get(cs, "violation_total").as_f64().expect("total fraction");
        assert!(
            (0.0..=1.0).contains(&w),
            "violation_windowed out of range: {cs:?}"
        );
        assert!(
            (0.0..=1.0).contains(&t),
            "violation_total out of range: {cs:?}"
        );
    }

    // --- malformed requests answer ok:false and do not wedge the daemon ---
    let v = c.ask("{\"op\":\"warp\"}");
    assert_eq!(get(&v, "ok"), &Value::Bool(false));
    let v = c.ask("{\"op\":\"depart\",\"user\":99999}");
    assert_eq!(get(&v, "ok"), &Value::Bool(false));

    // --- drain resource 0 and wait for the kernel to empty it ---
    let v = c.ask("{\"op\":\"drain\",\"resource\":0}");
    assert_eq!(get(&v, "ok"), &Value::Bool(true), "reply {v:?}");
    let t0 = Instant::now();
    loop {
        let v = c.ask("{\"op\":\"query\",\"resource\":0}");
        let res = get(&v, "resource");
        if get(res, "drained") == &Value::Bool(true) {
            assert_eq!(u64_of(res, "load"), 0);
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "drain did not complete; last query: {v:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Drain must not violate anyone else's satisfaction once settled:
    // wait for the rebalancer to re-satisfy every displaced user.
    let t0 = Instant::now();
    loop {
        let v = c.ask("{\"op\":\"query\"}");
        if u64_of(&v, "unsatisfied") == 0 {
            // nobody was lost either
            assert_eq!(u64_of(&v, "active"), 24 + 8);
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "placements never re-settled after drain: {v:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // --- departures release the full group weight ---
    for (user, weight) in &tickets {
        let v = c.ask(&format!("{{\"op\":\"depart\",\"user\":{user}}}"));
        assert_eq!(get(&v, "ok"), &Value::Bool(true), "reply {v:?}");
        assert_eq!(u64_of(&v, "released"), *weight);
    }
    let v = c.ask("{\"op\":\"query\"}");
    assert_eq!(u64_of(&v, "active"), 24);
    assert_eq!(u64_of(&v, "departures"), 5);
    assert_eq!(u64_of(&v, "drains"), 1);

    // --- clean shutdown: exit 0 and a finished trace ---
    let v = c.ask("{\"op\":\"shutdown\"}");
    assert_eq!(get(&v, "ok"), &Value::Bool(true));
    let status = d.child.wait_with_timeout();
    assert!(status.success(), "daemon exited {status:?}");

    let text = std::fs::read_to_string(&d.trace).unwrap();
    let summary = qlb_obs::replay::Summary::from_jsonl(&text).unwrap();
    assert!(summary.saw_trailer(), "trace has no trailer");
    assert!(!summary.truncated, "trace is truncated");
    assert!(
        summary.counters.get("placements").copied().unwrap_or(0) >= 5,
        "placements counter missing from trailer: {:?}",
        summary.counters
    );
    assert!(
        summary.counters.get("drains").copied().unwrap_or(0) == 1,
        "drains counter missing from trailer"
    );
    // 5 departures released weights 1+2+1+1+3 = 8 slots, attributed to
    // the daemon-side serve_departs counter — not the open-driver
    // departures counter
    assert_eq!(
        summary.counters.get("serve_departs").copied().unwrap_or(0),
        8,
        "daemon departures must land in the serve_departs counter: {:?}",
        summary.counters
    );
    assert_eq!(
        summary.counters.get("departures").copied().unwrap_or(0),
        0,
        "open-system departures counter must stay untouched by daemon departs"
    );
    assert!(
        summary.latency_hists.contains_key("request_latency"),
        "request latency histogram missing from trailer"
    );
    // --stats-every 4 over a run with many idle ticks: periodic snapshots
    // landed in the trace, in tick order
    assert!(
        !summary.stats_snapshots.is_empty(),
        "no StatsSnapshot records in the trace"
    );
    let snap_ticks: Vec<u64> = summary.stats_snapshots.iter().map(|s| s.tick).collect();
    assert!(
        snap_ticks.windows(2).all(|w| w[0] < w[1]),
        "snapshot ticks not strictly increasing: {snap_ticks:?}"
    );

    // --- qlb-trace (built alongside in the workspace) exits 0 on it ---
    let trace_bin = PathBuf::from(env!("CARGO_BIN_EXE_qlb-serve"))
        .parent()
        .unwrap()
        .join("qlb-trace");
    if trace_bin.exists() {
        let out = Command::new(&trace_bin)
            .arg(&d.trace)
            .output()
            .expect("run qlb-trace");
        assert!(
            out.status.success(),
            "qlb-trace exited {:?}: {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
    } else {
        eprintln!("note: qlb-trace binary not built; skipping the CLI check");
    }
    let _ = std::fs::remove_file(&scenario_path);
}

#[test]
fn rejections_and_all_draining() {
    // One tiny resource: cap 2, φ default 0.95 → ⌊1.9⌋ = 1 admitted slot.
    let mut d = start_daemon(
        "tiny",
        &[
            "--resources",
            "1",
            "--cap",
            "2",
            "--pool",
            "4",
            "--idle-ms",
            "2",
        ],
    );
    let mut c = Client::connect(&d);
    let v = c.ask("{\"op\":\"place\"}");
    assert_eq!(get(&v, "admitted"), &Value::Bool(true));
    let user = u64_of(&v, "user");
    let v = c.ask("{\"op\":\"place\"}");
    assert_eq!(get(&v, "admitted"), &Value::Bool(false));
    assert_eq!(get(&v, "reason"), &Value::String("capacity".into()));
    // drain the only resource → its occupant cannot settle anywhere, but
    // admission now answers all-draining deterministically
    let v = c.ask("{\"op\":\"drain\",\"resource\":0}");
    assert_eq!(get(&v, "ok"), &Value::Bool(true));
    let v = c.ask("{\"op\":\"place\"}");
    assert_eq!(get(&v, "admitted"), &Value::Bool(false));
    assert_eq!(get(&v, "reason"), &Value::String("draining".into()));
    // the occupant can still depart while parked-in-limbo
    let v = c.ask(&format!("{{\"op\":\"depart\",\"user\":{user}}}"));
    assert_eq!(get(&v, "ok"), &Value::Bool(true));
    // both reject reasons are attributed, in the query breakdown and in
    // the stats snapshot
    let v = c.ask("{\"op\":\"query\"}");
    let rr = get(&v, "reject_reasons");
    assert_eq!(u64_of(rr, "capacity"), 1);
    assert_eq!(u64_of(rr, "draining"), 1);
    assert_eq!(u64_of(rr, "pool"), 0);
    let v = c.ask("{\"op\":\"stats\"}");
    let stats = get(&v, "stats");
    assert_eq!(u64_of(stats, "rejects_capacity"), 1);
    assert_eq!(u64_of(stats, "rejects_draining"), 1);
    assert_eq!(u64_of(stats, "rejects_pool"), 0);
    let v = c.ask("{\"op\":\"shutdown\"}");
    assert_eq!(get(&v, "ok"), &Value::Bool(true));
    assert!(d.child.wait_with_timeout().success());
}

#[test]
fn spans_reconstruct_a_placements_full_lifecycle() {
    // --span-sample 1: every wire op is traced, so the first placement's
    // whole story (admission → forced migration via drain → depart) must
    // be reconstructible from the trace spans alone.
    let mut d = start_daemon(
        "spans",
        &[
            "--resources",
            "4",
            "--cap",
            "4",
            "--pool",
            "16",
            "--idle-ms",
            "2",
            "--span-sample",
            "1",
        ],
    );
    let mut c = Client::connect(&d);

    let mut tickets: Vec<(u64, u64)> = Vec::new(); // (user, resource)
    for _ in 0..4 {
        let v = c.ask("{\"op\":\"place\"}");
        assert_eq!(get(&v, "admitted"), &Value::Bool(true), "reply {v:?}");
        tickets.push((u64_of(&v, "user"), u64_of(&v, "resource")));
    }
    let (ticket, home) = tickets[0];

    // drain the ticket's resource: the rebalancer must move it elsewhere
    let v = c.ask(&format!("{{\"op\":\"drain\",\"resource\":{home}}}"));
    assert_eq!(get(&v, "ok"), &Value::Bool(true), "reply {v:?}");
    let t0 = Instant::now();
    loop {
        let v = c.ask(&format!("{{\"op\":\"query\",\"resource\":{home}}}"));
        let res = get(&v, "resource");
        if get(res, "drained") == &Value::Bool(true) && u64_of(res, "load") == 0 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "drain never emptied r{home}: {v:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let v = c.ask(&format!("{{\"op\":\"depart\",\"user\":{ticket}}}"));
    assert_eq!(get(&v, "ok"), &Value::Bool(true), "reply {v:?}");
    let v = c.ask("{\"op\":\"shutdown\"}");
    assert_eq!(get(&v, "ok"), &Value::Bool(true));
    assert!(d.child.wait_with_timeout().success());

    // --- the trace spans tell the full story ---
    let text = std::fs::read_to_string(&d.trace).unwrap();
    let summary = qlb_obs::replay::Summary::from_jsonl(&text).unwrap();
    assert!(summary.saw_trailer(), "trace has no trailer");
    let mine: Vec<_> = summary
        .spans
        .iter()
        .filter(|s| s.ticket == Some(ticket))
        .collect();
    let ops: Vec<&str> = mine.iter().map(|s| s.op.as_str()).collect();
    assert_eq!(
        ops.first(),
        Some(&"place"),
        "story must open with admission: {ops:?}"
    );
    assert_eq!(mine[0].verdict, "admitted");
    assert_eq!(mine[0].resource, Some(home));
    assert!(mine[0].probes >= 1, "admission span carries probe evidence");
    assert_eq!(mine[0].headroom.len(), mine[0].probes as usize);
    assert!(
        ops.contains(&"migrate"),
        "drain must have produced a migrate span for ticket {ticket}: {ops:?}"
    );
    let mv = mine.iter().find(|s| s.op == "migrate").unwrap();
    assert_eq!(mv.from, Some(home), "migration leaves the drained resource");
    assert_ne!(mv.resource, Some(home));
    assert_eq!(ops.last(), Some(&"depart"), "story must close: {ops:?}");
    assert!(
        mine.windows(2).all(|w| w[0].id < w[1].id),
        "span ids must be monotone in causal order"
    );

    // --- qlb-trace spans renders the lifecycle and exits 0 ---
    let trace_bin = PathBuf::from(env!("CARGO_BIN_EXE_qlb-serve"))
        .parent()
        .unwrap()
        .join("qlb-trace");
    if trace_bin.exists() {
        let out = Command::new(&trace_bin)
            .arg("spans")
            .arg(&d.trace)
            .arg("--ticket")
            .arg(ticket.to_string())
            .output()
            .expect("run qlb-trace spans");
        assert!(
            out.status.success(),
            "qlb-trace spans exited {:?}: {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let life = stdout
            .lines()
            .find(|l| l.trim_start().starts_with(&format!("ticket {ticket}:")))
            .unwrap_or_else(|| panic!("no lifecycle line for ticket {ticket} in:\n{stdout}"));
        assert!(life.contains(&format!("admitted r{home}")), "{life}");
        assert!(life.contains(&format!("moved r{home}->")), "{life}");
        assert!(life.contains("departed"), "{life}");
        assert!(stdout.contains("per-phase latency"), "{stdout}");
        assert!(stdout.contains("slowest"), "{stdout}");
    } else {
        eprintln!("note: qlb-trace binary not built; skipping the CLI check");
    }
}

#[test]
fn flight_recorder_dumps_a_black_box_on_a_reject_spike() {
    // Tiny fleet: cap 2, φ 0.95 → one admitted slot; the second place is
    // a capacity reject, which trips --flight-reject-spike 1.
    let dir = std::env::temp_dir().join(format!("qlb-serve-it-flight-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut d = start_daemon(
        "flight",
        &[
            "--resources",
            "1",
            "--cap",
            "2",
            "--pool",
            "4",
            "--idle-ms",
            "2",
            "--span-sample",
            "1",
            "--flight-recorder",
            dir.to_str().unwrap(),
            "--flight-reject-spike",
            "1",
        ],
    );
    let mut c = Client::connect(&d);
    let v = c.ask("{\"op\":\"place\"}");
    assert_eq!(get(&v, "admitted"), &Value::Bool(true));
    let v = c.ask("{\"op\":\"place\"}");
    assert_eq!(get(&v, "admitted"), &Value::Bool(false));

    // the trigger is evaluated on scheduler ticks; wait for the dump
    let t0 = Instant::now();
    let dump = loop {
        let found = std::fs::read_dir(&dir).ok().and_then(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .find(|p| p.to_string_lossy().contains("blackbox-"))
        });
        if let Some(p) = found {
            break p;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "flight recorder never dumped into {dir:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let v = c.ask("{\"op\":\"shutdown\"}");
    assert_eq!(get(&v, "ok"), &Value::Bool(true));
    assert!(d.child.wait_with_timeout().success());

    let text = std::fs::read_to_string(&dump).unwrap();
    let summary = qlb_obs::replay::Summary::from_jsonl(&text).unwrap();
    let (trigger, ..) = summary.blackbox.clone().expect("BlackBox header");
    assert_eq!(trigger, "reject-spike");
    assert!(!summary.tick_marks.is_empty(), "black box has tick context");
    assert!(
        summary.spans.iter().any(|s| s.verdict == "capacity"),
        "black box retains the rejected placement's span"
    );

    // --- qlb-trace blackbox reads the dump (by directory) and exits 0 ---
    let trace_bin = PathBuf::from(env!("CARGO_BIN_EXE_qlb-serve"))
        .parent()
        .unwrap()
        .join("qlb-trace");
    if trace_bin.exists() {
        let out = Command::new(&trace_bin)
            .arg("blackbox")
            .arg(&dir)
            .output()
            .expect("run qlb-trace blackbox");
        assert!(
            out.status.success(),
            "qlb-trace blackbox exited {:?}: {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("trigger: reject-spike"), "{stdout}");
    } else {
        eprintln!("note: qlb-trace binary not built; skipping the CLI check");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Waiting with a deadline so a wedged daemon fails the test instead of
/// hanging the suite.
trait WaitTimeout {
    fn wait_with_timeout(&mut self) -> std::process::ExitStatus;
}

impl WaitTimeout for Child {
    fn wait_with_timeout(&mut self) -> std::process::ExitStatus {
        let t0 = Instant::now();
        loop {
            if let Some(st) = self.try_wait().expect("try_wait") {
                return st;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "daemon did not exit after shutdown"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}
