//! `qlb-serve`: a long-running QoS placement daemon.
//!
//! This crate turns the workspace's simulation engine into a *service*:
//! a daemon that owns a live open-system instance, answers synchronous
//! placement requests with an admission decision, and keeps a background
//! rebalancer — the paper's sampling protocol, run through the existing
//! executor kernels — converging the placement between request batches.
//!
//! The crate is split exactly along its trust boundaries:
//!
//! * [`core`] — the placement state machine ([`ServeCore`]): admission,
//!   placement, departure, drains, and the budgeted scheduler tick. Pure
//!   compute, no I/O; the serve bench and the unit tests drive it
//!   directly.
//! * [`proto`] — the line-delimited JSON wire protocol: request parsing
//!   and reply formatting, one dispatch point ([`proto::handle_line`]).
//! * [`daemon`] — the socket front-end: Unix/TCP listeners, per
//!   connection reader threads, and the batch/tick serve loop.
//! * [`telemetry`] — the live telemetry plane ([`ServeTelemetry`]):
//!   windowed rates, latency digests, and per-class SLO accounting behind
//!   the `stats` wire op, periodic trace-trailer snapshots, and the
//!   optional Prometheus `/metrics` endpoint (`--metrics-http`).
//! * [`flight`] — the anomaly-triggered flight recorder
//!   ([`FlightRecorder`]): a bounded ring of recent causal spans and tick
//!   marks dumped to a JSONL black box when a starved tick, SLO burn,
//!   reject spike, or latency-bound breach fires (`--flight-recorder`).
//!
//! The `qlb-serve` binary wires the three to a CLI; `qlb-serve-load` is
//! the matching load/smoke client used by CI and the benches.
//!
//! Observability reuses `qlb-obs` wholesale: hand the daemon a
//! [`StreamSink`](qlb_obs::StreamSink) and `qlb-trace --follow` becomes
//! the live ops dashboard, with request/placement latency histograms and
//! admission counters riding the standard trace trailer.

#![warn(missing_docs)]

pub mod core;
pub mod daemon;
pub mod flight;
pub mod proto;
pub mod telemetry;

pub use crate::core::{
    ClassStats, DepartOutcome, DrainOutcome, MoveRecord, PlaceOutcome, PlaceTrace, RejectReason,
    ResourceStats, ServeConfig, ServeCore, ServeProtocol, TickOutcome,
};
pub use crate::daemon::{
    run_daemon, run_daemon_telemetry, DaemonOptions, ServeListener, TelemetryOptions,
};
pub use crate::flight::{FlightOptions, FlightRecorder, TRIGGER_WINDOW_MS};
pub use crate::proto::{
    handle_line, handle_line_spanned, handle_line_with_stats, parse_request, OpKind, ParseError,
    Reply, Request,
};
pub use crate::telemetry::{cumulative_snapshot, render_prometheus, ServeTelemetry};
