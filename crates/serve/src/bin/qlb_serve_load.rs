//! `qlb-serve-load` — load generator and smoke client for `qlb-serve`.
//!
//! ```text
//! qlb-serve-load --socket /tmp/qlb.sock --placements 100 --drain 0 --shutdown
//! ```
//!
//! Connects to a running daemon, issues `--placements` synchronous place
//! requests (departing a fraction as it goes to model churn), optionally
//! drains a resource and polls `query` until the drain completes, then
//! optionally shuts the daemon down. Prints a client-side latency digest
//! and exits 0 only if every step succeeded — which is exactly what the
//! CI smoke job asserts.

use serde_json::{parse_value_str, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Client {
    reader: BufReader<Box<dyn std::io::Read>>,
    writer: Box<dyn Write>,
    line: String,
}

impl Client {
    fn connect_unix(path: &str) -> std::io::Result<Self> {
        let stream = UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(Box::new(stream)),
            writer: Box::new(writer),
            line: String::new(),
        })
    }

    fn connect_tcp(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(Box::new(stream)),
            writer: Box::new(writer),
            line: String::new(),
        })
    }

    /// One synchronous request; returns the parsed reply.
    fn ask(&mut self, req: &str) -> Result<Value, String> {
        self.writer
            .write_all(req.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("write failed: {e}"))?;
        self.line.clear();
        let n = self
            .reader
            .read_line(&mut self.line)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".into());
        }
        parse_value_str(self.line.trim()).map_err(|e| format!("bad reply {:?}: {e}", self.line))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parse_u64 = |flag: &str, default: u64| -> u64 {
        get(flag).map_or(default, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad {flag}");
                exit(2)
            })
        })
    };

    let placements = parse_u64("--placements", 100);
    let class = parse_u64("--class", 0) as u32;
    let weight = parse_u64("--weight", 1).max(1) as u32;
    let depart_every = parse_u64("--depart-every", 4);
    let drain = get("--drain").map(|s| {
        s.parse::<u32>().unwrap_or_else(|_| {
            eprintln!("bad --drain");
            exit(2)
        })
    });
    let shutdown = args.iter().any(|a| a == "--shutdown");
    let timeout = Duration::from_millis(parse_u64("--timeout-ms", 30_000));
    let stats_interval_ms = parse_u64("--stats-interval-ms", 0);

    let (socket, tcp) = (get("--socket"), get("--tcp"));
    let mut client = match (&socket, &tcp) {
        (Some(path), None) => connect_retry(|| Client::connect_unix(path), timeout, path),
        (None, Some(addr)) => connect_retry(|| Client::connect_tcp(addr), timeout, addr),
        _ => {
            eprintln!("need exactly one of --socket PATH or --tcp ADDR");
            exit(2);
        }
    };

    // --- background stats poller (its own connection, satellite of the
    // telemetry plane: exercises `{"op":"stats"}` while load is in flight) ---
    let stop = Arc::new(AtomicBool::new(false));
    let poller = if stats_interval_ms > 0 {
        let stop = Arc::clone(&stop);
        let (socket, tcp) = (socket.clone(), tcp.clone());
        Some(std::thread::spawn(move || -> u64 {
            let mut c = match (&socket, &tcp) {
                (Some(path), None) => connect_retry(|| Client::connect_unix(path), timeout, path),
                (None, Some(addr)) => connect_retry(|| Client::connect_tcp(addr), timeout, addr),
                _ => unreachable!("validated above"),
            };
            let mut polls = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let v = c.ask("{\"op\":\"stats\"}").unwrap_or_else(die);
                expect_ok(&v, "stats");
                polls += 1;
                std::thread::sleep(Duration::from_millis(stats_interval_ms));
            }
            polls
        }))
    } else {
        None
    };

    // --- placements (with churn) ---
    // `ok:false` replies are protocol errors (admission rejections answer
    // `ok:true, admitted:false`): count them, keep them out of the latency
    // digest, keep the run going, and decide the exit status at the end —
    // a single malformed reply must fail the smoke run, not hide in the
    // percentiles or abort it half-measured.
    let mut tickets: Vec<u64> = Vec::new();
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    let mut error_replies = 0u64;
    let mut first_error: Option<String> = None;
    let mut note_error = |v: &Value, op: &str, error_replies: &mut u64| {
        *error_replies += 1;
        if first_error.is_none() {
            first_error = Some(format!("{op} answered {v:?}"));
        }
    };
    let mut lat_us: Vec<u64> = Vec::with_capacity(placements as usize);
    let place_req = format!("{{\"op\":\"place\",\"class\":{class},\"weight\":{weight}}}");
    for i in 0..placements {
        let t0 = Instant::now();
        let v = client.ask(&place_req).unwrap_or_else(die);
        let elapsed_us = t0.elapsed().as_micros() as u64;
        if v.get("ok").and_then(Value::as_bool) != Some(true) {
            note_error(&v, "place", &mut error_replies);
        } else {
            lat_us.push(elapsed_us);
            if v.get("admitted").and_then(Value::as_bool) == Some(true) {
                admitted += 1;
                let user = v
                    .get("user")
                    .and_then(Value::as_u64)
                    .unwrap_or_else(|| die("place reply missing user".into()));
                tickets.push(user);
            } else {
                rejected += 1;
            }
        }
        if depart_every > 0 && (i + 1) % depart_every == 0 {
            if let Some(user) = tickets.pop() {
                let v = client
                    .ask(&format!("{{\"op\":\"depart\",\"user\":{user}}}"))
                    .unwrap_or_else(die);
                if v.get("ok").and_then(Value::as_bool) != Some(true) {
                    note_error(&v, "depart", &mut error_replies);
                }
            }
        }
    }
    lat_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat_us.is_empty() {
            0
        } else {
            lat_us[((lat_us.len() - 1) as f64 * p) as usize]
        }
    };
    println!(
        "placements: {admitted} admitted, {rejected} rejected, {error_replies} error replies; \
         client latency p50 {} µs, p95 {} µs, max {} µs",
        pct(0.50),
        pct(0.95),
        pct(1.0)
    );

    // --- drain + poll to completion ---
    if let Some(r) = drain {
        let v = client
            .ask(&format!("{{\"op\":\"drain\",\"resource\":{r}}}"))
            .unwrap_or_else(die);
        expect_ok(&v, "drain");
        let occupants = v.get("occupants").and_then(Value::as_u64).unwrap_or(0);
        let t0 = Instant::now();
        loop {
            let v = client
                .ask(&format!("{{\"op\":\"query\",\"resource\":{r}}}"))
                .unwrap_or_else(die);
            expect_ok(&v, "query");
            let res = v
                .get("resource")
                .unwrap_or_else(|| die("query reply missing resource".into()));
            if res.get("drained").and_then(Value::as_bool) == Some(true) {
                break;
            }
            if t0.elapsed() > timeout {
                eprintln!("drain of resource {r} did not finish within {timeout:?}");
                exit(1);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        println!(
            "drain: resource {r} emptied of {occupants} occupants in {:.1} ms",
            t0.elapsed().as_secs_f64() * 1e3
        );
    }

    // --- final query + optional shutdown ---
    let v = client.ask("{\"op\":\"query\"}").unwrap_or_else(die);
    expect_ok(&v, "query");
    let active = v.get("active").and_then(Value::as_u64).unwrap_or(0);
    let unsat = v.get("unsatisfied").and_then(Value::as_u64).unwrap_or(0);
    println!("final state: {active} active slots, {unsat} unsatisfied");

    // --- final telemetry report (when the poller ran) ---
    if let Some(handle) = poller {
        stop.store(true, Ordering::Relaxed);
        let polls = handle.join().unwrap_or_else(|_| {
            eprintln!("stats poller panicked");
            exit(1)
        });
        let v = client.ask("{\"op\":\"stats\"}").unwrap_or_else(die);
        expect_ok(&v, "stats");
        print_stats_report(&v, polls);
    }

    if shutdown {
        let v = client.ask("{\"op\":\"shutdown\"}").unwrap_or_else(die);
        expect_ok(&v, "shutdown");
        println!("daemon shut down");
    }

    if error_replies > 0 {
        eprintln!(
            "{error_replies} error replies (ok:false) during the load run; first: {}",
            first_error.as_deref().unwrap_or("?")
        );
        exit(1);
    }
}

fn connect_retry<C>(
    mut connect: impl FnMut() -> std::io::Result<C>,
    timeout: Duration,
    what: &str,
) -> C {
    let t0 = Instant::now();
    loop {
        match connect() {
            Ok(c) => return c,
            Err(e) => {
                if t0.elapsed() > timeout {
                    eprintln!("cannot connect to {what}: {e}");
                    exit(1);
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// Render the final `{"op":"stats"}` reply: windowed rates, per-class SLO
/// violation fractions, and the rebalancer's posture.
fn print_stats_report(v: &Value, polls: u64) {
    let stats = v
        .get("stats")
        .unwrap_or_else(|| die("stats reply missing stats object".into()));
    println!("telemetry: {polls} in-flight stats polls succeeded");
    if let Some(Value::Array(rates)) = stats.get("rates") {
        for r in rates {
            let name = r.get("name").and_then(Value::as_str).unwrap_or("?");
            let f = |k: &str| r.get(k).and_then(Value::as_f64).unwrap_or(0.0);
            println!(
                "  rate {name:<18} {:>10.1}/s (1s) {:>10.1}/s (10s) {:>10.1}/s (60s)",
                f("r1s"),
                f("r10s"),
                f("r60s")
            );
        }
    }
    if let Some(Value::Array(classes)) = stats.get("classes") {
        for c in classes {
            let k = c.get("class").and_then(Value::as_u64).unwrap_or(0);
            let f = |key: &str| c.get(key).and_then(Value::as_f64).unwrap_or(0.0);
            println!(
                "  class {k}: violation {:.1}% windowed, {:.1}% lifetime",
                f("violation_windowed") * 100.0,
                f("violation_total") * 100.0
            );
        }
    }
    let g = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap_or(0);
    println!(
        "  rebalancer: backlog {}, budget {}/{}, {} starved ticks; rejects pool {} capacity {} draining {}",
        g("backlog"),
        g("budget"),
        g("budget_max"),
        g("starved_ticks"),
        g("rejects_pool"),
        g("rejects_capacity"),
        g("rejects_draining"),
    );
}

fn expect_ok(v: &Value, op: &str) {
    if v.get("ok").and_then(Value::as_bool) != Some(true) {
        eprintln!("{op} failed: {v:?}");
        exit(1);
    }
}

fn die<T>(msg: String) -> T {
    eprintln!("{msg}");
    exit(1);
}

fn print_help() {
    println!(
        "qlb-serve-load — load generator / smoke client for qlb-serve\n\n\
         USAGE:\n  qlb-serve-load --socket PATH | --tcp ADDR [options]\n\n\
         OPTIONS:\n  \
         --placements N   place requests to issue (default 100)\n  \
         --class K        QoS class to request (default 0)\n  \
         --weight W       slots per placement (default 1)\n  \
         --depart-every D depart one earlier ticket every D placements (default 4; 0 = never)\n  \
         --drain R        drain resource R afterwards and poll query until it empties\n  \
         --stats-interval-ms MS  poll {{\"op\":\"stats\"}} on a second connection every MS\n                   \
         during the run and print a final rates/violations report (0 = off)\n  \
         --shutdown       shut the daemon down at the end\n  \
         --timeout-ms MS  connect/drain timeout (default 30000)\n\n\
         Exits 0 only if every request succeeded. Admission rejections (ok:true,\n\
         admitted:false) are fine; protocol error replies (ok:false) are counted,\n\
         kept out of the latency digest, reported at exit, and fail the run."
    );
}
