//! `qlb-serve` — the QoS placement daemon.
//!
//! ```text
//! qlb-serve --socket /tmp/qlb.sock --resources 64 --cap 16
//! qlb-serve --tcp 127.0.0.1:7070 --scenario fleet.json --trace serve.jsonl
//! ```
//!
//! Speak the line-delimited JSON protocol over the socket (see
//! `DESIGN.md` §8), or use `qlb-serve-load` as a ready-made client. With
//! `--trace`, tail the file with `qlb-trace --follow` for a live ops
//! dashboard; the trailer (request/placement latency histograms,
//! admission counters, periodic stats snapshots) is flushed on clean
//! shutdown. `--metrics-http ADDR` additionally serves Prometheus text
//! exposition, and `{"op":"stats"}` answers with the windowed telemetry
//! view — see `qlb-trace watch` for the live dashboard.

use qlb_obs::{NoopSink, StreamSink};
use qlb_serve::{
    run_daemon_telemetry, DaemonOptions, FlightOptions, ServeConfig, ServeCore, ServeListener,
    ServeProtocol, TelemetryOptions,
};
use qlb_workload::Scenario;
use std::io::BufWriter;
use std::process::exit;
use std::time::Duration;

// Counting allocator so `--mem-summary` can report the daemon's high-water
// mark at shutdown; without the flag the bookkeeping is four relaxed
// atomics per allocation — negligible next to socket I/O.
#[global_allocator]
static GLOBAL: qlb_obs::CountingAlloc = qlb_obs::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parse_u64 = |flag: &str, default: u64| -> u64 {
        get(flag).map_or(default, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad {flag}");
                exit(2)
            })
        })
    };

    // --- core configuration ---
    let seed = parse_u64("--seed", 0);
    let protocol = match get("--protocol").as_deref() {
        None => ServeProtocol::SlackDamped,
        Some(name) => ServeProtocol::from_name(name).unwrap_or_else(|| {
            eprintln!("unknown protocol {name}; choose slack-damped | conditional");
            exit(2)
        }),
    };
    let admit_frac: f64 = get("--admit-frac").map_or(0.95, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad --admit-frac");
            exit(2)
        })
    });
    if !(admit_frac > 0.0 && admit_frac <= 1.0) {
        eprintln!("--admit-frac must be in (0, 1]");
        exit(2);
    }
    let cfg = ServeConfig::new(seed)
        .with_protocol(protocol)
        .with_admit_frac(admit_frac)
        .with_max_tick_rounds(parse_u64("--tick-rounds", 8) as u32)
        .with_probes(parse_u64("--probes", 2) as u32)
        .with_threads(parse_u64("--threads", 1) as usize);

    // --- the world: a scenario file or a flat fleet ---
    let core = if let Some(path) = get("--scenario") {
        let sc = Scenario::from_path(&path).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2)
        });
        let extra = parse_u64("--extra-slots", (sc.num_users() / 4).max(64) as u64) as usize;
        let build_seed = parse_u64("--build-seed", seed);
        ServeCore::from_scenario(&sc, build_seed, extra, cfg).unwrap_or_else(|e| {
            eprintln!("cannot serve scenario {path}: {e}");
            exit(1)
        })
    } else {
        let m = parse_u64("--resources", 64) as usize;
        let cap = parse_u64("--cap", 16) as u32;
        if m == 0 || cap == 0 {
            eprintln!("--resources and --cap must be at least 1");
            exit(2);
        }
        let pool = parse_u64("--pool", (m as u64) * (cap as u64)) as usize;
        ServeCore::with_capacities(&vec![cap; m], pool, cfg).unwrap_or_else(|e| {
            eprintln!("cannot build fleet: {e}");
            exit(1)
        })
    };

    // --- the socket ---
    let listener = match (get("--socket"), get("--tcp")) {
        (Some(path), None) => ServeListener::bind_unix(&path).unwrap_or_else(|e| {
            eprintln!("cannot bind unix socket {path}: {e}");
            exit(1)
        }),
        (None, Some(addr)) => ServeListener::bind_tcp(&addr).unwrap_or_else(|e| {
            eprintln!("cannot bind tcp {addr}: {e}");
            exit(1)
        }),
        _ => {
            eprintln!("need exactly one of --socket PATH or --tcp ADDR");
            exit(2);
        }
    };

    let opts = DaemonOptions {
        max_batch: parse_u64("--batch", 256).max(1) as usize,
        idle_poll: Duration::from_millis(parse_u64("--idle-ms", 20).max(1)),
    };

    // --- telemetry plane: trailer-snapshot cadence + Prometheus endpoint ---
    let metrics_http = get("--metrics-http").map(|addr| {
        std::net::TcpListener::bind(&addr).unwrap_or_else(|e| {
            eprintln!("cannot bind metrics endpoint {addr}: {e}");
            exit(1)
        })
    });
    if let Some(l) = &metrics_http {
        if let Ok(addr) = l.local_addr() {
            println!("qlb-serve metrics exposition on http://{addr}/metrics");
        }
    }
    let flight = get("--flight-recorder").map(|dir| {
        let mut fo = FlightOptions::new(dir);
        fo.p99_bound_ns = parse_u64("--flight-p99-ns", fo.p99_bound_ns);
        fo.reject_spike = parse_u64("--flight-reject-spike", fo.reject_spike);
        fo
    });
    // Spans default on (every 64th op) whenever the flight recorder is
    // armed — a black box without spans is only tick marks.
    let span_default = if flight.is_some() { 64 } else { 0 };
    let tel_opts = TelemetryOptions {
        metrics_http,
        stats_every: parse_u64("--stats-every", TelemetryOptions::DEFAULT_STATS_EVERY),
        span_sample: parse_u64("--span-sample", span_default),
        flight,
    };

    let pool_slots = core.free_slots() + core.active_slots();
    println!(
        "qlb-serve listening on {} — {} resources, {} classes, pool {}, protocol {}, φ {admit_frac}",
        listener.describe(),
        core.num_resources(),
        core.num_classes(),
        pool_slots,
        protocol.name(),
    );

    // --- run, with or without a streaming trace ---
    let served = if let Some(path) = get("--trace") {
        let flush_every = parse_u64("--flush-every", qlb_obs::DEFAULT_FLUSH_EVERY);
        let file = std::fs::File::create(&path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            exit(1)
        });
        let mut sink = StreamSink::with_flush_every(BufWriter::new(file), flush_every);
        let served = run_daemon_telemetry(core, listener, &mut sink, opts, tel_opts)
            .unwrap_or_else(|e| {
                eprintln!("serve loop failed: {e}");
                exit(1)
            });
        if let Err(e) = sink.finish() {
            eprintln!("error finishing trace {path}: {e}");
            exit(1);
        }
        println!("trace written to {path}");
        served
    } else {
        run_daemon_telemetry(core, listener, &mut NoopSink, opts, tel_opts).unwrap_or_else(|e| {
            eprintln!("serve loop failed: {e}");
            exit(1)
        })
    };
    if args.iter().any(|a| a == "--mem-summary") {
        let peak = qlb_obs::mem::peak_bytes();
        println!(
            "memory: peak {peak} bytes ({:.2} bytes/slot over pool {pool_slots}), {} allocations",
            peak as f64 / (pool_slots as f64).max(1.0),
            qlb_obs::mem::total_allocs(),
        );
    }
    println!("qlb-serve: clean shutdown after {served} requests");
}

fn print_help() {
    println!(
        "qlb-serve — long-running QoS placement daemon\n\n\
         USAGE:\n  qlb-serve --socket PATH | --tcp ADDR [options]\n\n\
         WORLD:     --resources M (default 64) --cap C (default 16) --pool N (default M·C)\n           \
         --scenario FILE [--build-seed N] [--extra-slots K] — serve a workload\n           \
         scenario's fleet instead, with its placement pre-admitted\n\
         POLICY:    --protocol slack-damped (default) | conditional — the rebalance kernel\n           \
         --admit-frac F (default 0.95) — admission utilization bound φ\n           \
         --tick-rounds K (default 8) — rebalance budget per idle tick (halves per\n           \
         doubling of request backlog, floor 1)\n           \
         --probes D (default 2) — placement candidates sampled per request\n\
         RUNTIME:   --seed N (default 0) --threads T (default 1; >1 enables pooled rounds)\n           \
         --batch B (default 256) --idle-ms MS (default 20)\n\
         TRACE:     --trace FILE.jsonl [--flush-every K] — stream the obs trace; tail it\n           \
         with `qlb-trace --follow FILE.jsonl` as a live dashboard. The trailer\n           \
         carries request/placement latency histograms and admission counters.\n\
         TELEMETRY: --metrics-http ADDR — serve Prometheus text exposition at /metrics\n           \
         (answered from the serve loop itself; no extra writer threads)\n           \
         --stats-every N (default 32) — record a StatsSnapshot trailer record\n           \
         every N scheduler ticks when tracing (0 = never)\n           \
         --mem-summary — print the peak allocation and bytes/slot at shutdown\n\
         SPANS:     --span-sample N — trace every Nth wire op as a causal span\n           \
         (1 = all, 0 = off; default 0, or 64 when the flight recorder is on).\n           \
         Spans ride the trace trailer; read them with `qlb-trace spans`.\n           \
         --flight-recorder DIR — arm the anomaly-triggered flight recorder:\n           \
         dump a black-box JSONL into DIR when a starved tick, SLO burn,\n           \
         reject spike, or p99 bound fires; read with `qlb-trace blackbox`\n           \
         --flight-p99-ns NS (default off) --flight-reject-spike N (default 64)\n           \
         — tune the latency / reject triggers\n\n\
         PROTOCOL (line-delimited JSON over the socket):\n  \
         {{\"op\":\"place\"[,\"class\":K][,\"weight\":W]}}   admission + placement\n  \
         {{\"op\":\"depart\",\"user\":U}}                  release a placement\n  \
         {{\"op\":\"query\"[,\"resource\":R]}}             congestion / satisfaction\n  \
         {{\"op\":\"stats\"}}                            windowed rates + SLO accounting\n  \
         {{\"op\":\"drain\",\"resource\":R}}               retire a resource\n  \
         {{\"op\":\"shutdown\"}}                         flush trailer, exit"
    );
}
