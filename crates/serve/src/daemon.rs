//! The socket daemon: listeners, connection fan-in, and the serve loop.
//!
//! Topology is deliberately simple and std-only:
//!
//! * an **acceptor thread** blocks on the listener (Unix or TCP) and, per
//!   connection, spawns a **reader thread** that turns the socket into a
//!   stream of request lines (each stamped with its arrival instant);
//! * everything funnels through one mpsc channel into the **serve loop**,
//!   which owns the [`ServeCore`] and the trace sink exclusively — no
//!   locks, no shared state, and the single-writer discipline keeps the
//!   whole trajectory deterministic for a fixed request interleaving;
//! * the loop alternates request batches with scheduler ticks: drain the
//!   channel, answer up to [`DaemonOptions::max_batch`] requests, then
//!   give the background rebalancer a tick whose round budget shrinks as
//!   the backlog grows ([`ServeCore::tick_budget`]) — requests have
//!   priority, the rebalancer has a floor, neither starves.
//!
//! Request latency (receipt → reply written) feeds the
//! [`REQUEST_HIST_NAME`] histogram through the sink; placements
//! additionally feed [`PLACE_HIST_NAME`]. Both ride the trace trailer, so
//! `qlb-trace` reports daemon latency percentiles offline or live.

use crate::core::{MoveRecord, PlaceTrace, ServeCore};
use crate::flight::{FlightOptions, FlightRecorder};
use crate::proto::{handle_line_spanned, handle_line_with_stats, OpKind};
use crate::telemetry::{render_prometheus, ServeTelemetry};
use qlb_obs::profile::{PLACE_HIST_NAME, REQUEST_HIST_NAME};
use qlb_obs::span::{SPAN_OP_DEPART, SPAN_OP_MIGRATE, SPAN_OP_PLACE};
use qlb_obs::{Event, Sink, SpanRecord};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::UnixListener;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::thread;
use std::time::{Duration, Instant};

/// A bound listening socket.
#[derive(Debug)]
pub enum ServeListener {
    /// Unix-domain stream socket.
    Unix(UnixListener),
    /// TCP socket.
    Tcp(TcpListener),
}

impl ServeListener {
    /// Bind a Unix socket at `path` (removing a stale socket file first).
    pub fn bind_unix(path: &str) -> io::Result<Self> {
        if std::fs::metadata(path).is_ok() {
            std::fs::remove_file(path)?;
        }
        Ok(Self::Unix(UnixListener::bind(path)?))
    }

    /// Bind a TCP socket at `addr` (e.g. `127.0.0.1:7070`).
    pub fn bind_tcp(addr: &str) -> io::Result<Self> {
        Ok(Self::Tcp(TcpListener::bind(addr)?))
    }

    /// Human-readable bound address.
    pub fn describe(&self) -> String {
        match self {
            Self::Unix(l) => match l.local_addr() {
                Ok(a) => format!("unix:{:?}", a),
                Err(_) => "unix:?".into(),
            },
            Self::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp:{a}"),
                Err(_) => "tcp:?".into(),
            },
        }
    }
}

/// Serve-loop tunables.
#[derive(Debug, Clone, Copy)]
pub struct DaemonOptions {
    /// Requests answered per batch before the rebalancer gets a tick.
    pub max_batch: usize,
    /// Idle wait per loop iteration when no requests are queued; also the
    /// idle tick cadence.
    pub idle_poll: Duration,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        Self {
            max_batch: 256,
            idle_poll: Duration::from_millis(20),
        }
    }
}

/// Telemetry-plane options of the serve loop, separate from
/// [`DaemonOptions`] so existing callers keep their defaults.
#[derive(Debug, Default)]
pub struct TelemetryOptions {
    /// Bound listener for the Prometheus `/metrics` endpoint (`None` =
    /// disabled). Scrape connections are forwarded into the serve loop
    /// and answered there — the exposition is rendered by the single
    /// writer, lock-free.
    pub metrics_http: Option<TcpListener>,
    /// Offer a [`qlb_obs::StatsSnapshot`] to the sink every this many
    /// scheduler ticks (0 = never).
    pub stats_every: u64,
    /// Causal-span head sampling: trace every `N`th wire op (1 = every
    /// op, 0 = spans disabled). The sampling decision is made before
    /// parsing; sampled-out ops pay one branch and a counter increment.
    pub span_sample: u64,
    /// Arm the anomaly-triggered flight recorder (`None` = off). Works
    /// with any sink — a [`qlb_obs::NoopSink`] daemon still dumps black
    /// boxes.
    pub flight: Option<FlightOptions>,
}

impl TelemetryOptions {
    /// Default trailer-snapshot cadence (every 32 scheduler ticks).
    pub const DEFAULT_STATS_EVERY: u64 = 32;

    /// Options with the default snapshot cadence, no HTTP endpoint, no
    /// spans, no flight recorder.
    pub fn with_defaults() -> Self {
        Self {
            metrics_http: None,
            stats_every: Self::DEFAULT_STATS_EVERY,
            span_sample: 0,
            flight: None,
        }
    }
}

/// The serve loop's causal-span state: the head-sampling counters, the
/// reusable probe-trace scratch, and the set of sampled live tickets the
/// rebalancer continuation watches.
struct SpanPlane {
    /// Trace every `sample`th op (0 = off).
    sample: u64,
    /// Wire ops seen (the head-sampling clock).
    ops: u64,
    /// Next span id (migration spans share the counter).
    next_id: u64,
    trace: PlaceTrace,
    /// Tickets of sampled, admitted, still-active placements: their
    /// migrations and departures are part of the causal story.
    tickets: HashSet<u64>,
    /// Reusable migration capture buffer for [`ServeCore::tick_traced`].
    moves: Vec<MoveRecord>,
}

impl SpanPlane {
    fn new(sample: u64) -> Self {
        Self {
            sample,
            ops: 0,
            next_id: 0,
            trace: PlaceTrace::default(),
            tickets: HashSet::new(),
            moves: Vec::new(),
        }
    }

    fn active(&self) -> bool {
        self.sample > 0
    }

    /// Head-sampling decision for the next wire op: `Some(span id)` when
    /// this op is traced. Every op advances the clock.
    fn sample_next(&mut self) -> Option<u64> {
        let take = self.ops.is_multiple_of(self.sample);
        self.ops += 1;
        take.then(|| {
            let id = self.next_id;
            self.next_id += 1;
            id
        })
    }

    /// Track the causal set: a sampled admission opens a ticket's story,
    /// its departure closes it.
    fn note(&mut self, span: &SpanRecord) {
        let Some(ticket) = span.ticket else { return };
        if span.op == SPAN_OP_PLACE && span.verdict == "admitted" {
            self.tickets.insert(ticket);
        } else if span.op == SPAN_OP_DEPART && span.verdict == "departed" {
            self.tickets.remove(&ticket);
        }
    }
}

enum ConnMsg {
    Open {
        conn: u64,
        writer: Box<dyn Write + Send>,
    },
    Line {
        conn: u64,
        line: String,
        at: Instant,
    },
    Closed {
        conn: u64,
    },
    /// An HTTP scrape connection whose request head has been consumed;
    /// the serve loop writes the exposition response and drops it.
    Scrape {
        stream: TcpStream,
    },
}

fn spawn_reader<R>(conn: u64, stream: R, tx: mpsc::Sender<ConnMsg>)
where
    R: Read + Send + 'static,
{
    thread::spawn(move || {
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            let at = Instant::now();
            if tx.send(ConnMsg::Line { conn, line, at }).is_err() {
                return; // serve loop is gone
            }
        }
        let _ = tx.send(ConnMsg::Closed { conn });
    });
}

fn spawn_acceptor(listener: ServeListener, tx: mpsc::Sender<ConnMsg>) {
    thread::spawn(move || {
        let mut next_conn = 0u64;
        match listener {
            ServeListener::Unix(l) => {
                for stream in l.incoming() {
                    let Ok(stream) = stream else { continue };
                    let Ok(writer) = stream.try_clone() else {
                        continue;
                    };
                    let conn = next_conn;
                    next_conn += 1;
                    if tx
                        .send(ConnMsg::Open {
                            conn,
                            writer: Box::new(writer),
                        })
                        .is_err()
                    {
                        return;
                    }
                    spawn_reader(conn, stream, tx.clone());
                }
            }
            ServeListener::Tcp(l) => {
                for stream in l.incoming() {
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_nodelay(true);
                    let Ok(writer) = stream.try_clone() else {
                        continue;
                    };
                    let conn = next_conn;
                    next_conn += 1;
                    if tx
                        .send(ConnMsg::Open {
                            conn,
                            writer: Box::new(writer),
                        })
                        .is_err()
                    {
                        return;
                    }
                    spawn_reader(conn, stream, tx.clone());
                }
            }
        }
    });
}

/// Consume one HTTP request head (bounded, best-effort): a Prometheus
/// scrape sends a small GET; we only need to drain it before replying.
fn drain_http_head(stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 1024];
    let mut head: Vec<u8> = Vec::new();
    let mut s = stream;
    while head.len() < 8 * 1024 {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
        }
    }
}

/// Acceptor for the Prometheus endpoint: reads each scrape's request
/// head, then forwards the connection into the serve loop for the reply.
fn spawn_metrics_acceptor(listener: TcpListener, tx: mpsc::Sender<ConnMsg>) {
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            drain_http_head(&stream);
            if tx.send(ConnMsg::Scrape { stream }).is_err() {
                return;
            }
        }
    });
}

/// Write one `200 OK` text-exposition response and close the connection.
fn answer_scrape(mut stream: TcpStream, body: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush());
}

/// Run the serve loop until a `shutdown` request arrives, with the
/// default telemetry plane (stats op live, periodic trailer snapshots,
/// no HTTP endpoint). Returns the number of requests served. The caller
/// finishes the sink afterwards (writing the trace trailer); the
/// acceptor thread is left parked on `accept` and dies with the process
/// — documented daemon behavior.
pub fn run_daemon<S: Sink>(
    core: ServeCore,
    listener: ServeListener,
    sink: &mut S,
    opts: DaemonOptions,
) -> io::Result<u64> {
    run_daemon_telemetry(
        core,
        listener,
        sink,
        opts,
        TelemetryOptions::with_defaults(),
    )
}

/// [`run_daemon`] with an explicit telemetry plane: the serve loop owns a
/// [`ServeTelemetry`] (so `{"op":"stats"}` answers with windowed rates
/// whatever the sink), offers a snapshot to the sink every
/// [`TelemetryOptions::stats_every`] ticks, and — when
/// [`TelemetryOptions::metrics_http`] is bound — answers Prometheus
/// scrapes from the same single-writer loop.
pub fn run_daemon_telemetry<S: Sink>(
    mut core: ServeCore,
    listener: ServeListener,
    sink: &mut S,
    opts: DaemonOptions,
    tel_opts: TelemetryOptions,
) -> io::Result<u64> {
    let (tx, rx) = mpsc::channel::<ConnMsg>();
    if let Some(http) = tel_opts.metrics_http {
        spawn_metrics_acceptor(http, tx.clone());
    }
    spawn_acceptor(listener, tx);
    let mut tel = ServeTelemetry::new(core.num_classes(), core.max_tick_rounds());
    let mut spans = SpanPlane::new(tel_opts.span_sample);
    let mut flight = tel_opts.flight.map(FlightRecorder::new);
    let mut scrapes: Vec<TcpStream> = Vec::new();
    let mut writers: HashMap<u64, Box<dyn Write + Send>> = HashMap::new();
    let mut queue: VecDeque<(u64, String, Instant)> = VecDeque::new();
    let mut served = 0u64;
    let mut shutdown = false;

    let ingest = |msg: ConnMsg,
                  writers: &mut HashMap<u64, Box<dyn Write + Send>>,
                  queue: &mut VecDeque<(u64, String, Instant)>,
                  scrapes: &mut Vec<TcpStream>| {
        match msg {
            ConnMsg::Open { conn, writer } => {
                writers.insert(conn, writer);
            }
            ConnMsg::Line { conn, line, at } => {
                if !line.trim().is_empty() {
                    queue.push_back((conn, line, at));
                }
            }
            ConnMsg::Closed { conn } => {
                writers.remove(&conn);
            }
            ConnMsg::Scrape { stream } => {
                scrapes.push(stream);
            }
        }
    };

    while !shutdown {
        // Ingest: block briefly when idle, then drain whatever is ready.
        if queue.is_empty() {
            match rx.recv_timeout(opts.idle_poll) {
                Ok(msg) => ingest(msg, &mut writers, &mut queue, &mut scrapes),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        while let Ok(msg) = rx.try_recv() {
            ingest(msg, &mut writers, &mut queue, &mut scrapes);
        }

        // Answer a batch.
        let batch = queue.len().min(opts.max_batch);
        let mut placements = 0u64;
        let mut departures = 0u64;
        for _ in 0..batch {
            let (conn, line, at) = queue.pop_front().expect("batch ≤ queue length");
            let reply = if spans.active() {
                let ctx = spans.sample_next().map(|id| (id, &mut spans.trace));
                let (reply, span) = handle_line_spanned(&mut core, Some(&tel), &line, sink, ctx);
                if let Some(span) = span {
                    spans.note(&span);
                    if S::ENABLED {
                        sink.span(&span);
                    }
                    if let Some(f) = flight.as_mut() {
                        f.record_span(&span);
                    }
                }
                reply
            } else {
                handle_line_with_stats(&mut core, Some(&tel), &line, sink)
            };
            match reply.kind {
                OpKind::Place => placements += 1,
                OpKind::Depart => departures += 1,
                _ => {}
            }
            if let Some(w) = writers.get_mut(&conn) {
                let sent = w
                    .write_all(reply.text.as_bytes())
                    .and_then(|()| w.write_all(b"\n"))
                    .and_then(|()| w.flush());
                if sent.is_err() {
                    writers.remove(&conn);
                }
            }
            // latency is measured unconditionally: telemetry always wants
            // it, and the sink gets a copy when recording
            let ns = at.elapsed().as_nanos() as u64;
            tel.on_request(reply.kind == OpKind::Place, ns);
            if S::ENABLED {
                sink.latency(REQUEST_HIST_NAME, ns);
                if reply.kind == OpKind::Place {
                    sink.latency(PLACE_HIST_NAME, ns);
                }
            }
            served += 1;
            if reply.shutdown {
                shutdown = true;
                break;
            }
        }
        if S::ENABLED && placements + departures > 0 {
            // Open-system vocabulary: a batch is an arrival/departure wave.
            if placements > 0 {
                sink.event(Event::Arrivals {
                    round: core.round(),
                    count: placements,
                });
            }
            if departures > 0 {
                sink.event(Event::Departures {
                    round: core.round(),
                    count: departures,
                });
            }
        }

        // Rebalance between batches; heartbeat when we did request work so
        // a live dashboard sees round records even in a satisfied steady
        // state.
        let backlog = queue.len();
        if spans.active() && !spans.tickets.is_empty() {
            // Causal continuation: capture this tick's migrations and
            // stamp the ones that move a sampled ticket.
            spans.moves.clear();
            core.tick_traced(backlog, batch > 0, sink, &mut spans.moves);
            for i in 0..spans.moves.len() {
                let mv = spans.moves[i];
                let ticket = mv.user.0 as u64;
                if !spans.tickets.contains(&ticket) {
                    continue;
                }
                let id = spans.next_id;
                spans.next_id += 1;
                let span = SpanRecord {
                    id,
                    op: SPAN_OP_MIGRATE.to_string(),
                    ticket: Some(ticket),
                    class: None,
                    verdict: "moved".to_string(),
                    probes: 0,
                    headroom: Vec::new(),
                    resource: Some(mv.to.0 as u64),
                    from: Some(mv.from.0 as u64),
                    parse_ns: 0,
                    admit_ns: 0,
                    probe_ns: 0,
                    reply_ns: 0,
                    total_ns: 0,
                };
                if S::ENABLED {
                    sink.span(&span);
                }
                if let Some(f) = flight.as_mut() {
                    f.record_span(&span);
                }
            }
        } else {
            core.tick(backlog, batch > 0, sink);
        }
        tel.on_tick(&core, backlog);
        if let Some(f) = flight.as_mut() {
            f.record_tick(
                tel.ticks(),
                backlog as u64,
                core.tick_budget(backlog) as u64,
                &core,
            );
            match f.check(&tel, &core, tel.ticks()) {
                Ok(Some((trigger, path))) => {
                    eprintln!(
                        "qlb-serve: flight recorder dumped {} (trigger: {trigger})",
                        path.display()
                    );
                }
                Ok(None) => {}
                Err(e) => eprintln!("qlb-serve: flight recorder dump failed: {e}"),
            }
        }
        if S::ENABLED
            && tel_opts.stats_every > 0
            && tel.ticks().is_multiple_of(tel_opts.stats_every)
        {
            sink.stats_snapshot(&tel.snapshot(&core));
        }

        // Answer any pending Prometheus scrapes: render once per batch,
        // from the single writer — no locks.
        if !scrapes.is_empty() {
            let body = render_prometheus(&tel, &core);
            for stream in scrapes.drain(..) {
                answer_scrape(stream, &body);
            }
        }
    }
    // Whole-run placement checkpoint: one delta against the assignment at
    // startup, so a trace consumer can rebuild the final placement without
    // a dense dump.
    if S::ENABLED {
        let d = core.export_delta();
        sink.delta_snapshot(&qlb_obs::DeltaSnapshot {
            round: core.round(),
            base_gen: d.base_gen(),
            gen: d.gen(),
            users: d.num_users(),
            changed: d.changed(),
            bytes: &d.to_bytes(),
        });
    }
    Ok(served)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ServeConfig;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    fn temp_sock(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "qlb-serve-daemon-{tag}-{}.sock",
            std::process::id()
        ));
        p
    }

    #[test]
    fn unix_daemon_round_trip() {
        let path = temp_sock("unit");
        let path_s = path.to_str().unwrap().to_string();
        let core = ServeCore::with_capacities(&[8; 4], 32, ServeConfig::new(2)).unwrap();
        let listener = ServeListener::bind_unix(&path_s).unwrap();
        let handle = thread::spawn(move || {
            let mut sink = qlb_obs::NoopSink;
            run_daemon(core, listener, &mut sink, DaemonOptions::default()).unwrap()
        });

        let stream = UnixStream::connect(&path).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        let mut line = String::new();
        let mut ask = |req: &str, line: &mut String| {
            w.write_all(req.as_bytes()).unwrap();
            w.write_all(b"\n").unwrap();
            w.flush().unwrap();
            line.clear();
            reader.read_line(line).unwrap();
        };
        ask("{\"op\":\"place\"}", &mut line);
        assert!(line.contains("\"admitted\":true"), "got {line}");
        ask("{\"op\":\"query\"}", &mut line);
        assert!(line.contains("\"active\":1"), "got {line}");
        // unknown ops answer ok:false with the offending op as a
        // structured field (wire contract; qlb-serve-load keys off it)
        ask("{\"op\":\"fly\"}", &mut line);
        assert!(line.contains("\"ok\":false"), "got {line}");
        assert!(line.contains("\"op\":\"fly\""), "got {line}");
        assert!(line.contains("unknown op"), "got {line}");
        ask("{\"op\":\"shutdown\"}", &mut line);
        assert!(line.contains("\"op\":\"shutdown\""), "got {line}");
        let served = handle.join().unwrap();
        assert_eq!(served, 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_op_and_metrics_endpoint_answer_live() {
        let core = ServeCore::with_capacities(&[8; 4], 32, ServeConfig::new(2)).unwrap();
        let listener = ServeListener::bind_tcp("127.0.0.1:0").unwrap();
        let addr = match &listener {
            ServeListener::Tcp(l) => l.local_addr().unwrap(),
            _ => unreachable!(),
        };
        let http = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let http_addr = http.local_addr().unwrap();
        let handle = thread::spawn(move || {
            let mut sink = qlb_obs::NoopSink;
            run_daemon_telemetry(
                core,
                listener,
                &mut sink,
                DaemonOptions::default(),
                TelemetryOptions {
                    metrics_http: Some(http),
                    stats_every: 4,
                    span_sample: 0,
                    flight: None,
                },
            )
            .unwrap()
        });
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        let mut line = String::new();
        let mut ask = |req: &str, line: &mut String| {
            w.write_all(req.as_bytes()).unwrap();
            w.write_all(b"\n").unwrap();
            w.flush().unwrap();
            line.clear();
            reader.read_line(line).unwrap();
        };
        ask("{\"op\":\"place\"}", &mut line);
        assert!(line.contains("\"admitted\":true"), "got {line}");
        ask("{\"op\":\"stats\"}", &mut line);
        assert!(line.contains("\"op\":\"stats\""), "got {line}");
        assert!(line.contains("\"rates\":["), "got {line}");
        assert!(line.contains("\"classes\":["), "got {line}");
        assert!(line.contains("\"budget_max\":"), "got {line}");

        // Prometheus scrape over real HTTP
        let mut http_conn = std::net::TcpStream::connect(http_addr).unwrap();
        http_conn
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        http_conn.flush().unwrap();
        let mut response = String::new();
        http_conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "got {response}");
        assert!(response.contains("qlb_placements_total 1"), "{response}");
        assert!(response.contains("# TYPE qlb_slo_violation_ratio gauge"));

        ask("{\"op\":\"shutdown\"}", &mut line);
        assert!(line.contains("shutdown"), "got {line}");
        handle.join().unwrap();
    }

    #[test]
    fn tcp_daemon_round_trip() {
        let core = ServeCore::with_capacities(&[8; 4], 32, ServeConfig::new(2)).unwrap();
        let listener = ServeListener::bind_tcp("127.0.0.1:0").unwrap();
        let addr = match &listener {
            ServeListener::Tcp(l) => l.local_addr().unwrap(),
            _ => unreachable!(),
        };
        let handle = thread::spawn(move || {
            let mut sink = qlb_obs::NoopSink;
            run_daemon(core, listener, &mut sink, DaemonOptions::default()).unwrap()
        });
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        w.write_all(b"{\"op\":\"place\",\"weight\":2}\n{\"op\":\"shutdown\"}\n")
            .unwrap();
        w.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"weight\":2"), "got {line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("shutdown"), "got {line}");
        assert_eq!(handle.join().unwrap(), 2);
    }
}
