//! The line-delimited JSON wire protocol.
//!
//! Each request is one JSON object on one line; each reply is one JSON
//! object on one line. The grammar (also documented in `DESIGN.md` §8):
//!
//! ```text
//! {"op":"place"[,"class":K][,"weight":W]}     → admission + placement
//! {"op":"depart","user":U}                    → release a placement
//! {"op":"query"[,"resource":R]}               → congestion / satisfaction
//! {"op":"stats"}                              → windowed live telemetry
//! {"op":"drain","resource":R}                 → retire a resource
//! {"op":"shutdown"}                           → flush trailer, exit
//! ```
//!
//! Replies always carry `"ok"`: `true` means the request was understood
//! and processed — note an admission *rejection* is a processed request
//! (`"ok":true,"admitted":false,"reason":…`), not an error. `"ok":false`
//! is reserved for malformed or invalid requests and carries `"error"`.
//!
//! Parsing uses the vendored `serde_json` value parser; replies are
//! hand-formatted (the schema is flat and fixed, and this keeps the
//! response path allocation-light).

use crate::core::{PlaceOutcome, PlaceTrace, RejectReason, ServeCore};
use crate::telemetry::{cumulative_snapshot, ServeTelemetry};
use qlb_core::{ClassId, ResourceId, UserId};
use qlb_obs::span::{SPAN_OP_DEPART, SPAN_OP_DRAIN, SPAN_OP_PLACE};
use qlb_obs::{Sink, SpanRecord};
use serde_json::{parse_value_str, Value};
use std::time::Instant;

/// A parsed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Admission + placement of `weight` slots of `class`.
    Place {
        /// QoS class (default 0).
        class: u32,
        /// Slots requested (default 1).
        weight: u32,
    },
    /// Release the placement with ticket `user`.
    Depart {
        /// Ticket from a `place` reply.
        user: u32,
    },
    /// Congestion / satisfaction snapshot.
    Query {
        /// Optional single-resource focus.
        resource: Option<u32>,
    },
    /// Windowed live-telemetry snapshot (rates, latency digests,
    /// per-class SLO violation fractions, rebalancer health).
    Stats,
    /// Retire a resource.
    Drain {
        /// Resource to drain.
        resource: u32,
    },
    /// Flush the trace trailer and exit.
    Shutdown,
}

/// A rejected request line: the human-readable reason plus — whenever the
/// line at least carried a string `"op"` field — the offending op itself,
/// echoed into the structured `"ok":false` reply so a caller can tell
/// *which* op was misspelled without parsing prose out of the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable reason, suitable for the `"error"` payload.
    pub msg: String,
    /// The request's `"op"` string, when one was present.
    pub op: Option<String>,
}

impl ParseError {
    fn new(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            op: None,
        }
    }
}

/// Parse one request line. The `Err` carries both the reason and (when
/// known) the offending op string for the structured error reply.
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let v = parse_value_str(line).map_err(|e| ParseError::new(format!("bad json: {e}")))?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ParseError::new("missing \"op\""))?;
    let with_op = |msg: String| ParseError {
        msg,
        op: Some(op.to_string()),
    };
    let u32_field = |name: &str| -> Result<Option<u32>, ParseError> {
        match v.get(name) {
            None | Some(Value::Null) => Ok(None),
            Some(x) => match x.as_u64() {
                Some(n) if n <= u32::MAX as u64 => Ok(Some(n as u32)),
                _ => Err(with_op(format!("\"{name}\" must be a u32"))),
            },
        }
    };
    match op {
        "place" => {
            let class = u32_field("class")?.unwrap_or(0);
            let weight = u32_field("weight")?.unwrap_or(1);
            if weight == 0 {
                return Err(with_op("\"weight\" must be ≥ 1".into()));
            }
            Ok(Request::Place { class, weight })
        }
        "depart" => {
            let user =
                u32_field("user")?.ok_or_else(|| with_op("\"depart\" needs \"user\"".into()))?;
            Ok(Request::Depart { user })
        }
        "query" => Ok(Request::Query {
            resource: u32_field("resource")?,
        }),
        "stats" => Ok(Request::Stats),
        "drain" => {
            let resource = u32_field("resource")?
                .ok_or_else(|| with_op("\"drain\" needs \"resource\"".into()))?;
            Ok(Request::Drain { resource })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(with_op(format!("unknown op \"{other}\""))),
    }
}

/// Which verb a reply answered — the daemon uses this for latency
/// attribution (placements get their own histogram) and batch events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A `place` (admitted or rejected).
    Place,
    /// A `depart`.
    Depart,
    /// A `query`.
    Query,
    /// A `stats`.
    Stats,
    /// A `drain`.
    Drain,
    /// A `shutdown`.
    Shutdown,
    /// A malformed request.
    Invalid,
}

/// One processed request: the reply line (no trailing newline) plus
/// routing facts for the daemon loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The JSON reply line.
    pub text: String,
    /// What kind of request this answered.
    pub kind: OpKind,
    /// Whether the daemon should stop after sending this reply.
    pub shutdown: bool,
}

impl Reply {
    fn new(text: String, kind: OpKind) -> Self {
        Self {
            text,
            kind,
            shutdown: false,
        }
    }
}

fn error_reply(op: OpKind, msg: &str) -> Reply {
    Reply::new(format!("{{\"ok\":false,\"error\":{}}}", json_str(msg)), op)
}

fn parse_error_reply(e: &ParseError) -> Reply {
    let mut text = format!("{{\"ok\":false,\"error\":{}", json_str(&e.msg));
    if let Some(op) = &e.op {
        text.push_str(",\"op\":");
        text.push_str(&json_str(op));
    }
    text.push('}');
    Reply::new(text, OpKind::Invalid)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// enough for the error messages we emit.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn place_reply(out: &PlaceOutcome) -> Reply {
    Reply::new(
        format!(
            "{{\"ok\":true,\"op\":\"place\",\"admitted\":true,\"user\":{},\"resource\":{},\"weight\":{},\"load\":{},\"cap\":{},\"satisfied\":{}}}",
            out.user.0, out.resource.0, out.weight, out.load, out.cap, out.satisfied
        ),
        OpKind::Place,
    )
}

fn reject_reply(reason: RejectReason) -> Reply {
    Reply::new(
        format!(
            "{{\"ok\":true,\"op\":\"place\",\"admitted\":false,\"reason\":\"{}\"}}",
            reason.as_str()
        ),
        OpKind::Place,
    )
}

fn query_reply(core: &ServeCore, resource: Option<u32>) -> Reply {
    let (placements, rejects, departures, drains) = core.totals();
    let (pool, capacity, draining) = core.reject_reasons();
    let mut s = format!(
        "{{\"ok\":true,\"op\":\"query\",\"active\":{},\"free\":{},\"unsatisfied\":{},\"round\":{},\"placements\":{},\"rejects\":{},\"reject_reasons\":{{\"pool\":{},\"capacity\":{},\"draining\":{}}},\"departures\":{},\"drains\":{}",
        core.active_slots(),
        core.free_slots(),
        core.unsatisfied(),
        core.round(),
        placements,
        rejects,
        pool,
        capacity,
        draining,
        departures,
        drains
    );
    s.push_str(",\"draining\":[");
    for (i, r) in core.draining_resources().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&r.to_string());
    }
    s.push_str("],\"classes\":[");
    for (i, cs) in core.class_stats().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"class\":{},\"active\":{},\"unsatisfied\":{}}}",
            cs.class.0, cs.active, cs.unsatisfied
        ));
    }
    s.push(']');
    if let Some(r) = resource {
        let rs = core.resource_stats(ResourceId(r));
        s.push_str(&format!(
            ",\"resource\":{{\"id\":{},\"load\":{},\"cap\":{},\"draining\":{},\"drained\":{}}}",
            rs.resource.0, rs.load, rs.cap, rs.draining, rs.drained
        ));
    }
    s.push('}');
    Reply::new(s, OpKind::Query)
}

fn stats_reply(core: &ServeCore, tel: Option<&ServeTelemetry>) -> Reply {
    let snap = match tel {
        Some(tel) => tel.snapshot(core),
        None => cumulative_snapshot(core),
    };
    let body = serde_json::to_string(&snap).expect("snapshot serializes");
    Reply::new(
        format!("{{\"ok\":true,\"op\":\"stats\",\"stats\":{body}}}"),
        OpKind::Stats,
    )
}

/// Parse and execute one request line against the core, producing the
/// reply line. This is the single dispatch point shared by the socket
/// daemon, the serve bench, and the lifecycle tests. A `stats` request
/// through this entry point answers with cumulative tallies only (no
/// windowed telemetry) — the daemon routes through
/// [`handle_line_with_stats`] instead.
pub fn handle_line<S: Sink>(core: &mut ServeCore, line: &str, sink: &mut S) -> Reply {
    handle_line_with_stats(core, None, line, sink)
}

/// [`handle_line`] with a live [`ServeTelemetry`] behind the `stats` op:
/// the daemon's dispatch point for sampled-out (and untraced) requests.
pub fn handle_line_with_stats<S: Sink>(
    core: &mut ServeCore,
    tel: Option<&ServeTelemetry>,
    line: &str,
    sink: &mut S,
) -> Reply {
    handle_line_spanned(core, tel, line, sink, None).0
}

/// The full dispatch: [`handle_line_with_stats`] plus optional causal-span
/// capture. With `span = Some((id, trace))` the request is *traced*: the
/// parse / admit / probe / reply phases are individually clocked and a
/// `place`/`depart`/`drain` (or malformed) request yields a
/// [`SpanRecord`] the caller emits. With `span = None` no clock is read
/// beyond what the untraced path always did — sampled-out requests fold
/// to a handful of branches.
pub fn handle_line_spanned<S: Sink>(
    core: &mut ServeCore,
    tel: Option<&ServeTelemetry>,
    line: &str,
    sink: &mut S,
    span: Option<(u64, &mut PlaceTrace)>,
) -> (Reply, Option<SpanRecord>) {
    let (span_id, mut trace) = match span {
        Some((id, t)) => (id, Some(t)),
        None => (0, None),
    };
    let traced = trace.is_some();
    let t0 = traced.then(Instant::now);
    // A traced span for an op that never reached (or was refused by) the
    // core: every phase after parse is zero.
    let error_span = |t0: Option<Instant>, op: &str, parse_ns: u64| {
        t0.map(|t| SpanRecord {
            id: span_id,
            op: op.to_string(),
            ticket: None,
            class: None,
            verdict: "error".to_string(),
            probes: 0,
            headroom: Vec::new(),
            resource: None,
            from: None,
            parse_ns,
            admit_ns: 0,
            probe_ns: 0,
            reply_ns: 0,
            total_ns: t.elapsed().as_nanos() as u64,
        })
    };
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            let parse_ns = t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
            let op = e.op.as_deref().unwrap_or("invalid").to_string();
            let reply = parse_error_reply(&e);
            return (reply, error_span(t0, &op, parse_ns));
        }
    };
    let parse_ns = t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
    match req {
        Request::Place { class, weight } => {
            if (class as usize) >= core.num_classes() {
                let reply = error_reply(
                    OpKind::Place,
                    &format!("class {class} out of range (have {})", core.num_classes()),
                );
                return (reply, error_span(t0, SPAN_OP_PLACE, parse_ns));
            }
            let t1 = traced.then(Instant::now);
            let res = match trace.as_deref_mut() {
                Some(tr) => core.place_traced(ClassId(class), weight, sink, tr),
                None => core.place(ClassId(class), weight, sink),
            };
            let admit_ns = t1.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
            let t2 = traced.then(Instant::now);
            let reply = match &res {
                Ok(out) => place_reply(out),
                Err(reason) => reject_reply(*reason),
            };
            let span = t0.map(|t| SpanRecord {
                id: span_id,
                op: SPAN_OP_PLACE.to_string(),
                ticket: res.as_ref().ok().map(|o| o.user.0 as u64),
                class: Some(class as u64),
                verdict: match &res {
                    Ok(_) => "admitted".to_string(),
                    Err(reason) => reason.as_str().to_string(),
                },
                probes: trace.as_ref().map(|tr| tr.probes).unwrap_or(0),
                headroom: trace
                    .as_ref()
                    .map(|tr| tr.headroom.clone())
                    .unwrap_or_default(),
                resource: res.as_ref().ok().map(|o| o.resource.0 as u64),
                from: None,
                parse_ns,
                admit_ns,
                probe_ns: trace.as_ref().map(|tr| tr.probe_ns).unwrap_or(0),
                reply_ns: t2.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                total_ns: t.elapsed().as_nanos() as u64,
            });
            (reply, span)
        }
        Request::Depart { user } => {
            let t1 = traced.then(Instant::now);
            let res = core.depart(UserId(user), sink);
            let admit_ns = t1.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
            let t2 = traced.then(Instant::now);
            let reply = match &res {
                Ok(out) => Reply::new(
                    format!(
                        "{{\"ok\":true,\"op\":\"depart\",\"user\":{user},\"released\":{}}}",
                        out.released
                    ),
                    OpKind::Depart,
                ),
                Err(e) => error_reply(OpKind::Depart, e),
            };
            let span = t0.map(|t| SpanRecord {
                id: span_id,
                op: SPAN_OP_DEPART.to_string(),
                ticket: Some(user as u64),
                class: None,
                verdict: if res.is_ok() { "departed" } else { "error" }.to_string(),
                probes: 0,
                headroom: Vec::new(),
                resource: None,
                from: None,
                parse_ns,
                admit_ns,
                probe_ns: 0,
                reply_ns: t2.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                total_ns: t.elapsed().as_nanos() as u64,
            });
            (reply, span)
        }
        Request::Query { resource } => {
            if let Some(r) = resource {
                if (r as usize) >= core.num_resources() {
                    let reply = error_reply(
                        OpKind::Query,
                        &format!("resource {r} out of range (have {})", core.num_resources()),
                    );
                    return (reply, None);
                }
            }
            (query_reply(core, resource), None)
        }
        Request::Stats => (stats_reply(core, tel), None),
        Request::Drain { resource } => {
            if (resource as usize) >= core.num_resources() {
                let reply = error_reply(
                    OpKind::Drain,
                    &format!(
                        "resource {resource} out of range (have {})",
                        core.num_resources()
                    ),
                );
                return (reply, error_span(t0, SPAN_OP_DRAIN, parse_ns));
            }
            let t1 = traced.then(Instant::now);
            let res = core.drain(ResourceId(resource), sink);
            let admit_ns = t1.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
            let t2 = traced.then(Instant::now);
            let reply = match &res {
                Ok(out) => Reply::new(
                    format!(
                        "{{\"ok\":true,\"op\":\"drain\",\"resource\":{},\"occupants\":{}}}",
                        out.resource.0, out.occupants
                    ),
                    OpKind::Drain,
                ),
                Err(e) => error_reply(OpKind::Drain, e),
            };
            let span = t0.map(|t| SpanRecord {
                id: span_id,
                op: SPAN_OP_DRAIN.to_string(),
                ticket: None,
                class: None,
                verdict: if res.is_ok() { "drained" } else { "error" }.to_string(),
                probes: 0,
                headroom: Vec::new(),
                resource: Some(resource as u64),
                from: None,
                parse_ns,
                admit_ns,
                probe_ns: 0,
                reply_ns: t2.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                total_ns: t.elapsed().as_nanos() as u64,
            });
            (reply, span)
        }
        Request::Shutdown => {
            let mut r = Reply::new(
                "{\"ok\":true,\"op\":\"shutdown\"}".to_string(),
                OpKind::Shutdown,
            );
            r.shutdown = true;
            (r, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ServeConfig;
    use qlb_obs::NoopSink;

    fn core() -> ServeCore {
        ServeCore::with_capacities(&[4; 8], 64, ServeConfig::new(7)).unwrap()
    }

    fn get<'v>(v: &'v Value, k: &str) -> &'v Value {
        v.get(k).unwrap_or_else(|| panic!("missing key {k}"))
    }

    #[test]
    fn parse_all_ops() {
        assert_eq!(
            parse_request("{\"op\":\"place\"}").unwrap(),
            Request::Place {
                class: 0,
                weight: 1
            }
        );
        assert_eq!(
            parse_request("{\"op\":\"place\",\"class\":2,\"weight\":3}").unwrap(),
            Request::Place {
                class: 2,
                weight: 3
            }
        );
        assert_eq!(
            parse_request("{\"op\":\"depart\",\"user\":9}").unwrap(),
            Request::Depart { user: 9 }
        );
        assert_eq!(
            parse_request("{\"op\":\"query\"}").unwrap(),
            Request::Query { resource: None }
        );
        assert_eq!(
            parse_request("{\"op\":\"query\",\"resource\":1}").unwrap(),
            Request::Query { resource: Some(1) }
        );
        assert_eq!(
            parse_request("{\"op\":\"drain\",\"resource\":4}").unwrap(),
            Request::Drain { resource: 4 }
        );
        assert_eq!(parse_request("{\"op\":\"stats\"}").unwrap(), Request::Stats);
        assert_eq!(
            parse_request("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{}").is_err());
        assert!(parse_request("{\"op\":\"fly\"}").is_err());
        assert!(parse_request("{\"op\":\"depart\"}").is_err());
        assert!(parse_request("{\"op\":\"drain\"}").is_err());
        assert!(parse_request("{\"op\":\"place\",\"weight\":0}").is_err());
        assert!(parse_request("{\"op\":\"place\",\"weight\":-1}").is_err());
    }

    #[test]
    fn place_reply_roundtrips_as_json() {
        let mut c = core();
        let mut sink = NoopSink;
        let r = handle_line(&mut c, "{\"op\":\"place\"}", &mut sink);
        assert_eq!(r.kind, OpKind::Place);
        assert!(!r.shutdown);
        let v = parse_value_str(&r.text).unwrap();
        assert_eq!(get(&v, "ok").as_bool(), Some(true));
        assert_eq!(get(&v, "admitted").as_bool(), Some(true));
        let user = get(&v, "user").as_u64().unwrap();
        // and the ticket departs cleanly
        let r = handle_line(
            &mut c,
            &format!("{{\"op\":\"depart\",\"user\":{user}}}"),
            &mut sink,
        );
        let v = parse_value_str(&r.text).unwrap();
        assert_eq!(get(&v, "released").as_u64(), Some(1));
    }

    #[test]
    fn rejection_is_ok_true() {
        let mut c = ServeCore::with_capacities(&[1], 2, ServeConfig::new(1)).unwrap();
        let mut sink = NoopSink;
        // cap 1, φ=0.95 → floor 0 admitted slots: immediate capacity reject
        let r = handle_line(&mut c, "{\"op\":\"place\"}", &mut sink);
        let v = parse_value_str(&r.text).unwrap();
        assert_eq!(get(&v, "ok").as_bool(), Some(true));
        assert_eq!(get(&v, "admitted").as_bool(), Some(false));
        assert_eq!(get(&v, "reason").as_str(), Some("capacity"));
    }

    #[test]
    fn query_reports_shape() {
        let mut c = core();
        let mut sink = NoopSink;
        for _ in 0..5 {
            handle_line(&mut c, "{\"op\":\"place\"}", &mut sink);
        }
        handle_line(&mut c, "{\"op\":\"drain\",\"resource\":3}", &mut sink);
        let r = handle_line(&mut c, "{\"op\":\"query\",\"resource\":3}", &mut sink);
        let v = parse_value_str(&r.text).unwrap();
        assert_eq!(get(&v, "active").as_u64(), Some(5));
        assert_eq!(get(&v, "placements").as_u64(), Some(5));
        assert_eq!(get(&v, "drains").as_u64(), Some(1));
        let res = get(&v, "resource");
        assert_eq!(get(res, "id").as_u64(), Some(3));
        assert_eq!(get(res, "draining").as_bool(), Some(true));
        let classes = match get(&v, "classes") {
            Value::Array(a) => a,
            other => panic!("classes not an array: {other:?}"),
        };
        assert_eq!(classes.len(), 1);
    }

    #[test]
    fn query_reports_reject_reasons() {
        let mut c = ServeCore::with_capacities(&[1], 2, ServeConfig::new(1)).unwrap();
        let mut sink = NoopSink;
        handle_line(&mut c, "{\"op\":\"place\"}", &mut sink); // capacity reject
        let r = handle_line(&mut c, "{\"op\":\"query\"}", &mut sink);
        let v = parse_value_str(&r.text).unwrap();
        let reasons = get(&v, "reject_reasons");
        assert_eq!(get(reasons, "pool").as_u64(), Some(0));
        assert_eq!(get(reasons, "capacity").as_u64(), Some(1));
        assert_eq!(get(reasons, "draining").as_u64(), Some(0));
    }

    #[test]
    fn stats_without_telemetry_reports_cumulative_tallies() {
        let mut c = core();
        let mut sink = NoopSink;
        for _ in 0..3 {
            handle_line(&mut c, "{\"op\":\"place\"}", &mut sink);
        }
        let r = handle_line(&mut c, "{\"op\":\"stats\"}", &mut sink);
        assert_eq!(r.kind, OpKind::Stats);
        let v = parse_value_str(&r.text).unwrap();
        assert_eq!(get(&v, "ok").as_bool(), Some(true));
        let stats = get(&v, "stats");
        assert_eq!(get(stats, "active").as_u64(), Some(3));
        assert!(stats.get("classes").is_some());
    }

    #[test]
    fn stats_with_telemetry_reports_windowed_rates() {
        let mut c = core();
        let mut tel = ServeTelemetry::new(c.num_classes(), c.max_tick_rounds());
        let mut sink = NoopSink;
        for _ in 0..4 {
            handle_line(&mut c, "{\"op\":\"place\"}", &mut sink);
        }
        tel.on_request(true, 1_000);
        tel.on_tick_at(&c, 0, 0);
        tel.on_tick_at(&c, 0, 500);
        let r = handle_line_with_stats(&mut c, Some(&tel), "{\"op\":\"stats\"}", &mut sink);
        let v = parse_value_str(&r.text).unwrap();
        let stats = get(&v, "stats");
        assert_eq!(get(stats, "tick").as_u64(), Some(2));
        let rates = match get(stats, "rates") {
            Value::Array(a) => a,
            other => panic!("rates not an array: {other:?}"),
        };
        assert!(!rates.is_empty());
        let placements = rates
            .iter()
            .find(|r| r.get("name").and_then(Value::as_str) == Some("placements"))
            .expect("placements rate present");
        assert!(placements.get("r1s").and_then(Value::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn invalid_requests_get_ok_false() {
        let mut c = core();
        let mut sink = NoopSink;
        for bad in [
            "nope",
            "{\"op\":\"depart\",\"user\":12345}",
            "{\"op\":\"drain\",\"resource\":99}",
            "{\"op\":\"query\",\"resource\":99}",
            "{\"op\":\"place\",\"class\":7}",
        ] {
            let r = handle_line(&mut c, bad, &mut sink);
            let v = parse_value_str(&r.text).unwrap();
            assert_eq!(get(&v, "ok").as_bool(), Some(false), "line: {bad}");
            assert!(v.get("error").is_some(), "line: {bad}");
        }
    }

    #[test]
    fn shutdown_sets_flag() {
        let mut c = core();
        let mut sink = NoopSink;
        let r = handle_line(&mut c, "{\"op\":\"shutdown\"}", &mut sink);
        assert!(r.shutdown);
        assert_eq!(r.kind, OpKind::Shutdown);
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn unknown_op_error_carries_the_offending_op() {
        let mut c = core();
        let mut sink = NoopSink;
        let r = handle_line(&mut c, "{\"op\":\"fly\"}", &mut sink);
        assert_eq!(r.kind, OpKind::Invalid);
        let v = parse_value_str(&r.text).unwrap();
        assert_eq!(get(&v, "ok").as_bool(), Some(false));
        assert_eq!(get(&v, "op").as_str(), Some("fly"));
        assert!(get(&v, "error").as_str().unwrap().contains("unknown op"));
        // field errors on a known op echo the op too
        let r = handle_line(&mut c, "{\"op\":\"depart\"}", &mut sink);
        let v = parse_value_str(&r.text).unwrap();
        assert_eq!(get(&v, "op").as_str(), Some("depart"));
        // but a line with no op at all cannot
        let r = handle_line(&mut c, "{}", &mut sink);
        let v = parse_value_str(&r.text).unwrap();
        assert!(v.get("op").is_none());
    }

    #[test]
    fn spanned_dispatch_captures_phases_and_evidence() {
        let mut c = core();
        let mut sink = NoopSink;
        let mut trace = PlaceTrace::default();
        let (r, span) = handle_line_spanned(
            &mut c,
            None,
            "{\"op\":\"place\"}",
            &mut sink,
            Some((5, &mut trace)),
        );
        let span = span.expect("place yields a span");
        assert_eq!(span.id, 5);
        assert_eq!(span.op, SPAN_OP_PLACE);
        assert_eq!(span.verdict, "admitted");
        assert_eq!(span.probes, 2);
        assert_eq!(span.headroom.len(), 2);
        assert!(span.total_ns >= span.parse_ns + span.admit_ns);
        assert!(span.admit_ns >= span.probe_ns);
        let v = parse_value_str(&r.text).unwrap();
        let user = get(&v, "user").as_u64().unwrap();
        assert_eq!(span.ticket, Some(user));
        assert_eq!(span.resource, Some(get(&v, "resource").as_u64().unwrap()));
        // depart closes the lifecycle with the same ticket
        let (_, span) = handle_line_spanned(
            &mut c,
            None,
            &format!("{{\"op\":\"depart\",\"user\":{user}}}"),
            &mut sink,
            Some((6, &mut trace)),
        );
        let span = span.expect("depart yields a span");
        assert_eq!(span.op, SPAN_OP_DEPART);
        assert_eq!(span.verdict, "departed");
        assert_eq!(span.ticket, Some(user));
        // a malformed line yields an error span naming the op
        let (_, span) = handle_line_spanned(
            &mut c,
            None,
            "{\"op\":\"fly\"}",
            &mut sink,
            Some((7, &mut trace)),
        );
        let span = span.expect("parse error yields a span");
        assert_eq!(span.op, "fly");
        assert_eq!(span.verdict, "error");
        // untraced calls yield no span and no panic
        let (_, span) = handle_line_spanned(&mut c, None, "{\"op\":\"place\"}", &mut sink, None);
        assert!(span.is_none());
    }

    #[test]
    fn spanned_dispatch_matches_untraced_replies() {
        // the traced path must produce byte-identical replies and the
        // identical trajectory (same placement targets) as the untraced one
        let run = |traced: bool| {
            let mut c = core();
            let mut sink = NoopSink;
            let mut trace = PlaceTrace::default();
            let mut replies = Vec::new();
            for i in 0..20u32 {
                let line = match i % 4 {
                    0 | 1 => "{\"op\":\"place\"}".to_string(),
                    2 => format!("{{\"op\":\"depart\",\"user\":{}}}", 63 - i / 4),
                    _ => "{\"op\":\"query\"}".to_string(),
                };
                let r = if traced {
                    handle_line_spanned(
                        &mut c,
                        None,
                        &line,
                        &mut sink,
                        Some((i as u64, &mut trace)),
                    )
                    .0
                } else {
                    handle_line(&mut c, &line, &mut sink)
                };
                replies.push(r.text);
            }
            replies
        };
        assert_eq!(run(false), run(true));
    }
}
