//! Daemon-side live telemetry: the windowed view behind the `stats` wire
//! op, the periodic trace-trailer snapshots, and Prometheus exposition.
//!
//! [`ServeTelemetry`] is owned by the serve loop — single-writer, no
//! locks — and is **sink-independent**: it differences the cumulative
//! tallies [`ServeCore`] already maintains (placements, rejects by
//! reason, departures, rounds, migrations) into a
//! [`WindowedAggregator`], and keeps its own cumulative request/placement
//! latency histograms, so a daemon running with a [`qlb_obs::NoopSink`]
//! still answers `stats` and serves `/metrics`. The hot-path emission
//! sites in the core are untouched; the marginal cost is one
//! `observe` + a handful of u64 subtractions per scheduler tick, gated
//! below 2% by the workspace bench (`BENCH_obs.json`).
//!
//! ## SLO accounting
//!
//! A class is *in violation* while any of its users is unsatisfied — the
//! serving analogue of the paper's per-class legality (a placement is
//! legal when every class meets its quality bound; here we track the
//! complement over time instead of a terminal predicate). The per-tick
//! flags come from [`ServeCore::class_stats`], and the aggregator turns
//! them into time-in-violation fractions, both over the trailing windows
//! and cumulatively.
//!
//! Clocking: [`ServeTelemetry::on_tick`] stamps wall-clock uptime;
//! everything below it takes relative milliseconds, so the unit tests
//! drive [`ServeTelemetry::on_tick_at`] with synthetic clocks. Telemetry
//! is daemon-side only — no wall-clock reading enters a protocol
//! decision, preserving the workspace determinism contract.

use crate::core::ServeCore;
use qlb_obs::profile::{PLACE_HIST_NAME, REQUEST_HIST_NAME};
use qlb_obs::{
    ClassSlo, Counter, Gauge, Histogram, LatencyDigest, RateSample, StatsSnapshot,
    WindowedAggregator, RATE_WINDOWS_MS,
};
use std::time::Instant;

/// The counters whose rolling rates a snapshot reports, in export order.
const RATE_COUNTERS: [Counter; 6] = [
    Counter::Placements,
    Counter::AdmissionRejects,
    Counter::ServeDeparts,
    Counter::Drains,
    Counter::Rounds,
    Counter::Migrations,
];

/// The digest window for latency quantiles and per-class violation
/// fractions: the middle of [`qlb_obs::RATE_WINDOWS_MS`] (10 s).
const DIGEST_WINDOW_MS: u64 = 10_000;

/// Live telemetry state for one serving daemon — see the module docs.
#[derive(Debug)]
pub struct ServeTelemetry {
    agg: WindowedAggregator,
    /// Cumulative request/placement latency (daemon-side copies; the
    /// sink's histograms are not readable through the `Sink` trait).
    /// Held as direct fields so the per-request path is two array-index
    /// observes with no name lookup.
    req_hist: Histogram,
    place_hist: Histogram,
    /// Scratch for the per-tick class violation scan (no per-tick
    /// allocation).
    scratch_unsat: Vec<u64>,
    epoch: Instant,
    ticks: u64,
    starved_ticks: u64,
    last_backlog: u64,
    last_budget: u64,
    budget_max: u64,
}

impl ServeTelemetry {
    /// Telemetry for a daemon with `classes` QoS classes and a rebalancer
    /// budget ceiling of `budget_max` rounds per tick.
    pub fn new(classes: usize, budget_max: u32) -> Self {
        Self {
            agg: WindowedAggregator::new(classes),
            req_hist: Histogram::default(),
            place_hist: Histogram::default(),
            scratch_unsat: Vec::new(),
            epoch: Instant::now(),
            ticks: 0,
            starved_ticks: 0,
            last_backlog: 0,
            last_budget: budget_max.max(1) as u64,
            budget_max: budget_max.max(1) as u64,
        }
    }

    /// Milliseconds since the daemon's telemetry epoch.
    pub fn uptime_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Scheduler ticks observed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Ticks that ran with the rebalancer budget pinned at its floor
    /// while a backlog and unsatisfied users remained (the flight
    /// recorder's starvation trigger differences this).
    pub fn starved_ticks(&self) -> u64 {
        self.starved_ticks
    }

    /// Record one answered request: its receipt→reply latency, and
    /// whether it was a placement (which also feeds the placement
    /// histogram).
    #[inline]
    pub fn on_request(&mut self, is_place: bool, ns: u64) {
        self.req_hist.observe(ns);
        if is_place {
            self.place_hist.observe(ns);
        }
    }

    /// Fold one scheduler tick into the window, stamped with wall-clock
    /// uptime. `backlog` is the request-queue length the tick saw.
    pub fn on_tick(&mut self, core: &ServeCore, backlog: usize) {
        self.on_tick_at(core, backlog, self.uptime_ms());
    }

    /// [`ServeTelemetry::on_tick`] with an explicit clock (tests).
    pub fn on_tick_at(&mut self, core: &ServeCore, backlog: usize, now_ms: u64) {
        self.ticks += 1;
        self.agg.observe(now_ms);
        let (placements, rejects, departures, drains) = core.totals();
        self.agg.record_counter(Counter::Placements, placements);
        self.agg.record_counter(Counter::AdmissionRejects, rejects);
        self.agg.record_counter(Counter::ServeDeparts, departures);
        self.agg.record_counter(Counter::Drains, drains);
        self.agg.record_counter(Counter::Rounds, core.round());
        self.agg
            .record_counter(Counter::Migrations, core.migrations_total());
        self.agg
            .record_gauge(Gauge::Unsatisfied, core.unsatisfied());
        self.agg
            .record_gauge(Gauge::ActiveUsers, core.active_slots());
        self.agg.record_hist(REQUEST_HIST_NAME, &self.req_hist);
        self.agg.record_hist(PLACE_HIST_NAME, &self.place_hist);
        core.class_unsatisfied_into(&mut self.scratch_unsat);
        for (k, &unsat) in self.scratch_unsat.iter().enumerate() {
            self.agg.set_class_violation(k, unsat > 0);
        }
        self.last_backlog = backlog as u64;
        self.last_budget = core.tick_budget(backlog) as u64;
        // Starvation: the adaptive budget is pinned at its floor while
        // both a backlog and unsatisfied users remain.
        if self.last_budget == 1 && self.budget_max > 1 && backlog > 0 && core.unsatisfied() > 0 {
            self.starved_ticks += 1;
        }
    }

    /// The windowed aggregator (read access for rendering).
    pub fn aggregator(&self) -> &WindowedAggregator {
        &self.agg
    }

    /// The cumulative (request, placement) latency histograms with their
    /// interned export names.
    pub fn latency_hists(&self) -> [(&'static str, &Histogram); 2] {
        [
            (REQUEST_HIST_NAME, &self.req_hist),
            (PLACE_HIST_NAME, &self.place_hist),
        ]
    }

    /// One latency digest: cumulative count, windowed p50/p95/p99 —
    /// falling back to whole-run quantiles while the window is empty
    /// (e.g. right after start, before any windowed samples).
    fn digest(&self, name: &str, cum: &Histogram) -> LatencyDigest {
        let windowed = self.agg.window_hist(name, DIGEST_WINDOW_MS);
        let h = if windowed.count() > 0 { &windowed } else { cum };
        LatencyDigest {
            name: name.to_string(),
            count: cum.count(),
            p50_ns: h.quantile(0.50),
            p95_ns: h.quantile(0.95),
            p99_ns: h.quantile(0.99),
        }
    }

    /// Build the exported snapshot of the current windowed view.
    pub fn snapshot(&self, core: &ServeCore) -> StatsSnapshot {
        let mut rates = Vec::with_capacity(1 + RATE_COUNTERS.len());
        // The covered-time denominators are shared by every rate in the
        // snapshot — compute them once per window instead of once per
        // (counter, window) query.
        let covered = RATE_WINDOWS_MS.map(|w| self.agg.window_covered_ms(w));
        let per_sec = |delta: u64, covered_ms: u64| {
            if covered_ms == 0 {
                0.0
            } else {
                delta as f64 * 1_000.0 / covered_ms as f64
            }
        };
        // Request rate is derived from the windowed latency histogram
        // counts (there is no dense counter for raw requests).
        let req = RATE_WINDOWS_MS.map(|w| self.agg.window_hist_count(REQUEST_HIST_NAME, w));
        rates.push(RateSample {
            name: "requests".to_string(),
            r1s: per_sec(req[0], covered[0]),
            r10s: per_sec(req[1], covered[1]),
            r60s: per_sec(req[2], covered[2]),
        });
        for c in RATE_COUNTERS {
            let d = RATE_WINDOWS_MS.map(|w| self.agg.window_delta(c, w));
            rates.push(RateSample {
                name: c.name().to_string(),
                r1s: per_sec(d[0], covered[0]),
                r10s: per_sec(d[1], covered[1]),
                r60s: per_sec(d[2], covered[2]),
            });
        }
        let latency = self
            .latency_hists()
            .into_iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(name, h)| self.digest(name, h))
            .collect();
        let classes = core
            .class_stats()
            .iter()
            .map(|cs| ClassSlo {
                class: cs.class.0 as u64,
                active: cs.active,
                unsatisfied: cs.unsatisfied,
                violation_windowed: self
                    .agg
                    .violation_fraction(cs.class.index(), DIGEST_WINDOW_MS),
                violation_total: self.agg.cumulative_violation_fraction(cs.class.index()),
            })
            .collect();
        let (pool, capacity, draining) = core.reject_reasons();
        StatsSnapshot {
            tick: self.ticks,
            uptime_ms: self.agg.covered_ms(),
            active: core.active_slots(),
            unsatisfied: core.unsatisfied(),
            backlog: self.last_backlog,
            budget: self.last_budget,
            budget_max: self.budget_max,
            starved_ticks: self.starved_ticks,
            rates,
            latency,
            classes,
            rejects_pool: pool,
            rejects_capacity: capacity,
            rejects_draining: draining,
        }
    }
}

/// A snapshot with no windowed telemetry behind it (a `stats` request on
/// a context without a [`ServeTelemetry`], e.g. the in-process bench):
/// cumulative tallies are real, every windowed quantity is zero.
pub fn cumulative_snapshot(core: &ServeCore) -> StatsSnapshot {
    let (pool, capacity, draining) = core.reject_reasons();
    StatsSnapshot {
        tick: 0,
        uptime_ms: 0,
        active: core.active_slots(),
        unsatisfied: core.unsatisfied(),
        backlog: 0,
        budget: core.max_tick_rounds() as u64,
        budget_max: core.max_tick_rounds() as u64,
        starved_ticks: 0,
        rates: Vec::new(),
        latency: Vec::new(),
        classes: core
            .class_stats()
            .iter()
            .map(|cs| ClassSlo {
                class: cs.class.0 as u64,
                active: cs.active,
                unsatisfied: cs.unsatisfied,
                violation_windowed: 0.0,
                violation_total: 0.0,
            })
            .collect(),
        rejects_pool: pool,
        rejects_capacity: capacity,
        rejects_draining: draining,
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Render the Prometheus text exposition (format version 0.0.4) of the
/// daemon's current state: every line is a `# HELP`, a `# TYPE`, or a
/// sample. Metric names come from the stable [`Counter::prom_name`] /
/// [`Gauge::prom_name`] export boundary; admission rejects are exported
/// **only** labeled by reason (no unlabeled duplicate), latency as
/// summaries, and per-class SLO violation as labeled ratios.
pub fn render_prometheus(tel: &ServeTelemetry, core: &ServeCore) -> String {
    let mut out = String::new();
    let snap = tel.snapshot(core);
    let (placements, _, departures, drains) = core.totals();
    let counters: [(Counter, u64, &str); 5] = [
        (
            Counter::Placements,
            placements,
            "Admitted placement requests",
        ),
        (
            Counter::ServeDeparts,
            departures,
            "Processed departure requests",
        ),
        (Counter::Drains, drains, "Resource drains started"),
        (Counter::Rounds, core.round(), "Rebalancer protocol rounds"),
        (
            Counter::Migrations,
            core.migrations_total(),
            "User migrations applied by the rebalancer",
        ),
    ];
    for (c, value, help) in counters {
        let name = c.prom_name();
        out.push_str(&format!("# HELP {name} {help}\n"));
        out.push_str(&format!("# TYPE {name} counter\n"));
        out.push_str(&format!("{name} {value}\n"));
    }
    let rejects = Counter::AdmissionRejects.prom_name();
    out.push_str(&format!(
        "# HELP {rejects} Admission rejects by reason\n# TYPE {rejects} counter\n"
    ));
    for (reason, value) in [
        ("pool", snap.rejects_pool),
        ("capacity", snap.rejects_capacity),
        ("draining", snap.rejects_draining),
    ] {
        out.push_str(&format!("{rejects}{{reason=\"{reason}\"}} {value}\n"));
    }
    let gauges: [(String, f64, &str); 5] = [
        (
            Gauge::ActiveUsers.prom_name(),
            snap.active as f64,
            "Placed slots",
        ),
        (
            Gauge::Unsatisfied.prom_name(),
            snap.unsatisfied as f64,
            "Currently unsatisfied users",
        ),
        (
            "qlb_backlog".to_string(),
            snap.backlog as f64,
            "Request-queue backlog at the last tick",
        ),
        (
            "qlb_rebalancer_budget".to_string(),
            snap.budget as f64,
            "Rebalancer round budget granted at the last tick",
        ),
        (
            "qlb_uptime_seconds".to_string(),
            tel.uptime_ms() as f64 / 1_000.0,
            "Daemon uptime",
        ),
    ];
    for (name, value, help) in gauges {
        out.push_str(&format!("# HELP {name} {help}\n"));
        out.push_str(&format!("# TYPE {name} gauge\n"));
        out.push_str(&format!("{name} {}\n", fmt_f64(value)));
    }
    for (name, h) in tel.latency_hists() {
        if h.count() == 0 {
            continue;
        }
        let pname = format!("qlb_{name}_ns");
        out.push_str(&format!(
            "# HELP {pname} Request latency in nanoseconds\n# TYPE {pname} summary\n"
        ));
        for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            out.push_str(&format!(
                "{pname}{{quantile=\"{label}\"}} {}\n",
                h.quantile(q)
            ));
        }
        out.push_str(&format!("{pname}_sum {}\n", h.sum()));
        out.push_str(&format!("{pname}_count {}\n", h.count()));
    }
    out.push_str(
        "# HELP qlb_slo_violation_ratio Fraction of time the class spent in SLO violation\n# TYPE qlb_slo_violation_ratio gauge\n",
    );
    for cs in &snap.classes {
        out.push_str(&format!(
            "qlb_slo_violation_ratio{{class=\"{}\",window=\"10s\"}} {}\n",
            cs.class,
            fmt_f64(cs.violation_windowed)
        ));
        out.push_str(&format!(
            "qlb_slo_violation_ratio{{class=\"{}\",window=\"total\"}} {}\n",
            cs.class,
            fmt_f64(cs.violation_total)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ServeConfig;
    use qlb_core::ClassId;
    use qlb_obs::NoopSink;

    fn loaded_core() -> ServeCore {
        let mut core = ServeCore::with_capacities(&[2; 16], 64, ServeConfig::new(3)).unwrap();
        let mut sink = NoopSink;
        for _ in 0..24 {
            core.place(ClassId(0), 1, &mut sink).unwrap();
        }
        core
    }

    #[test]
    fn snapshot_reports_windowed_rates_and_violations() {
        let mut core = loaded_core();
        let mut tel = ServeTelemetry::new(core.num_classes(), core.max_tick_rounds());
        let mut sink = NoopSink;
        // colliding placements start unsatisfied → class 0 in violation
        // until ticks spread them out; observe the loaded state before the
        // first rebalance tick so the violation window opens
        assert!(core.unsatisfied() > 0);
        let mut t = 0u64;
        tel.on_tick_at(&core, 0, t);
        for _ in 0..100 {
            core.tick(0, false, &mut sink);
            tel.on_request(true, 5_000);
            t += 50;
            tel.on_tick_at(&core, 0, t);
        }
        assert_eq!(core.unsatisfied(), 0);
        let snap = tel.snapshot(&core);
        assert_eq!(snap.tick, 101);
        assert_eq!(snap.active, 24);
        assert_eq!(snap.budget_max, 8);
        let rounds = snap.rates.iter().find(|r| r.name == "rounds").unwrap();
        assert!(rounds.r60s > 0.0, "rebalancer rounds should have a rate");
        let req = snap.rates.iter().find(|r| r.name == "requests").unwrap();
        assert!(req.r60s > 0.0);
        assert_eq!(snap.classes.len(), 1);
        // it was violating early on, then recovered: fraction in (0, 1)
        let c0 = &snap.classes[0];
        assert!(c0.violation_total > 0.0 && c0.violation_total < 1.0);
        assert_eq!(c0.unsatisfied, 0);
        let lat = snap
            .latency
            .iter()
            .find(|d| d.name == REQUEST_HIST_NAME)
            .unwrap();
        assert_eq!(lat.count, 100);
        assert!(lat.p50_ns >= 5_000 && lat.p50_ns <= 8_192);
    }

    #[test]
    fn starvation_counts_floored_busy_ticks() {
        let core = loaded_core(); // has unsatisfied users, never ticked
        let mut tel = ServeTelemetry::new(core.num_classes(), core.max_tick_rounds());
        assert!(core.unsatisfied() > 0);
        tel.on_tick_at(&core, 1 << 20, 10); // huge backlog → budget floor
        tel.on_tick_at(&core, 0, 20); // empty queue → full budget
        let snap = tel.snapshot(&core);
        assert_eq!(snap.starved_ticks, 1);
        assert_eq!(snap.budget, 8);
    }

    #[test]
    fn cumulative_snapshot_has_totals_but_no_windows() {
        let core = loaded_core();
        let snap = cumulative_snapshot(&core);
        assert_eq!(snap.active, 24);
        assert!(snap.rates.is_empty());
        assert_eq!(snap.classes.len(), 1);
        assert_eq!(snap.classes[0].violation_total, 0.0);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let mut core = loaded_core();
        let mut tel = ServeTelemetry::new(core.num_classes(), core.max_tick_rounds());
        let mut sink = NoopSink;
        core.tick(0, false, &mut sink);
        tel.on_request(true, 4_000);
        tel.on_request(false, 2_000);
        tel.on_tick_at(&core, 0, 100);
        let text = render_prometheus(&tel, &core);
        let mut samples = 0usize;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            // sample line: name[{labels}] value
            let (name_part, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "bad value in: {line}");
            let bare = name_part.split('{').next().unwrap();
            assert!(
                bare.starts_with("qlb_"),
                "metric outside the qlb namespace: {line}"
            );
            samples += 1;
        }
        assert!(samples >= 10, "expected a full exposition, got:\n{text}");
        assert!(text.contains("qlb_placements_total 24\n"));
        assert!(text.contains("qlb_admission_rejects_total{reason=\"capacity\"}"));
        assert!(text.contains("qlb_request_latency_ns{quantile=\"0.5\"}"));
        assert!(text.contains("qlb_slo_violation_ratio{class=\"0\",window=\"total\"}"));
    }
}
