//! The serving core: a live open-system instance with admission control.
//!
//! [`ServeCore`] owns the daemon's world: a parking-augmented
//! [`Instance`], the live [`State`], and the [`ActiveIndex`] that keeps
//! rebalance rounds `O(churn + unsatisfied)`. It is deliberately free of
//! any I/O — the wire protocol ([`crate::proto`]) and the socket daemon
//! ([`crate::daemon`]) drive it, and so do the in-process serve bench and
//! the unit tests, all through the same five verbs:
//!
//! * [`place`](ServeCore::place) — admission decision plus initial
//!   placement (best-of-`probes` sampling among non-draining resources);
//! * [`depart`](ServeCore::depart) — release a placement (all slots of a
//!   weighted group) back to the parking pool;
//! * [`drain`](ServeCore::drain) — retire a resource: stop admitting onto
//!   it and zero its effective capacity so the *protocol kernel itself*
//!   migrates the occupants away over subsequent ticks;
//! * [`tick`](ServeCore::tick) — run a bounded number of
//!   sampling-protocol rounds through the existing executor kernels
//!   (sparse decide, pooled SoA decide above the same threshold the
//!   open-system driver uses), with the budget adapting to request
//!   backlog;
//! * the query accessors — per-resource congestion and per-class
//!   satisfaction.
//!
//! ## Admission rule
//!
//! A class-`k` request of weight `w` is admitted iff
//!
//! 1. the parking pool has `w` free class-`k` slots,
//! 2. at least one resource is not draining, and
//! 3. `L + w ≤ ⌊φ · C_k⌋`, where `L` is the total placed load, `C_k` the
//!    summed effective capacity visible to class `k` over non-draining
//!    resources, and `φ` the configured admission utilization
//!    ([`ServeConfig::admit_frac`]).
//!
//! The guard is global-load against per-class capacity: whatever the mix,
//! class `k` can only be fully satisfied if the *total* load fits under
//! the capacity it can use, so admitting past that bound would let a
//! burst of lenient-class traffic wedge a strict class permanently.
//! Placement may still overshoot a single resource — the admitted user
//! simply starts unsatisfied and the background rebalancer repairs it,
//! which is exactly the paper's dynamic.
//!
//! ## Determinism
//!
//! Placement probing draws from a dedicated driver stream (seeded
//! `mix64(seed, SERVE_SALT)`), and rebalance rounds use the standard
//! counter-based `RoundStream(seed, user, round)` — so a fixed request
//! sequence reproduces the exact trajectory, whatever the socket timing.

use qlb_core::step::{decide_active_into, decide_users_into};
use qlb_core::{
    ActiveIndex, ClassId, ConditionalUniform, Instance, Move, Protocol, ResourceId,
    RestrictTargets, SlackDamped, State, StateDelta, UserId,
};
use qlb_engine::{shard_chunk, shards_for, WorkerPool};
use qlb_obs::{timed, Counter, Event, Gauge, Phase, Sink};
use qlb_rng::{Rng64, SplitMix64};
use qlb_workload::Scenario;
use std::time::Instant;

/// Salt separating the placement-probe driver stream from protocol
/// streams (same pattern as the open-system driver's `OPEN_SALT`).
const SERVE_SALT: u64 = 0x5345_5256; // "SERV"

/// Below this many unsatisfied users a pooled tick decides sequentially —
/// the same crossover the open-system driver uses for its pooled sparse
/// rounds.
const SPARSE_POOL_MIN_ACTIVE: usize = 1024;

/// Group-chain terminator for [`ServeCore::group_next`].
const NO_NEXT: u32 = u32::MAX;

/// Which sampling kernel the background rebalancer runs. Only
/// uniform-sampling, load-aware kernels are offered: the target universe
/// must be restrictable to the real resources (see
/// [`RestrictTargets`]), and a load-oblivious kernel (blind) would keep
/// hopping users onto drained, zero-capacity resources forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeProtocol {
    /// The paper's slack-damped kernel (default): move with probability
    /// `(c − x)/c`.
    #[default]
    SlackDamped,
    /// Conditional uniform: move iff the sample has room.
    Conditional,
}

impl ServeProtocol {
    /// Parse a CLI name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "slack-damped" => Some(Self::SlackDamped),
            "conditional" => Some(Self::Conditional),
            _ => None,
        }
    }

    /// Stable CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            Self::SlackDamped => "slack-damped",
            Self::Conditional => "conditional",
        }
    }

    fn build(self, real_m: usize) -> RestrictTargets<dyn Protocol + Send> {
        let inner: Box<dyn Protocol + Send> = match self {
            Self::SlackDamped => Box::new(SlackDamped::default()),
            Self::Conditional => Box::new(ConditionalUniform),
        };
        RestrictTargets::new(inner, real_m)
    }
}

/// Tunables of a [`ServeCore`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Seed for placement probing and protocol rounds.
    pub seed: u64,
    /// Rebalancing kernel.
    pub protocol: ServeProtocol,
    /// Admission utilization bound `φ` (see the module docs).
    pub admit_frac: f64,
    /// Rebalance rounds per tick when the request queue is empty; the
    /// budget halves for every doubling of the backlog, floor 1.
    pub max_tick_rounds: u32,
    /// Placement candidates sampled per request (best-of-`probes` by
    /// class headroom).
    pub probes: u32,
    /// Worker threads for pooled decide rounds (0 = always sequential).
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            protocol: ServeProtocol::SlackDamped,
            admit_frac: 0.95,
            max_tick_rounds: 8,
            probes: 2,
            threads: 0,
        }
    }
}

impl ServeConfig {
    /// Default config with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Set the rebalancing kernel.
    pub fn with_protocol(mut self, p: ServeProtocol) -> Self {
        self.protocol = p;
        self
    }

    /// Set the admission utilization bound (clamped to `(0, 1]`).
    pub fn with_admit_frac(mut self, f: f64) -> Self {
        self.admit_frac = f.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Set the per-tick round budget ceiling (min 1).
    pub fn with_max_tick_rounds(mut self, r: u32) -> Self {
        self.max_tick_rounds = r.max(1);
        self
    }

    /// Set the placement probe count (min 1).
    pub fn with_probes(mut self, d: u32) -> Self {
        self.probes = d.max(1);
        self
    }

    /// Set the pooled-decide thread count (0 = sequential).
    pub fn with_threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }
}

/// Why a placement was refused. These are *answers*, not errors: the wire
/// protocol reports them as `admitted: false` with this reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// No (enough) free pool slots of the requested class.
    PoolExhausted,
    /// Admitting would push total load past `φ · C_k`.
    Capacity,
    /// Every resource is draining — nowhere to place.
    AllDraining,
}

impl RejectReason {
    /// Stable wire-protocol name.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::PoolExhausted => "pool",
            Self::Capacity => "capacity",
            Self::AllDraining => "draining",
        }
    }

    /// Dense index into per-reason breakdown arrays
    /// ([`ServeCore::reject_reasons`]).
    fn index(self) -> usize {
        match self {
            Self::PoolExhausted => 0,
            Self::Capacity => 1,
            Self::AllDraining => 2,
        }
    }
}

/// Probe evidence captured by [`ServeCore::place_traced`] for a causal
/// span: how many placement candidates were evaluated and the class
/// headroom each showed. Reusable scratch — the daemon keeps one and the
/// headroom vector's allocation is amortized away.
#[derive(Debug, Clone, Default)]
pub struct PlaceTrace {
    /// Candidates evaluated (equals the configured probe count unless the
    /// admission was rejected before probing).
    pub probes: u64,
    /// Per-probe headroom (`cap − load`, signed), in probe order.
    pub headroom: Vec<i64>,
    /// Wall-clock spent in the probe loop (ns).
    pub probe_ns: u64,
}

impl PlaceTrace {
    fn clear(&mut self) {
        self.probes = 0;
        self.headroom.clear();
        self.probe_ns = 0;
    }
}

/// One rebalancer migration captured by [`ServeCore::tick_traced`]: the
/// moved user with its source and destination — the causal-continuation
/// feed for sampled placement spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveRecord {
    /// The moved user (a slot id; group leaders are the span tickets).
    pub user: UserId,
    /// Resource the user was on before the round.
    pub from: ResourceId,
    /// Resource the round moved it to.
    pub to: ResourceId,
}

/// A successful admission: the ticket (`user`) plus the initial placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaceOutcome {
    /// Ticket id; pass back to [`ServeCore::depart`]. For weighted
    /// requests this is the group leader — departing it releases all
    /// `weight` slots.
    pub user: UserId,
    /// The resource the group was placed on.
    pub resource: ResourceId,
    /// Slots occupied (the request weight).
    pub weight: u32,
    /// The resource's load after placement.
    pub load: u32,
    /// Effective capacity of the resource for the request's class.
    pub cap: u32,
    /// Whether the placement is immediately satisfied (`load ≤ cap`); if
    /// not, the background rebalancer will move it.
    pub satisfied: bool,
}

/// A processed departure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepartOutcome {
    /// Slots released back to the pool.
    pub released: u32,
}

/// A started drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainOutcome {
    /// The draining resource.
    pub resource: ResourceId,
    /// Its load at drain start — the occupants the kernel must walk off.
    pub occupants: u32,
}

/// What one scheduler tick did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TickOutcome {
    /// Protocol rounds executed (0 when nothing was unsatisfied and no
    /// heartbeat was requested).
    pub rounds: u32,
    /// Migrations applied across those rounds.
    pub migrations: u64,
    /// Unsatisfied users after the tick.
    pub unsatisfied: u64,
}

/// Per-class satisfaction snapshot (a `query` building block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassStats {
    /// The class.
    pub class: ClassId,
    /// Placed slots of this class.
    pub active: u64,
    /// Currently unsatisfied users of this class.
    pub unsatisfied: u64,
}

/// Per-resource snapshot (a `query` building block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceStats {
    /// The resource.
    pub resource: ResourceId,
    /// Current load.
    pub load: u32,
    /// Effective capacity for class 0 (the single-class capacity view).
    pub cap: u32,
    /// Whether a drain has been requested.
    pub draining: bool,
    /// Whether a requested drain has completed (load reached 0).
    pub drained: bool,
}

/// The daemon's live world — see the module docs.
pub struct ServeCore {
    inst: Instance,
    state: State,
    index: ActiveIndex,
    proto: RestrictTargets<dyn Protocol + Send>,
    cfg: ServeConfig,
    parking: ResourceId,
    real_m: usize,
    /// Free parking slots per class, LIFO.
    free: Vec<Vec<UserId>>,
    /// Weighted-group chain: `group_next[u]` is the next slot of `u`'s
    /// group ([`NO_NEXT`] terminates). Only leaders are valid tickets.
    group_next: Vec<u32>,
    is_leader: Vec<bool>,
    draining: Vec<bool>,
    drained_done: Vec<bool>,
    draining_count: usize,
    /// Per class: Σ effective capacity over non-draining real resources.
    admit_cap: Vec<u64>,
    active_slots: u64,
    class_active: Vec<u64>,
    round: u64,
    place_rng: SplitMix64,
    wpool: Option<WorkerPool>,
    // lifetime statistics (also exported as counters via the sink)
    placements: u64,
    rejects: u64,
    rejects_by_reason: [u64; 3],
    departures: u64,
    drains: u64,
    migrations_total: u64,
    // reusable round scratch
    moves: Vec<Move>,
    scratch: Vec<UserId>,
    changes: Vec<(UserId, ResourceId)>,
    /// Assignment at the last [`ServeCore::export_delta`] (the delta
    /// base), stamped with `export_gen`; starts at the initial state.
    export_base: Vec<u32>,
    export_gen: u64,
}

impl ServeCore {
    /// Single-class core: `caps` real resources, a parking pool of `pool`
    /// unit slots, everything initially parked.
    pub fn with_capacities(caps: &[u32], pool: usize, cfg: ServeConfig) -> Result<Self, String> {
        let base = Instance::with_capacities(0, caps.to_vec())
            .map_err(|e| format!("bad capacities: {e}"))?;
        let inst = base
            .with_parking(&[pool])
            .map_err(|e| format!("cannot augment instance: {e}"))?;
        let parking = ResourceId(caps.len() as u32);
        let state = State::all_on(&inst, parking);
        Ok(Self::from_parts(inst, state, caps.len(), cfg))
    }

    /// Core populated from a [`Scenario`]: the scenario's instance gains a
    /// parking resource plus `extra_slots` spare pool slots (spread over
    /// the classes proportionally to their size), and the scenario's
    /// placement becomes the initially admitted population.
    pub fn from_scenario(
        sc: &Scenario,
        build_seed: u64,
        extra_slots: usize,
        cfg: ServeConfig,
    ) -> Result<Self, String> {
        let (base, start) = sc
            .build(build_seed)
            .map_err(|e| format!("scenario build failed: {e}"))?;
        let n0 = base.num_users();
        let sizes = base.class_sizes();
        // Spread spare slots proportionally; remainder round-robin so the
        // total is exact.
        let mut extra = vec![0usize; sizes.len()];
        if extra_slots > 0 && n0 > 0 {
            let mut assigned = 0usize;
            for (k, &sz) in sizes.iter().enumerate() {
                extra[k] = extra_slots * sz / n0;
                assigned += extra[k];
            }
            let classes = extra.len();
            let mut k = 0usize;
            while assigned < extra_slots {
                extra[k % classes] += 1;
                assigned += 1;
                k += 1;
            }
        } else if n0 == 0 {
            extra[0] = extra_slots;
        }
        let real_m = base.num_resources();
        let inst = base
            .with_parking(&extra)
            .map_err(|e| format!("cannot augment instance: {e}"))?;
        let parking = ResourceId(real_m as u32);
        let mut state = State::all_on(&inst, parking);
        for u in 0..n0 {
            let u = UserId(u as u32);
            state.reassign(u, start.resource_of(u));
        }
        let mut core = Self::from_parts(inst, state, real_m, cfg);
        // The scenario population is grandfathered in as weight-1 tickets.
        for u in 0..n0 {
            let u = UserId(u as u32);
            core.is_leader[u.index()] = true;
            let k = core.inst.class_of(u).index();
            core.free[k].retain(|&s| s != u);
            core.class_active[k] += 1;
            core.active_slots += 1;
        }
        Ok(core)
    }

    fn from_parts(inst: Instance, state: State, real_m: usize, cfg: ServeConfig) -> Self {
        let pool = inst.num_users();
        let parking = ResourceId(real_m as u32);
        let kk = inst.num_classes();
        let mut free: Vec<Vec<UserId>> = vec![Vec::new(); kk];
        for u in inst.users() {
            free[inst.class_of(u).index()].push(u);
        }
        // LIFO from the high end: pop order is descending user id.
        let index = ActiveIndex::new(&inst, &state);
        let admit_cap = (0..kk)
            .map(|k| {
                inst.cap_row(ClassId(k as u32))[..real_m]
                    .iter()
                    .map(|&c| c as u64)
                    .sum()
            })
            .collect();
        let proto = cfg.protocol.build(real_m);
        let wpool = (cfg.threads > 1).then(|| WorkerPool::new(cfg.threads));
        let state_base = state.assignment().iter().map(|r| r.0).collect();
        Self {
            inst,
            state,
            index,
            proto,
            cfg,
            parking,
            real_m,
            free,
            group_next: vec![NO_NEXT; pool],
            is_leader: vec![false; pool],
            draining: vec![false; real_m],
            drained_done: vec![false; real_m],
            draining_count: 0,
            admit_cap,
            active_slots: 0,
            class_active: vec![0; kk],
            round: 0,
            place_rng: SplitMix64::new(qlb_rng::mix64_pair(cfg.seed, SERVE_SALT)),
            wpool,
            placements: 0,
            rejects: 0,
            rejects_by_reason: [0; 3],
            departures: 0,
            drains: 0,
            migrations_total: 0,
            moves: Vec::new(),
            scratch: Vec::new(),
            changes: Vec::new(),
            export_base: state_base,
            export_gen: 0,
        }
    }

    // ------------------------------------------------------------------
    // requests
    // ------------------------------------------------------------------

    /// Admit and place a class-`class` request of weight `weight` (slots
    /// co-placed on one resource). See the module docs for the admission
    /// rule and determinism notes.
    ///
    /// # Panics
    /// Panics if `class` is out of range or `weight` is 0 — the wire
    /// layer validates both.
    pub fn place<S: Sink>(
        &mut self,
        class: ClassId,
        weight: u32,
        sink: &mut S,
    ) -> Result<PlaceOutcome, RejectReason> {
        self.place_inner(class, weight, sink, None)
    }

    /// [`ServeCore::place`] with probe evidence captured into `trace` —
    /// the span-instrumented path. The trajectory is identical to an
    /// untraced call: the trace only records headrooms the probe loop
    /// already computed.
    pub fn place_traced<S: Sink>(
        &mut self,
        class: ClassId,
        weight: u32,
        sink: &mut S,
        trace: &mut PlaceTrace,
    ) -> Result<PlaceOutcome, RejectReason> {
        trace.clear();
        self.place_inner(class, weight, sink, Some(trace))
    }

    fn place_inner<S: Sink>(
        &mut self,
        class: ClassId,
        weight: u32,
        sink: &mut S,
        trace: Option<&mut PlaceTrace>,
    ) -> Result<PlaceOutcome, RejectReason> {
        assert!(
            class.index() < self.inst.num_classes(),
            "class out of range"
        );
        assert!(weight > 0, "weight must be positive");
        let k = class.index();
        let verdict = if self.draining_count == self.real_m {
            Err(RejectReason::AllDraining)
        } else if self.free[k].len() < weight as usize {
            Err(RejectReason::PoolExhausted)
        } else if self.active_slots + weight as u64
            > (self.cfg.admit_frac * self.admit_cap[k] as f64) as u64
        {
            Err(RejectReason::Capacity)
        } else {
            Ok(())
        };
        if let Err(reason) = verdict {
            self.rejects += 1;
            self.rejects_by_reason[reason.index()] += 1;
            if S::ENABLED {
                sink.add(Counter::AdmissionRejects, 1);
            }
            return Err(reason);
        }
        // Best-of-`probes` by class headroom among non-draining resources.
        let target = match trace {
            Some(tr) => {
                let t0 = Instant::now();
                let target = self.probe_target(class, Some(&mut *tr));
                tr.probe_ns = t0.elapsed().as_nanos() as u64;
                target
            }
            None => self.probe_target(class, None),
        };
        let mut leader = UserId(0);
        let mut prev = NO_NEXT;
        self.changes.clear();
        for i in 0..weight {
            let slot = self.free[k].pop().expect("checked free slots");
            if i == 0 {
                leader = slot;
                self.is_leader[slot.index()] = true;
            } else {
                self.group_next[prev as usize] = slot.0;
            }
            prev = slot.0;
            self.group_next[slot.index()] = NO_NEXT;
            self.changes.push((slot, target));
        }
        let exempt = Some(self.parking);
        self.index
            .apply_reassignments(&self.inst, &mut self.state, &self.changes, exempt);
        self.active_slots += weight as u64;
        self.class_active[k] += weight as u64;
        self.placements += 1;
        if S::ENABLED {
            sink.add(Counter::Placements, 1);
        }
        let load = self.state.load(target);
        let cap = self.inst.cap(class, target);
        Ok(PlaceOutcome {
            user: leader,
            resource: target,
            weight,
            load,
            cap,
            satisfied: cap > 0 && load <= cap,
        })
    }

    /// Sample placement candidates and keep the one with the most class
    /// headroom (capacity − load; ties to the first sampled).
    fn probe_target(&mut self, class: ClassId, mut trace: Option<&mut PlaceTrace>) -> ResourceId {
        debug_assert!(self.draining_count < self.real_m);
        let mut best: Option<(ResourceId, i64)> = None;
        let mut probes_left = self.cfg.probes;
        let mut tries = 8 * self.cfg.probes.max(8);
        while probes_left > 0 {
            let r = if tries > 0 {
                tries -= 1;
                let r = ResourceId(self.place_rng.uniform_usize(self.real_m) as u32);
                if self.draining[r.index()] {
                    continue;
                }
                r
            } else {
                // Pathological drain coverage: fall back to the first
                // non-draining resource instead of rejection-sampling on.
                let idx = self
                    .draining
                    .iter()
                    .position(|&d| !d)
                    .expect("checked a non-draining resource exists");
                ResourceId(idx as u32)
            };
            probes_left -= 1;
            let headroom = self.inst.cap(class, r) as i64 - self.state.load(r) as i64;
            if let Some(t) = trace.as_deref_mut() {
                t.probes += 1;
                t.headroom.push(headroom);
            }
            if best.is_none_or(|(_, h)| headroom > h) {
                best = Some((r, headroom));
            }
        }
        best.expect("at least one probe").0
    }

    /// Release the placement `user` (a ticket returned by
    /// [`ServeCore::place`], or an initially-populated scenario user).
    /// All slots of the ticket's group return to the parking pool.
    pub fn depart<S: Sink>(&mut self, user: UserId, sink: &mut S) -> Result<DepartOutcome, String> {
        if user.index() >= self.inst.num_users() {
            return Err(format!("unknown user {}", user.0));
        }
        if !self.is_leader[user.index()] {
            return Err(format!("user {} is not an active placement", user.0));
        }
        self.changes.clear();
        let mut slot = user.0;
        let mut released = 0u32;
        while slot != NO_NEXT {
            let u = UserId(slot);
            let next = self.group_next[u.index()];
            self.group_next[u.index()] = NO_NEXT;
            self.changes.push((u, self.parking));
            self.free[self.inst.class_of(u).index()].push(u);
            slot = next;
            released += 1;
        }
        self.is_leader[user.index()] = false;
        let exempt = Some(self.parking);
        self.index
            .apply_reassignments(&self.inst, &mut self.state, &self.changes, exempt);
        let k = self.inst.class_of(user).index();
        self.active_slots -= released as u64;
        self.class_active[k] -= released as u64;
        self.departures += 1;
        if S::ENABLED {
            sink.add(Counter::ServeDeparts, released as u64);
        }
        Ok(DepartOutcome { released })
    }

    /// Start draining resource `r`: admission stops immediately, the
    /// resource's effective capacity is zeroed for every class, and its
    /// occupants — now unsatisfied — are walked off by the ordinary
    /// sampling kernel over subsequent ticks. Completion is observable via
    /// [`ServeCore::resource_stats`] (`drained`) once the load hits 0.
    pub fn drain<S: Sink>(&mut self, r: ResourceId, sink: &mut S) -> Result<DrainOutcome, String> {
        if r.index() >= self.real_m {
            return Err(format!("resource {} out of range", r.0));
        }
        if self.draining[r.index()] {
            return Err(format!("resource {} is already draining", r.0));
        }
        self.draining[r.index()] = true;
        self.draining_count += 1;
        for k in 0..self.inst.num_classes() {
            self.admit_cap[k] -= self.inst.cap(ClassId(k as u32), r) as u64;
        }
        // Zero the capacity and rebuild the unsatisfied index against the
        // drained instance — O(pool + m), once per drain request.
        self.inst = self.inst.with_resource_drained(r);
        self.index = ActiveIndex::new(&self.inst, &self.state);
        let occupants = self.state.load(r);
        self.drained_done[r.index()] = occupants == 0;
        self.drains += 1;
        if S::ENABLED {
            sink.add(Counter::Drains, 1);
            // A drain is a churn episode: `displaced` users must re-place.
            sink.event(Event::ChurnEpisode {
                episode: self.drains - 1,
                displaced: occupants as u64,
            });
        }
        Ok(DrainOutcome {
            resource: r,
            occupants,
        })
    }

    // ------------------------------------------------------------------
    // the scheduler tick
    // ------------------------------------------------------------------

    /// The adaptive round budget: full `max_tick_rounds` on an empty
    /// queue, halved for every doubling of the backlog, floor 1 — the
    /// rebalancer is throttled under load but never starved.
    pub fn tick_budget(&self, pending: usize) -> u32 {
        let max = self.cfg.max_tick_rounds.max(1);
        if pending == 0 {
            return max;
        }
        let halvings = usize::BITS - pending.leading_zeros();
        (max >> halvings.min(31)).max(1)
    }

    /// Run one scheduler tick: up to [`ServeCore::tick_budget`]`(pending)`
    /// protocol rounds, stopping early once nothing is unsatisfied. When
    /// the core is fully satisfied and no rounds run, `heartbeat` emits
    /// one empty round to the sink so a tailing dashboard still sees
    /// progress (and the streaming sink's round-aligned flush fires).
    pub fn tick<S: Sink>(&mut self, pending: usize, heartbeat: bool, sink: &mut S) -> TickOutcome {
        self.tick_inner(pending, heartbeat, sink, None)
    }

    /// [`ServeCore::tick`] with every applied migration captured into
    /// `moves_out` (appended; the caller clears) — the causal-continuation
    /// feed: the daemon matches the moved users against its sampled
    /// tickets and stamps `migrate` spans. Trajectory-identical to an
    /// untraced tick: sources are read from the state the round already
    /// produced, before the moves are applied.
    pub fn tick_traced<S: Sink>(
        &mut self,
        pending: usize,
        heartbeat: bool,
        sink: &mut S,
        moves_out: &mut Vec<MoveRecord>,
    ) -> TickOutcome {
        self.tick_inner(pending, heartbeat, sink, Some(moves_out))
    }

    fn tick_inner<S: Sink>(
        &mut self,
        pending: usize,
        heartbeat: bool,
        sink: &mut S,
        mut moves_out: Option<&mut Vec<MoveRecord>>,
    ) -> TickOutcome {
        let mut out = TickOutcome::default();
        let budget = self.tick_budget(pending);
        for _ in 0..budget {
            if self.index.is_empty() {
                break;
            }
            out.migrations += self.run_round(sink, moves_out.as_deref_mut());
            out.rounds += 1;
        }
        if out.rounds == 0 && heartbeat {
            let round = self.round;
            self.round += 1;
            if S::ENABLED {
                sink.add(Counter::Rounds, 1);
                sink.event(Event::RoundStart { round, active: 0 });
                sink.event(Event::RoundEnd {
                    round,
                    migrations: 0,
                    unsatisfied: 0,
                    overload: None,
                });
            }
            out.rounds = 1;
        }
        out.unsatisfied = self.index.num_active() as u64;
        if S::ENABLED {
            sink.set(Gauge::ActiveUsers, self.active_slots);
            sink.set(Gauge::Unsatisfied, out.unsatisfied);
            sink.set(Gauge::ActiveSetSize, out.unsatisfied);
        }
        self.check_drains();
        out
    }

    /// One protocol round over the unsatisfied set — sequential sparse
    /// decide below [`SPARSE_POOL_MIN_ACTIVE`], pooled SoA decide above
    /// it, identical to the open-system driver's executor selection.
    fn run_round<S: Sink>(&mut self, sink: &mut S, moves_out: Option<&mut Vec<MoveRecord>>) -> u64 {
        let round = self.round;
        self.round += 1;
        if S::ENABLED {
            sink.event(Event::RoundStart {
                round,
                active: self.index.num_active() as u64,
            });
        }
        let seed = self.cfg.seed;
        let t0 = S::ENABLED.then(Instant::now);
        match self.wpool.as_ref() {
            Some(wpool) if self.index.num_active() >= SPARSE_POOL_MIN_ACTIVE => {
                self.index.sorted_active_into(&mut self.scratch);
                let len = self.scratch.len();
                let chunk = shard_chunk(len, wpool.threads());
                let (inst, state, proto) = (&self.inst, &self.state, &self.proto);
                let scratch_ref = &self.scratch;
                wpool.decide_round_observed_on(
                    |shard, out| {
                        let lo = (shard * chunk).min(len);
                        let hi = ((shard + 1) * chunk).min(len);
                        if lo < hi {
                            decide_users_into(
                                inst,
                                state,
                                &scratch_ref[lo..hi],
                                proto,
                                seed,
                                round,
                                out,
                            );
                        }
                    },
                    &mut self.moves,
                    sink,
                    true,
                    shards_for(len, wpool.threads()),
                );
            }
            _ => {
                decide_active_into(
                    &self.inst,
                    &self.state,
                    &self.index,
                    &self.proto,
                    seed,
                    round,
                    &mut self.moves,
                    &mut self.scratch,
                );
                if let Some(t0) = t0 {
                    sink.time(Phase::Decide, t0.elapsed().as_nanos() as u64);
                }
            }
        }
        let migrations = self.moves.len() as u64;
        self.migrations_total += migrations;
        // Capture sources before the apply rewrites the assignment.
        if let Some(out) = moves_out {
            out.extend(self.moves.iter().map(|mv| MoveRecord {
                user: mv.user,
                from: self.state.resource_of(mv.user),
                to: mv.to,
            }));
        }
        self.changes.clear();
        self.changes
            .extend(self.moves.iter().map(|mv| (mv.user, mv.to)));
        let (inst, state, index) = (&self.inst, &mut self.state, &mut self.index);
        let (changes, parking) = (&self.changes, self.parking);
        timed(sink, Phase::Apply, || {
            index.apply_reassignments(inst, state, changes, Some(parking))
        });
        if S::ENABLED {
            sink.add(Counter::Rounds, 1);
            sink.add(Counter::SparseRounds, 1);
            sink.add(Counter::Migrations, migrations);
            sink.event(Event::RoundEnd {
                round,
                migrations,
                unsatisfied: self.index.num_active() as u64,
                overload: None,
            });
        }
        migrations
    }

    fn check_drains(&mut self) {
        if self.draining_count == 0 {
            return;
        }
        for r in 0..self.real_m {
            if self.draining[r]
                && !self.drained_done[r]
                && self.state.load(ResourceId(r as u32)) == 0
            {
                self.drained_done[r] = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // query accessors
    // ------------------------------------------------------------------

    /// Placed slots (total weight currently admitted).
    pub fn active_slots(&self) -> u64 {
        self.active_slots
    }

    /// Free parking slots over all classes.
    pub fn free_slots(&self) -> u64 {
        self.free.iter().map(|f| f.len() as u64).sum()
    }

    /// Currently unsatisfied users.
    pub fn unsatisfied(&self) -> u64 {
        self.index.num_active() as u64
    }

    /// Protocol rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Lifetime `(placements, rejects, departures, drains)`.
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        (self.placements, self.rejects, self.departures, self.drains)
    }

    /// Lifetime admission rejects broken down by reason:
    /// `(pool, capacity, draining)` — see [`RejectReason::as_str`] for the
    /// wire names.
    pub fn reject_reasons(&self) -> (u64, u64, u64) {
        let [pool, capacity, draining] = self.rejects_by_reason;
        (pool, capacity, draining)
    }

    /// Lifetime migrations applied by the background rebalancer.
    pub fn migrations_total(&self) -> u64 {
        self.migrations_total
    }

    /// The configured per-tick round-budget ceiling
    /// ([`ServeConfig::max_tick_rounds`]) — the denominator of a budget
    /// utilization readout.
    pub fn max_tick_rounds(&self) -> u32 {
        self.cfg.max_tick_rounds.max(1)
    }

    /// Number of real (non-parking) resources.
    pub fn num_resources(&self) -> usize {
        self.real_m
    }

    /// Number of QoS classes.
    pub fn num_classes(&self) -> usize {
        self.inst.num_classes()
    }

    /// Per-class unsatisfied counts into a caller-owned buffer
    /// (`O(unsatisfied)`, allocation-free once the buffer is warm):
    /// `out[k]` becomes the number of unsatisfied active users in class
    /// `k`. The per-tick shape of [`ServeCore::class_stats`] for the
    /// telemetry path.
    pub fn class_unsatisfied_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.inst.num_classes(), 0);
        for &u in self.index.active() {
            out[self.inst.class_of(u).index()] += 1;
        }
    }

    /// Per-class active/unsatisfied breakdown (`O(unsatisfied)`).
    pub fn class_stats(&self) -> Vec<ClassStats> {
        let mut unsat = Vec::new();
        self.class_unsatisfied_into(&mut unsat);
        (0..self.inst.num_classes())
            .map(|k| ClassStats {
                class: ClassId(k as u32),
                active: self.class_active[k],
                unsatisfied: unsat[k],
            })
            .collect()
    }

    /// Snapshot of one real resource.
    ///
    /// # Panics
    /// Panics if `r` is the parking resource or out of range — the wire
    /// layer validates.
    pub fn resource_stats(&self, r: ResourceId) -> ResourceStats {
        assert!(r.index() < self.real_m, "resource out of range");
        ResourceStats {
            resource: r,
            load: self.state.load(r),
            cap: self.inst.capacity(r),
            draining: self.draining[r.index()],
            drained: self.drained_done[r.index()],
        }
    }

    /// Ids of resources currently draining.
    pub fn draining_resources(&self) -> Vec<u32> {
        (0..self.real_m as u32)
            .filter(|&r| self.draining[r as usize])
            .collect()
    }

    /// The `k` hottest real resources by load (for `query` and top-k
    /// trace samples).
    pub fn top_loads(&self, k: usize) -> Vec<qlb_obs::TopKEntry> {
        qlb_obs::top_k_entries(&self.state.loads()[..self.real_m], k)
    }

    /// Direct state access for tests and the bench.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Export the placement changes since the previous export as a
    /// [`StateDelta`] and advance the export base to the current
    /// assignment. The first call encodes against the initial state;
    /// applying the returned deltas in order to that initial assignment
    /// reproduces [`ServeCore::state`] exactly, so a supervisor can keep
    /// a live replica paying only for the users that actually moved.
    pub fn export_delta(&mut self) -> StateDelta {
        let current: Vec<u32> = self.state.assignment().iter().map(|r| r.0).collect();
        let d = StateDelta::encode(
            &self.export_base,
            &current,
            self.export_gen,
            self.export_gen + 1,
        );
        self.export_base = current;
        self.export_gen += 1;
        d
    }

    /// Generation stamp of the current export base (number of
    /// [`ServeCore::export_delta`] calls so far).
    pub fn export_generation(&self) -> u64 {
        self.export_gen
    }

    /// The (parking-augmented, possibly drained) instance.
    pub fn instance(&self) -> &Instance {
        &self.inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlb_obs::{NoopSink, Recorder};

    fn small() -> ServeCore {
        ServeCore::with_capacities(&[4; 8], 64, ServeConfig::new(7)).unwrap()
    }

    #[test]
    fn place_depart_roundtrip() {
        let mut c = small();
        let mut sink = NoopSink;
        let p = c.place(ClassId(0), 1, &mut sink).unwrap();
        assert!(p.satisfied);
        assert_eq!(c.active_slots(), 1);
        assert_eq!(c.free_slots(), 63);
        let d = c.depart(p.user, &mut sink).unwrap();
        assert_eq!(d.released, 1);
        assert_eq!(c.active_slots(), 0);
        assert_eq!(c.free_slots(), 64);
        // double-depart is rejected
        assert!(c.depart(p.user, &mut sink).is_err());
    }

    #[test]
    fn weighted_groups_release_all_slots() {
        let mut c = small();
        let mut sink = NoopSink;
        let p = c.place(ClassId(0), 3, &mut sink).unwrap();
        assert_eq!(p.weight, 3);
        assert_eq!(c.active_slots(), 3);
        assert_eq!(c.state().load(p.resource), 3);
        let d = c.depart(p.user, &mut sink).unwrap();
        assert_eq!(d.released, 3);
        assert_eq!(c.active_slots(), 0);
        assert_eq!(c.free_slots(), 64);
    }

    #[test]
    fn admission_rejects_past_capacity_bound() {
        // 8 × 4 = 32 capacity, φ = 0.95 → admit up to 30 slots
        let mut c = small();
        let mut sink = NoopSink;
        let mut admitted = 0;
        let mut rejected = 0;
        for _ in 0..64 {
            match c.place(ClassId(0), 1, &mut sink) {
                Ok(_) => admitted += 1,
                Err(RejectReason::Capacity) => rejected += 1,
                Err(other) => panic!("unexpected reject {other:?}"),
            }
        }
        assert_eq!(admitted, 30);
        assert_eq!(rejected, 34);
        assert_eq!(c.totals().1, 34);
    }

    #[test]
    fn pool_exhaustion_rejects() {
        let mut c = ServeCore::with_capacities(&[100; 4], 3, ServeConfig::new(7)).unwrap();
        let mut sink = NoopSink;
        for _ in 0..3 {
            c.place(ClassId(0), 1, &mut sink).unwrap();
        }
        assert_eq!(
            c.place(ClassId(0), 1, &mut sink).unwrap_err(),
            RejectReason::PoolExhausted
        );
    }

    #[test]
    fn tick_rebalances_overloaded_placements() {
        // Tiny capacity forces early placements to collide; ticks must
        // spread them to a fully satisfied state.
        let mut c = ServeCore::with_capacities(&[2; 16], 64, ServeConfig::new(3)).unwrap();
        let mut sink = NoopSink;
        for _ in 0..24 {
            c.place(ClassId(0), 1, &mut sink).unwrap();
        }
        let mut ticks = 0;
        while c.unsatisfied() > 0 && ticks < 200 {
            c.tick(0, false, &mut sink);
            ticks += 1;
        }
        assert_eq!(c.unsatisfied(), 0, "did not settle in {ticks} ticks");
        assert_eq!(c.active_slots(), 24);
    }

    #[test]
    fn drain_migrates_everyone_off_via_the_kernel() {
        let mut c = ServeCore::with_capacities(&[4; 8], 64, ServeConfig::new(11)).unwrap();
        let mut sink = NoopSink;
        let mut placed = Vec::new();
        for _ in 0..20 {
            placed.push(c.place(ClassId(0), 1, &mut sink).unwrap());
        }
        // settle first
        for _ in 0..100 {
            c.tick(0, false, &mut sink);
        }
        assert_eq!(c.unsatisfied(), 0);
        let victim = placed[0].resource;
        let before = c.state().load(victim);
        assert!(before > 0, "victim resource should be occupied");
        let d = c.drain(victim, &mut sink).unwrap();
        assert_eq!(d.occupants, before);
        let mut ticks = 0;
        while !c.resource_stats(victim).drained && ticks < 500 {
            c.tick(0, false, &mut sink);
            ticks += 1;
        }
        let rs = c.resource_stats(victim);
        assert!(rs.drained, "drain did not complete in {ticks} ticks");
        assert_eq!(rs.load, 0);
        // nobody was lost and everyone else is satisfied again
        assert_eq!(c.active_slots(), 20);
        assert_eq!(c.unsatisfied(), 0);
        // admission now excludes the drained resource's capacity:
        // 7 × 4 × 0.95 = 26.6 → 26 total slots
        let mut total = 20;
        while c.place(ClassId(0), 1, &mut sink).is_ok() {
            total += 1;
        }
        assert_eq!(total, 26);
        // double-drain is rejected
        assert!(c.drain(victim, &mut sink).is_err());
    }

    #[test]
    fn deterministic_for_a_fixed_request_sequence() {
        let run = || {
            let mut c = ServeCore::with_capacities(&[3; 12], 48, ServeConfig::new(99)).unwrap();
            let mut sink = NoopSink;
            let mut fp = Vec::new();
            for i in 0..30 {
                let _ = c.place(ClassId(0), 1 + (i % 2), &mut sink);
                if i % 5 == 0 {
                    c.tick(i as usize, false, &mut sink);
                }
            }
            for _ in 0..50 {
                c.tick(0, false, &mut sink);
            }
            fp.push(c.state().load_fingerprint());
            fp.push(c.unsatisfied());
            fp
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn traced_place_matches_untraced_trajectory_and_records_probes() {
        let run = |traced: bool| {
            let mut c = ServeCore::with_capacities(&[3; 12], 48, ServeConfig::new(99)).unwrap();
            let mut sink = NoopSink;
            let mut trace = PlaceTrace::default();
            for i in 0..30 {
                if traced {
                    let _ = c.place_traced(ClassId(0), 1 + (i % 2), &mut sink, &mut trace);
                } else {
                    let _ = c.place(ClassId(0), 1 + (i % 2), &mut sink);
                }
                if i % 5 == 0 {
                    c.tick(i as usize, false, &mut sink);
                }
            }
            for _ in 0..50 {
                c.tick(0, false, &mut sink);
            }
            (c.state().load_fingerprint(), c.unsatisfied())
        };
        assert_eq!(run(false), run(true));

        // and the trace carries the probe evidence
        let mut c = small();
        let mut sink = NoopSink;
        let mut trace = PlaceTrace::default();
        let p = c
            .place_traced(ClassId(0), 1, &mut sink, &mut trace)
            .unwrap();
        assert_eq!(trace.probes, 2);
        assert_eq!(trace.headroom.len(), 2);
        // the chosen target's headroom is the max of the probed ones
        let best = trace.headroom.iter().copied().max().unwrap();
        assert_eq!(4 - p.load as i64, best - 1);
    }

    #[test]
    fn tick_traced_captures_migration_sources() {
        let mut c = ServeCore::with_capacities(&[2; 16], 64, ServeConfig::new(3)).unwrap();
        let mut sink = NoopSink;
        for _ in 0..24 {
            c.place(ClassId(0), 1, &mut sink).unwrap();
        }
        let mut moves = Vec::new();
        let mut total = 0u64;
        for _ in 0..200 {
            if c.unsatisfied() == 0 {
                break;
            }
            let out = c.tick_traced(0, false, &mut sink, &mut moves);
            total += out.migrations;
        }
        assert_eq!(c.unsatisfied(), 0);
        assert_eq!(moves.len() as u64, total);
        assert!(total > 0, "collisions should have forced migrations");
        for m in &moves {
            assert_ne!(m.from, m.to, "a captured move must change resources");
        }
        // the last captured move of any user agrees with the final state
        // unless a later un-captured round moved it — there is none here,
        // so replaying the moves over nothing still lands every mover on
        // its final resource
        let mut last: std::collections::BTreeMap<u32, ResourceId> = Default::default();
        for m in &moves {
            last.insert(m.user.0, m.to);
        }
        for (&u, &r) in &last {
            assert_eq!(c.state().resource_of(UserId(u)), r);
        }
    }

    #[test]
    fn budget_halves_with_backlog_and_never_starves() {
        let c = small();
        assert_eq!(c.tick_budget(0), 8);
        assert_eq!(c.tick_budget(1), 4);
        assert_eq!(c.tick_budget(2), 2);
        assert_eq!(c.tick_budget(4), 1);
        assert_eq!(c.tick_budget(1 << 20), 1);
        assert_eq!(c.tick_budget(usize::MAX), 1);
    }

    #[test]
    fn heartbeat_emits_an_empty_round() {
        let mut c = small();
        let mut rec = Recorder::default();
        let out = c.tick(0, true, &mut rec);
        assert_eq!(out.rounds, 1);
        assert_eq!(rec.counter(Counter::Rounds), 1);
        let quiet = c.tick(0, false, &mut rec);
        assert_eq!(quiet.rounds, 0);
        assert_eq!(rec.counter(Counter::Rounds), 1);
    }

    #[test]
    fn counters_flow_to_the_sink() {
        let mut c = ServeCore::with_capacities(&[2; 4], 16, ServeConfig::new(5)).unwrap();
        let mut rec = Recorder::default();
        let p = c.place(ClassId(0), 1, &mut rec).unwrap();
        c.depart(p.user, &mut rec).unwrap();
        // fill to the admission bound, then one reject
        while c.place(ClassId(0), 1, &mut rec).is_ok() {}
        c.drain(ResourceId(0), &mut rec).unwrap();
        assert!(rec.counter(Counter::Placements) >= 2);
        assert!(rec.counter(Counter::AdmissionRejects) >= 1);
        // serve-side departures are their own counter, distinct from the
        // open-system churn counter
        assert_eq!(rec.counter(Counter::ServeDeparts), 1);
        assert_eq!(rec.counter(Counter::Departures), 0);
        assert_eq!(rec.counter(Counter::Drains), 1);
        let (pool, capacity, draining) = c.reject_reasons();
        assert_eq!(pool + capacity + draining, c.totals().1);
        assert!(capacity >= 1);
        assert_eq!(draining, 0);
    }

    #[test]
    fn scenario_population_is_grandfathered() {
        let sc = Scenario::single_class(
            "serve-test",
            96,
            16,
            qlb_workload::CapacityDist::Constant { cap: 8 },
            1.25,
            qlb_workload::Placement::RoundRobin,
        );
        let mut c = ServeCore::from_scenario(&sc, 1, 32, ServeConfig::new(4)).unwrap();
        assert_eq!(c.active_slots(), 96);
        assert_eq!(c.free_slots(), 32);
        let mut sink = NoopSink;
        // scenario users are valid depart tickets
        let d = c.depart(UserId(0), &mut sink).unwrap();
        assert_eq!(d.released, 1);
        assert_eq!(c.active_slots(), 95);
        // and new arrivals use the spare slots
        let p = c.place(ClassId(0), 1, &mut sink).unwrap();
        assert!(p.user.index() < 128);
    }

    #[test]
    fn export_delta_chain_tracks_live_state() {
        let mut c = small();
        let mut sink = NoopSink;
        // Replica starts at the initial (all-parked) assignment.
        let mut replica: Vec<u32> = c.state().assignment().iter().map(|r| r.0).collect();
        for step in 0..3 {
            for _ in 0..5 {
                c.place(ClassId(0), 1, &mut sink).unwrap();
            }
            c.tick(0, true, &mut sink);
            if step == 1 {
                c.depart(UserId(c.state().num_users() as u32 - 1), &mut sink)
                    .unwrap();
            }
            let d = c.export_delta();
            assert_eq!(d.base_gen(), step);
            assert_eq!(d.gen(), step + 1);
            d.apply(&mut replica, step).unwrap();
            let live: Vec<u32> = c.state().assignment().iter().map(|r| r.0).collect();
            assert_eq!(replica, live, "replica diverged at export {step}");
        }
        // A quiet period exports an empty (but well-formed) delta.
        let d = c.export_delta();
        assert_eq!(d.changed(), 0);
        assert_eq!(c.export_generation(), 4);
    }
}
