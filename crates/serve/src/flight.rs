//! Anomaly-triggered flight recorder: a bounded in-memory ring of recent
//! causal spans and per-tick context that dumps to a timestamped JSONL
//! "black box" file the moment an anomaly trigger fires.
//!
//! The recorder rides the same span machinery as the trace sink but is
//! **sink-independent**: a daemon running with a
//! [`qlb_obs::NoopSink`] still keeps the ring warm and still dumps, so
//! the black box is available exactly when tracing was *not* on — the
//! production incident you did not predict. Four triggers are armed, all
//! computed from quantities the telemetry plane already maintains:
//!
//! 1. **starved tick** — the adaptive rebalancer budget was pinned at its
//!    floor while a backlog and unsatisfied users remained
//!    ([`ServeTelemetry`] starvation accounting moved);
//! 2. **SLO burn** — some class's windowed time-in-violation fraction
//!    reached [`FlightOptions::slo_violation`];
//! 3. **reject spike** — admission rejects over the trigger window
//!    reached [`FlightOptions::reject_spike`];
//! 4. **request p99 over bound** — the windowed request p99 exceeded
//!    [`FlightOptions::p99_bound_ns`] (disabled when 0).
//!
//! A dump is one [`Record::BlackBox`] header line naming the trigger,
//! followed by the ring contents oldest-first ([`Record::Span`] and
//! [`Record::TickMark`] lines), closed by a [`Record::RingInfo`] trailer
//! — so `qlb_obs::replay::Summary::from_jsonl` and `qlb-trace blackbox`
//! read a black box like any other trace. After a dump the ring is
//! cleared (consecutive dumps carry disjoint evidence) and the trigger
//! enters a cooldown of [`FlightOptions::cooldown_ticks`] so a sustained
//! anomaly produces a bounded series of files, capped at
//! [`FlightOptions::max_dumps`] per run.

use crate::core::ServeCore;
use crate::telemetry::ServeTelemetry;
use qlb_obs::profile::REQUEST_HIST_NAME;
use qlb_obs::recorder::Record;
use qlb_obs::{Counter, SpanRecord};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::PathBuf;

/// Window over which the burn-rate / spike / p99 triggers are evaluated
/// (matches the telemetry plane's 10 s digest window).
pub const TRIGGER_WINDOW_MS: u64 = 10_000;

/// Flight-recorder tunables. `new` gives the defaults the `qlb-serve`
/// `--flight-recorder DIR` flag uses; tests tighten them.
#[derive(Debug, Clone)]
pub struct FlightOptions {
    /// Directory black-box files are written into (created on demand).
    pub dir: PathBuf,
    /// Records retained in the ring (spans + tick marks).
    pub ring_cap: usize,
    /// Scheduler ticks a fired trigger suppresses further dumps for.
    pub cooldown_ticks: u64,
    /// Hard cap on dumps per daemon run.
    pub max_dumps: usize,
    /// SLO-burn trigger: windowed time-in-violation fraction at or above
    /// this fires (1.0 = a class violating for the whole window).
    pub slo_violation: f64,
    /// Reject-spike trigger: admission rejects within the trigger window
    /// at or above this fire (0 disables).
    pub reject_spike: u64,
    /// Latency trigger: windowed request p99 above this many ns fires
    /// (0 disables).
    pub p99_bound_ns: u64,
}

impl FlightOptions {
    /// Defaults for a directory: 4096-record ring, 256-tick cooldown, at
    /// most 8 dumps, SLO burn at 0.5, reject spike at 64 per window, p99
    /// trigger disabled.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            ring_cap: 4096,
            cooldown_ticks: 256,
            max_dumps: 8,
            slo_violation: 0.5,
            reject_spike: 64,
            p99_bound_ns: 0,
        }
    }
}

/// The in-memory flight ring plus trigger state. Owned by the serve loop
/// next to the telemetry plane; see the module docs for the life-cycle.
#[derive(Debug)]
pub struct FlightRecorder {
    opts: FlightOptions,
    ring: VecDeque<Record>,
    dropped: u64,
    last_starved: u64,
    cooldown_until: u64,
    dumps: Vec<PathBuf>,
}

impl FlightRecorder {
    /// A recorder with an empty ring and all triggers armed.
    pub fn new(opts: FlightOptions) -> Self {
        Self {
            ring: VecDeque::with_capacity(opts.ring_cap.min(1024)),
            opts,
            dropped: 0,
            last_starved: 0,
            cooldown_until: 0,
            dumps: Vec::new(),
        }
    }

    fn push(&mut self, r: Record) {
        if self.ring.len() >= self.opts.ring_cap.max(1) {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(r);
    }

    /// Retain one causal span in the ring.
    pub fn record_span(&mut self, span: &SpanRecord) {
        self.push(Record::Span { span: span.clone() });
    }

    /// Retain one scheduler tick's context in the ring.
    pub fn record_tick(&mut self, tick: u64, backlog: u64, budget: u64, core: &ServeCore) {
        self.push(Record::TickMark {
            tick,
            backlog,
            budget,
            active: core.active_slots(),
            unsatisfied: core.unsatisfied(),
        });
    }

    /// Black-box files written so far, in dump order.
    pub fn dumps(&self) -> &[PathBuf] {
        &self.dumps
    }

    /// Which trigger, if any, fires against the current telemetry state.
    /// Starvation accounting is differenced even while cooling down so a
    /// starved tick during cooldown does not fire later.
    fn trigger(&mut self, tel: &ServeTelemetry, core: &ServeCore) -> Option<&'static str> {
        let starved = tel.starved_ticks();
        let starved_fired = starved > self.last_starved;
        self.last_starved = starved;
        if starved_fired {
            return Some("starved-tick");
        }
        let agg = tel.aggregator();
        for k in 0..core.num_classes() {
            if agg.violation_fraction(k, TRIGGER_WINDOW_MS) >= self.opts.slo_violation {
                return Some("slo-burn");
            }
        }
        if self.opts.reject_spike > 0
            && agg.window_delta(Counter::AdmissionRejects, TRIGGER_WINDOW_MS)
                >= self.opts.reject_spike
        {
            return Some("reject-spike");
        }
        if self.opts.p99_bound_ns > 0
            && agg
                .window_hist(REQUEST_HIST_NAME, TRIGGER_WINDOW_MS)
                .quantile(0.99)
                > self.opts.p99_bound_ns
        {
            return Some("p99-over-bound");
        }
        None
    }

    /// Evaluate the triggers at scheduler tick `tick`; on a fire (outside
    /// cooldown, under the dump cap) write a black box and return the
    /// trigger name with the file path.
    pub fn check(
        &mut self,
        tel: &ServeTelemetry,
        core: &ServeCore,
        tick: u64,
    ) -> io::Result<Option<(&'static str, PathBuf)>> {
        let Some(trigger) = self.trigger(tel, core) else {
            return Ok(None);
        };
        if tick < self.cooldown_until || self.dumps.len() >= self.opts.max_dumps {
            return Ok(None);
        }
        let path = self.dump(trigger, tick, tel.uptime_ms())?;
        self.cooldown_until = tick.saturating_add(self.opts.cooldown_ticks);
        Ok(Some((trigger, path)))
    }

    /// Write the ring as a black-box file and clear it. The file name
    /// carries the wall-clock timestamp and the tick for uniqueness.
    fn dump(&mut self, trigger: &str, tick: u64, uptime_ms: u64) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.opts.dir)?;
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let path = self.opts.dir.join(format!(
            "blackbox-{stamp}-t{tick}-{}.jsonl",
            self.dumps.len()
        ));
        let spans = self
            .ring
            .iter()
            .filter(|r| matches!(r, Record::Span { .. }))
            .count() as u64;
        let mut out = String::new();
        let line = |r: &Record, out: &mut String| {
            out.push_str(&serde_json::to_string(r).expect("record serializes"));
            out.push('\n');
        };
        line(
            &Record::BlackBox {
                trigger: trigger.to_string(),
                tick,
                uptime_ms,
                spans,
                dropped: self.dropped,
            },
            &mut out,
        );
        for r in &self.ring {
            line(r, &mut out);
        }
        line(
            &Record::RingInfo {
                recorded: self.ring.len() as u64,
                dropped: self.dropped,
            },
            &mut out,
        );
        let mut f = std::fs::File::create(&path)?;
        f.write_all(out.as_bytes())?;
        f.flush()?;
        self.ring.clear();
        self.dropped = 0;
        self.dumps.push(path.clone());
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ServeConfig;
    use qlb_core::ClassId;
    use qlb_obs::replay::Summary;
    use qlb_obs::span::SPAN_OP_PLACE;
    use qlb_obs::NoopSink;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("qlb-flight-{tag}-{}", std::process::id()));
        p
    }

    fn span(id: u64) -> SpanRecord {
        SpanRecord {
            id,
            op: SPAN_OP_PLACE.to_string(),
            ticket: Some(id),
            class: Some(0),
            verdict: "admitted".to_string(),
            probes: 2,
            headroom: vec![3, 1],
            resource: Some(1),
            from: None,
            parse_ns: 100,
            admit_ns: 200,
            probe_ns: 50,
            reply_ns: 30,
            total_ns: 400,
        }
    }

    fn starved_setup() -> (ServeCore, ServeTelemetry) {
        let mut core = ServeCore::with_capacities(&[2; 16], 64, ServeConfig::new(3)).unwrap();
        let mut sink = NoopSink;
        for _ in 0..24 {
            core.place(ClassId(0), 1, &mut sink).unwrap();
        }
        let tel = ServeTelemetry::new(core.num_classes(), core.max_tick_rounds());
        assert!(core.unsatisfied() > 0);
        (core, tel)
    }

    #[test]
    fn starved_tick_triggers_a_readable_dump() {
        let dir = temp_dir("starve");
        let (core, mut tel) = starved_setup();
        let mut fr = FlightRecorder::new(FlightOptions::new(&dir));
        fr.record_span(&span(0));
        fr.record_tick(0, 0, 8, &core);
        assert!(fr.check(&tel, &core, 0).unwrap().is_none(), "calm start");
        tel.on_tick_at(&core, 1 << 20, 10); // budget floored while starving
        let (trigger, path) = fr.check(&tel, &core, 1).unwrap().expect("fires");
        assert_eq!(trigger, "starved-tick");
        let text = std::fs::read_to_string(&path).unwrap();
        let s = Summary::from_jsonl(&text).unwrap();
        let (bb_trigger, bb_tick, _, bb_spans, _) = s.blackbox.clone().expect("header");
        assert_eq!(bb_trigger, "starved-tick");
        assert_eq!(bb_tick, 1);
        assert_eq!(bb_spans, 1);
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.tick_marks.len(), 1);
        // the same starvation must not re-fire, and cooldown holds
        assert!(fr.check(&tel, &core, 2).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_is_bounded_and_cleared_by_a_dump() {
        let dir = temp_dir("ring");
        let (core, mut tel) = starved_setup();
        let mut opts = FlightOptions::new(&dir);
        opts.ring_cap = 4;
        opts.cooldown_ticks = 0;
        let mut fr = FlightRecorder::new(opts);
        for i in 0..10 {
            fr.record_span(&span(i));
        }
        tel.on_tick_at(&core, 1 << 20, 10);
        let (_, path) = fr.check(&tel, &core, 1).unwrap().expect("fires");
        let s = Summary::from_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(s.spans.len(), 4, "ring keeps the newest 4");
        assert_eq!(s.spans[0].id, 6, "oldest retained span");
        let (.., dropped) = s.blackbox.clone().unwrap();
        assert_eq!(dropped, 6);
        // ring cleared: a second fire dumps fresh (empty) evidence
        fr.record_span(&span(99));
        tel.on_tick_at(&core, 1 << 20, 20);
        let (_, path2) = fr.check(&tel, &core, 2).unwrap().expect("fires again");
        let s2 = Summary::from_jsonl(&std::fs::read_to_string(&path2).unwrap()).unwrap();
        assert_eq!(s2.spans.len(), 1);
        assert_eq!(s2.spans[0].id, 99);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_cap_and_reject_spike_trigger() {
        let dir = temp_dir("cap");
        let (mut core, mut tel) = starved_setup();
        let mut opts = FlightOptions::new(&dir);
        opts.cooldown_ticks = 0;
        opts.max_dumps = 1;
        opts.reject_spike = 1;
        opts.slo_violation = 2.0; // SLO burn disarmed (fraction ≤ 1)
        let mut fr = FlightRecorder::new(opts);
        // saturate the pool → admission rejects → windowed spike
        let mut sink = NoopSink;
        while core.place(ClassId(0), 1, &mut sink).is_ok() {}
        tel.on_tick_at(&core, 0, 10);
        let (trigger, _) = fr.check(&tel, &core, 1).unwrap().expect("fires");
        assert_eq!(trigger, "reject-spike");
        // still spiking, but the dump cap has been reached
        tel.on_tick_at(&core, 0, 20);
        assert!(fr.check(&tel, &core, 2).unwrap().is_none());
        assert_eq!(fr.dumps().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
