//! Bipartite maximum matching on top of the flow core.

use crate::dinic::FlowNetwork;

/// Maximum bipartite matching.
///
/// `left` vertices `0..n_left`, `right` vertices `0..n_right`, `edges` as
/// `(l, r)` pairs. Returns for each left vertex the matched right vertex (or
/// `None`). Runs Dinic on the unit network, i.e. Hopcroft–Karp complexity
/// `O(E √V)`.
///
/// Used by tests as an independently-checkable special case of the
/// feasibility oracle (unit capacities ⇔ matching).
///
/// # Panics
/// Panics if an edge references an out-of-range vertex.
pub fn bipartite_matching(
    n_left: usize,
    n_right: usize,
    edges: &[(usize, usize)],
) -> Vec<Option<usize>> {
    let s = n_left + n_right;
    let t = s + 1;
    let mut net = FlowNetwork::new(n_left + n_right + 2);
    for l in 0..n_left {
        net.add_edge(s, l, 1);
    }
    for r in 0..n_right {
        net.add_edge(n_left + r, t, 1);
    }
    let mut ids = Vec::with_capacity(edges.len());
    for &(l, r) in edges {
        assert!(l < n_left && r < n_right, "edge out of range");
        ids.push(net.add_edge(l, n_left + r, 1));
    }
    net.max_flow(s, t);
    let mut matched = vec![None; n_left];
    for (&(l, r), &id) in edges.iter().zip(&ids) {
        if net.edge_flow(id) == 1 {
            debug_assert!(matched[l].is_none(), "left vertex matched twice");
            matched[l] = Some(r);
        }
    }
    matched
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matching_size(m: &[Option<usize>]) -> usize {
        m.iter().filter(|x| x.is_some()).count()
    }

    #[test]
    fn perfect_matching_found() {
        // 3×3 with a unique perfect matching (diagonal forced)
        let edges = [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)];
        let m = bipartite_matching(3, 3, &edges);
        assert_eq!(matching_size(&m), 3);
        assert_eq!(m[0], Some(0));
        assert_eq!(m[1], Some(1));
        assert_eq!(m[2], Some(2));
    }

    #[test]
    fn hall_violation_limits_matching() {
        // two left vertices both only like right vertex 0
        let m = bipartite_matching(2, 2, &[(0, 0), (1, 0)]);
        assert_eq!(matching_size(&m), 1);
    }

    #[test]
    fn right_vertices_not_reused() {
        let edges = [(0, 0), (1, 0), (2, 0)];
        let m = bipartite_matching(3, 1, &edges);
        assert_eq!(matching_size(&m), 1);
        let used: Vec<usize> = m.into_iter().flatten().collect();
        assert_eq!(used, vec![0]);
    }

    #[test]
    fn empty_graph() {
        let m = bipartite_matching(3, 3, &[]);
        assert_eq!(matching_size(&m), 0);
    }

    #[test]
    fn duplicate_edges_are_harmless() {
        let m = bipartite_matching(1, 1, &[(0, 0), (0, 0)]);
        assert_eq!(matching_size(&m), 1);
    }

    #[test]
    fn random_graphs_match_greedy_lower_bound() {
        use qlb_rng::{Rng64, SplitMix64};
        let mut rng = SplitMix64::new(99);
        for _ in 0..30 {
            let n = 6;
            let mut edges = Vec::new();
            for l in 0..n {
                for r in 0..n {
                    if rng.bernoulli(0.3) {
                        edges.push((l, r));
                    }
                }
            }
            let m = bipartite_matching(n, n, &edges);
            // greedy matching is a 1/2-approximation lower bound and any
            // matching is at most n
            let mut used_r = vec![false; n];
            let mut used_l = vec![false; n];
            let mut greedy = 0;
            for &(l, r) in &edges {
                if !used_l[l] && !used_r[r] {
                    used_l[l] = true;
                    used_r[r] = true;
                    greedy += 1;
                }
            }
            let size = matching_size(&m);
            // a maximum matching dominates any (greedy) matching, and never
            // exceeds the side size
            assert!(size >= greedy, "max {size} < greedy {greedy}");
            assert!(size <= n);
        }
    }
}
