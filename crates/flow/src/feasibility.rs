//! Exact feasibility for the eligibility flavour of QoS classes.
//!
//! Input convention (shared with `qlb-core::Instance`): `K` classes with
//! `class_sizes[k]` users each, `m` resources, and a flattened
//! effective-capacity table `eff_cap[k * m + r]`. A state is legal iff every
//! resource's congestion is at most the effective capacity of every class
//! present on it.
//!
//! The **eligibility structure** is the special case where each column `r`
//! is *two-valued*: every class sees either `0` ("not permitted") or a
//! common capacity `c_r`. Then legality decouples into "only permitted
//! classes on `r`" plus "`x_r ≤ c_r`", and feasibility is exactly a
//! transportation problem:
//!
//! ```text
//!    source ──n_k──▶ class k ──∞──▶ resource r (permitted) ──c_r──▶ sink
//! ```
//!
//! The instance is feasible iff the max flow saturates all source edges
//! (`= Σ_k n_k`); the class→resource flows are per-class quotas from which a
//! legal state can be materialized. For general tables (not two-valued)
//! exact feasibility is NP-hard — see `DESIGN.md` — and this oracle
//! declines rather than answer approximately.

use crate::dinic::FlowNetwork;

/// Outcome of the exact eligibility oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowFeasibility {
    /// True iff a legal state exists.
    pub feasible: bool,
    /// Users the optimal fractional=integral routing can serve.
    pub served: u64,
    /// Total demand `Σ_k n_k`.
    pub demand: u64,
    /// Per-(class, resource) quotas of a maximum routing, flattened
    /// `quotas[k * m + r]`. When `feasible`, materializing these quotas
    /// yields a legal state.
    pub quotas: Vec<u32>,
}

/// Detect the eligibility structure: if every column of `eff_cap` is
/// two-valued (`0` or a common `c_r`), return the per-resource capacities
/// `c_r`; otherwise `None`.
///
/// A column of all zeros yields `c_r = 0` (a dead resource).
pub fn eligibility_caps(eff_cap: &[u32], num_classes: usize, m: usize) -> Option<Vec<u32>> {
    assert_eq!(eff_cap.len(), num_classes * m, "table shape");
    let mut caps = vec![0u32; m];
    for r in 0..m {
        let mut common = 0u32;
        for k in 0..num_classes {
            let c = eff_cap[k * m + r];
            if c == 0 {
                continue;
            }
            if common == 0 {
                common = c;
            } else if common != c {
                return None;
            }
        }
        caps[r] = common;
    }
    Some(caps)
}

/// Exact feasibility of an eligibility instance.
///
/// Returns `None` if the capacity table does not have the eligibility
/// structure (see [`eligibility_caps`]); the caller should then fall back to
/// the sufficient greedy check or the exponential [`crate::brute`] oracle.
pub fn flow_feasible(class_sizes: &[usize], eff_cap: &[u32], m: usize) -> Option<FlowFeasibility> {
    let kk = class_sizes.len();
    let caps = eligibility_caps(eff_cap, kk, m)?;
    let demand: u64 = class_sizes.iter().map(|&n| n as u64).sum();

    // nodes: 0 = source, 1..=kk classes, kk+1..kk+m resources, sink last
    let s = 0usize;
    let class_node = |k: usize| 1 + k;
    let res_node = |r: usize| 1 + kk + r;
    let t = 1 + kk + m;
    let mut net = FlowNetwork::new(t + 1);

    for (k, &nk) in class_sizes.iter().enumerate() {
        net.add_edge(s, class_node(k), nk as u64);
    }
    for (r, &c) in caps.iter().enumerate() {
        net.add_edge(res_node(r), t, c as u64);
    }
    let mut mid_edges = Vec::new();
    for k in 0..kk {
        for r in 0..m {
            if eff_cap[k * m + r] > 0 {
                // capacity bounded by both endpoints anyway; use class size
                let id = net.add_edge(class_node(k), res_node(r), class_sizes[k] as u64);
                mid_edges.push((k, r, id));
            }
        }
    }

    let served = net.max_flow(s, t);
    let mut quotas = vec![0u32; kk * m];
    for (k, r, id) in mid_edges {
        quotas[k * m + r] = net.edge_flow(id) as u32;
    }
    Some(FlowFeasibility {
        feasible: served == demand,
        served,
        demand,
        quotas,
    })
}

/// Convenience wrapper: quotas of a maximum routing, or `None` if the table
/// is not an eligibility structure **or** the instance is infeasible.
pub fn flow_assign_quotas(class_sizes: &[usize], eff_cap: &[u32], m: usize) -> Option<Vec<u32>> {
    let f = flow_feasible(class_sizes, eff_cap, m)?;
    f.feasible.then_some(f.quotas)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_detection() {
        // 2×2 table with two-valued columns: r0 = {3,3}, r1 = {0,5}
        let ok = [3, 0, 3, 5];
        assert_eq!(eligibility_caps(&ok, 2, 2), Some(vec![3, 5]));
        // 2×3 table where column r2 = {2,4} has two distinct nonzero caps
        let mixed = [3, 0, 2, 3, 5, 4];
        assert_eq!(eligibility_caps(&mixed, 2, 3), None);
    }

    #[test]
    fn structure_allows_dead_columns() {
        let tbl = [0, 4, 0, 4];
        assert_eq!(eligibility_caps(&tbl, 2, 2), Some(vec![0, 4]));
    }

    #[test]
    fn single_class_matches_counting() {
        // single class: feasible ⟺ Σ c_r ≥ n
        let caps = [3u32, 2, 5];
        let f = flow_feasible(&[10], &caps, 3).unwrap();
        assert!(f.feasible);
        assert_eq!(f.served, 10);
        let f = flow_feasible(&[11], &caps, 3).unwrap();
        assert!(!f.feasible);
        assert_eq!(f.served, 10);
        assert_eq!(f.demand, 11);
    }

    #[test]
    fn quotas_respect_caps_and_sizes() {
        let caps = [3u32, 2, 5];
        let f = flow_feasible(&[10], &caps, 3).unwrap();
        let total: u32 = f.quotas.iter().sum();
        assert_eq!(total, 10);
        for (q, c) in f.quotas.iter().zip(&caps) {
            assert!(q <= c);
        }
    }

    #[test]
    fn eligibility_two_classes() {
        // class 0 may use only r0 (cap 4); class 1 may use r0, r1 (caps 4, 3)
        let tbl = [4, 0, 4, 3];
        // 4 + 3 = 7 total, but class 0 limited to 4
        let f = flow_feasible(&[4, 3], &tbl, 2).unwrap();
        assert!(f.feasible);
        let f = flow_feasible(&[5, 2], &tbl, 2).unwrap();
        assert!(!f.feasible, "class 0 cannot exceed resource 0");
        assert_eq!(f.served, 6);
    }

    #[test]
    fn counting_bound_is_weaker_than_flow() {
        // Hall violation invisible to per-class counting: two classes each
        // fit alone, but they share one resource.
        // class 0: only r0 (cap 2); class 1: only r0 (cap 2).
        let tbl = [2, 0, 2, 0];
        let f = flow_feasible(&[2, 2], &tbl, 2).unwrap();
        assert!(!f.feasible);
        // per-class counting: both classes individually fit (2 ≤ 2)
        // — only the subset {0,1} reveals the conflict. The flow oracle
        // needs no subset enumeration.
    }

    #[test]
    fn flow_assign_quotas_none_on_infeasible() {
        let caps = [1u32];
        assert!(flow_assign_quotas(&[2], &caps, 1).is_none());
        assert!(flow_assign_quotas(&[1], &caps, 1).is_some());
    }

    #[test]
    fn non_eligibility_table_declined() {
        // column r0 has two distinct nonzero caps → latency flavour
        let tbl = [2, 4];
        assert!(flow_feasible(&[1, 1], &tbl, 1).is_none());
    }

    #[test]
    fn zero_demand_is_feasible() {
        let f = flow_feasible(&[0, 0], &[1, 1, 1, 1], 2).unwrap();
        assert!(f.feasible);
        assert_eq!(f.demand, 0);
    }

    #[test]
    fn quotas_materialize_per_class_loads() {
        let tbl = [4, 0, 4, 3];
        let q = flow_assign_quotas(&[4, 3], &tbl, 2).unwrap();
        // class sums match class sizes
        assert_eq!(q[0] + q[1], 4);
        assert_eq!(q[2] + q[3], 3);
        // resource sums within caps
        assert!(q[0] + q[2] <= 4);
        assert!(q[1] + q[3] <= 3);
        // class 0 only on permitted resources
        assert_eq!(q[1], 0);
    }
}
