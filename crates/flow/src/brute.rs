//! Exhaustive feasibility search — the ground truth for tiny instances.
//!
//! Users of one class are interchangeable, so instead of enumerating the
//! `m^n` assignments we enumerate, per class, the *compositions* of `n_k`
//! users over `m` resources and check each combined load profile. The cost
//! is `Π_k C(n_k + m − 1, m − 1)`, fine for the property-test sizes
//! (`n ≤ 12`, `m ≤ 5`) where this oracle cross-checks the flow oracle, the
//! counting bound, and the greedy constructor.

/// Exact feasibility by exhaustive search.
///
/// `class_sizes[k]` users per class, `m` resources, capacities
/// `eff_cap[k * m + r]` (any structure — latency or eligibility). Returns
/// true iff some placement satisfies every user, i.e. for every resource
/// `r`: `x_r ≤ eff_cap[k][r]` for every class `k` with a user on `r`.
pub fn brute_force_feasible(class_sizes: &[usize], eff_cap: &[u32], m: usize) -> bool {
    let kk = class_sizes.len();
    assert_eq!(eff_cap.len(), kk * m, "table shape");
    if class_sizes.iter().all(|&n| n == 0) {
        return true;
    }
    // counts[k][r] built up class by class
    let mut loads = vec![0u32; m];
    let mut per_class = vec![0u32; kk * m];
    search(class_sizes, eff_cap, m, 0, &mut loads, &mut per_class)
}

fn search(
    class_sizes: &[usize],
    eff_cap: &[u32],
    m: usize,
    k: usize,
    loads: &mut [u32],
    per_class: &mut [u32],
) -> bool {
    if k == class_sizes.len() {
        return check(class_sizes.len(), eff_cap, m, loads, per_class);
    }
    compose(
        class_sizes,
        eff_cap,
        m,
        k,
        0,
        class_sizes[k],
        loads,
        per_class,
    )
}

#[allow(clippy::too_many_arguments)]
fn compose(
    class_sizes: &[usize],
    eff_cap: &[u32],
    m: usize,
    k: usize,
    r: usize,
    remaining: usize,
    loads: &mut [u32],
    per_class: &mut [u32],
) -> bool {
    if r == m {
        return remaining == 0 && search(class_sizes, eff_cap, m, k + 1, loads, per_class);
    }
    // Prune: a class never places more users on r than its own capacity
    // there (they would be unsatisfied outright).
    let cap_here = eff_cap[k * m + r] as usize;
    for take in 0..=remaining.min(cap_here) {
        loads[r] += take as u32;
        per_class[k * m + r] = take as u32;
        if compose(
            class_sizes,
            eff_cap,
            m,
            k,
            r + 1,
            remaining - take,
            loads,
            per_class,
        ) {
            return true;
        }
        loads[r] -= take as u32;
        per_class[k * m + r] = 0;
    }
    false
}

fn check(kk: usize, eff_cap: &[u32], m: usize, loads: &[u32], per_class: &[u32]) -> bool {
    for r in 0..m {
        if loads[r] == 0 {
            continue;
        }
        for k in 0..kk {
            if per_class[k * m + r] > 0 && loads[r] > eff_cap[k * m + r] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_class_counting_exact() {
        assert!(brute_force_feasible(&[5], &[3, 2], 2));
        assert!(!brute_force_feasible(&[6], &[3, 2], 2));
    }

    #[test]
    fn empty_demand_feasible() {
        assert!(brute_force_feasible(&[0, 0], &[0, 0, 0, 0], 2));
        assert!(brute_force_feasible(&[], &[], 0));
    }

    #[test]
    fn mixing_penalty_detected() {
        // One resource, speed 4: strict cap 2, lenient cap 4.
        // 1 strict + 3 lenient = load 4 > strict cap → only legal if strict
        // user is alone... but there is one resource. 1+3 users on one
        // resource: load 4 ≤ lenient 4 but > strict 2 → infeasible.
        let tbl = [2, 4];
        assert!(!brute_force_feasible(&[1, 3], &tbl, 1));
        // 1 strict + 1 lenient: load 2 ≤ 2 and ≤ 4 → feasible.
        assert!(brute_force_feasible(&[1, 1], &tbl, 1));
    }

    #[test]
    fn segregation_helps() {
        // Two resources, strict cap 2 / lenient cap 4 on each.
        // 2 strict + 4 lenient: segregate (strict on r0: 2 ≤ 2; lenient on
        // r1: 4 ≤ 4) → feasible, even though mixed they would not fit.
        let tbl = [2, 2, 4, 4];
        assert!(brute_force_feasible(&[2, 4], &tbl, 2));
        assert!(!brute_force_feasible(&[2, 5], &tbl, 2));
    }

    #[test]
    fn agrees_with_flow_oracle_on_eligibility_tables() {
        use crate::feasibility::flow_feasible;
        use qlb_rng::{Rng64, SplitMix64};
        let mut rng = SplitMix64::new(2025);
        for _case in 0..200 {
            let m = 1 + rng.uniform_usize(3);
            let kk = 1 + rng.uniform_usize(3);
            // two-valued columns
            let mut tbl = vec![0u32; kk * m];
            for r in 0..m {
                let cap = rng.uniform(5) as u32; // 0..4
                for k in 0..kk {
                    if rng.bernoulli(0.7) {
                        tbl[k * m + r] = cap;
                    }
                }
            }
            let sizes: Vec<usize> = (0..kk).map(|_| rng.uniform_usize(5)).collect();
            let flow = flow_feasible(&sizes, &tbl, m).expect("two-valued by construction");
            let brute = brute_force_feasible(&sizes, &tbl, m);
            assert_eq!(
                flow.feasible, brute,
                "divergence on sizes {sizes:?}, table {tbl:?}, m {m}"
            );
        }
    }

    #[test]
    fn latency_counterexample_to_counting() {
        // Counting bound satisfied but infeasible (latency flavour):
        // two resources speed 3 → strict (T=1/3… use caps directly).
        // caps: class0: [1, 1], class1: [3, 3]; sizes: 2 strict, 4 lenient.
        // counting: strict alone 2 ≤ 2 ✓; lenient alone 4 ≤ 6 ✓;
        // both: 6 ≤ max-caps 3+3 = 6 ✓. But strict users occupy both
        // resources at load 1 each... then lenient have 2+2 slots minus
        // shared-load coupling: placing 2 lenient with 1 strict gives load
        // 3 > strict cap 1 → infeasible.
        let tbl = [1, 1, 3, 3];
        assert!(!brute_force_feasible(&[2, 4], &tbl, 2));
    }
}
