//! # qlb-flow — max-flow substrate and exact feasibility oracles
//!
//! The QoS load-balancing paper assumes feasible instances ("a legal state
//! exists"); building workloads and validating experiments therefore needs
//! a *feasibility oracle*. This crate provides:
//!
//! * [`dinic`] — a general max-flow implementation (Dinic's algorithm,
//!   `O(V²E)`, far faster on the unit-ish bipartite networks we build);
//! * [`matching`] — bipartite maximum matching built on the flow core;
//! * [`feasibility`] — exact feasibility for the *eligibility* flavour of
//!   QoS classes (class `k` may use a permitted subset of resources, every
//!   permitted resource offers its full capacity) via a three-layer flow
//!   network, plus the Hall-style counting bound it is compared against in
//!   experiment E11;
//! * [`brute`] — exhaustive feasibility search for tiny instances, the
//!   ground truth for property tests of both the oracle and the greedy
//!   constructor in `qlb-core`.
//!
//! Exactness boundary (documented in `DESIGN.md`): for general latency
//! thresholds (`eff_cap[k][r] = ⌊T_k · s_r⌋`) exact feasibility is weakly
//! NP-hard (subset-sum reduction), so no polynomial oracle is offered for
//! that flavour; the greedy in `qlb-core` is a sufficient check and
//! [`brute`] the exact-but-exponential fallback used in tests.

#![warn(missing_docs)]

pub mod brute;
pub mod dinic;
pub mod feasibility;
pub mod matching;

pub use brute::brute_force_feasible;
pub use dinic::{EdgeId, FlowNetwork, NodeId};
pub use feasibility::{eligibility_caps, flow_assign_quotas, flow_feasible, FlowFeasibility};
pub use matching::bipartite_matching;
