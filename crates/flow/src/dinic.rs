//! Dinic's maximum-flow algorithm.
//!
//! Standard adjacency-list residual graph with paired forward/backward
//! edges, BFS level graph + DFS blocking flow. Complexity `O(V²E)` in
//! general and `O(E·√V)` on unit-capacity bipartite graphs — the regime the
//! feasibility oracle uses.

/// Node index in a [`FlowNetwork`].
pub type NodeId = usize;

/// Identifier of an edge returned by [`FlowNetwork::add_edge`]; use it to
/// query the routed flow after [`FlowNetwork::max_flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: NodeId,
    /// Remaining residual capacity.
    cap: u64,
    /// Index of the reverse edge in `edges`.
    rev: usize,
    /// Original capacity (to report flow = orig − cap on forward edges).
    orig: u64,
}

/// A flow network under construction / after a max-flow run.
///
/// ```
/// use qlb_flow::FlowNetwork;
/// let mut net = FlowNetwork::new(4);
/// let s = 0; let t = 3;
/// net.add_edge(s, 1, 10);
/// net.add_edge(s, 2, 10);
/// net.add_edge(1, 3, 7);
/// net.add_edge(2, 3, 5);
/// net.add_edge(1, 2, 3);
/// assert_eq!(net.max_flow(s, t), 12);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// `adj[v]` = indices into `edges` of the edges leaving `v`.
    adj: Vec<Vec<usize>>,
    edges: Vec<Edge>,
    // scratch buffers reused across runs
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl FlowNetwork {
    /// Network with `n` nodes (`0..n`) and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Add a directed edge `from → to` with capacity `cap`.
    ///
    /// # Panics
    /// Panics if a node index is out of range.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: u64) -> EdgeId {
        assert!(from < self.adj.len() && to < self.adj.len(), "node range");
        let fwd = self.edges.len();
        self.edges.push(Edge {
            to,
            cap,
            rev: fwd + 1,
            orig: cap,
        });
        self.edges.push(Edge {
            to: from,
            cap: 0,
            rev: fwd,
            orig: 0,
        });
        self.adj[from].push(fwd);
        self.adj[to].push(fwd + 1);
        EdgeId(fwd)
    }

    /// Flow routed through a forward edge after [`FlowNetwork::max_flow`].
    pub fn edge_flow(&self, id: EdgeId) -> u64 {
        let e = &self.edges[id.0];
        e.orig - e.cap
    }

    fn bfs(&mut self, s: NodeId, t: NodeId) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &ei in &self.adj[v] {
                let e = &self.edges[ei];
                if e.cap > 0 && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[v] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: NodeId, t: NodeId, f: u64) -> u64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.adj[v].len() {
            let ei = self.adj[v][self.iter[v]];
            let (to, cap) = {
                let e = &self.edges[ei];
                (e.to, e.cap)
            };
            if cap > 0 && self.level[v] < self.level[to] {
                let d = self.dfs(to, t, f.min(cap));
                if d > 0 {
                    self.edges[ei].cap -= d;
                    let rev = self.edges[ei].rev;
                    self.edges[rev].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    /// Compute the maximum `s → t` flow. May be called once per network
    /// build (the residual graph is consumed); [`FlowNetwork::edge_flow`]
    /// reports the per-edge routing afterwards.
    ///
    /// # Panics
    /// Panics if `s == t`.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> u64 {
        assert_ne!(s, t, "source equals sink");
        let mut flow = 0u64;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, u64::MAX);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 1), 5);
        assert_eq!(net.edge_flow(e), 5);
    }

    #[test]
    fn classic_diamond() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10);
        net.add_edge(0, 2, 10);
        net.add_edge(1, 3, 7);
        net.add_edge(2, 3, 5);
        net.add_edge(1, 2, 3);
        assert_eq!(net.max_flow(0, 3), 12);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn respects_bottleneck() {
        // chain 0 → 1 → 2 → 3 with caps 9, 2, 9
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 9);
        let mid = net.add_edge(1, 2, 2);
        net.add_edge(2, 3, 9);
        assert_eq!(net.max_flow(0, 3), 2);
        assert_eq!(net.edge_flow(mid), 2);
    }

    #[test]
    fn needs_residual_edges() {
        // The classic instance where a greedy augmenting path must be
        // undone via the residual edge: two crossing paths.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 1, 4);
        assert_eq!(net.max_flow(0, 1), 7);
    }

    #[test]
    fn zero_capacity_edge_carries_nothing() {
        let mut net = FlowNetwork::new(3);
        let e = net.add_edge(0, 1, 0);
        net.add_edge(1, 2, 5);
        assert_eq!(net.max_flow(0, 2), 0);
        assert_eq!(net.edge_flow(e), 0);
    }

    #[test]
    fn flow_conservation_on_random_graph() {
        use qlb_rng::{Rng64, SplitMix64};
        let mut rng = SplitMix64::new(404);
        for _case in 0..20 {
            let n = 8;
            let mut net = FlowNetwork::new(n);
            let mut edge_ids = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.bernoulli(0.4) {
                        let cap = rng.uniform(10);
                        edge_ids.push((u, v, net.add_edge(u, v, cap)));
                    }
                }
            }
            let total = net.max_flow(0, n - 1);
            // conservation: net out-flow at every internal node is zero
            let mut balance = vec![0i64; n];
            for &(u, v, id) in &edge_ids {
                let f = net.edge_flow(id) as i64;
                balance[u] -= f;
                balance[v] += f;
            }
            assert_eq!(balance[0], -(total as i64));
            assert_eq!(balance[n - 1], total as i64);
            for b in &balance[1..n - 1] {
                assert_eq!(*b, 0, "conservation violated");
            }
        }
    }

    #[test]
    #[should_panic(expected = "source equals sink")]
    fn same_source_sink_panics() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1);
        let _ = net.max_flow(0, 0);
    }

    #[test]
    #[should_panic(expected = "node range")]
    fn out_of_range_edge_panics() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 5, 1);
    }

    #[test]
    fn large_capacities_do_not_overflow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, u64::MAX / 4);
        net.add_edge(1, 2, u64::MAX / 4);
        assert_eq!(net.max_flow(0, 2), u64::MAX / 4);
    }
}
