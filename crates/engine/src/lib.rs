//! # qlb-engine — synchronous round engine for QoS load balancing
//!
//! Executes a `qlb-core` protocol over synchronous rounds, at laptop scale,
//! with a family of executors that produce **bit-identical trajectories**:
//!
//! * [`run()`](run()) — the sequential reference executor (allocation-free round
//!   loop);
//! * [`run_sparse`] — the active-set executor: `O(active)` rounds via an
//!   incrementally maintained unsatisfied set;
//! * [`run_threaded`] — round decisions over the struct-of-arrays
//!   `RoundView` kernel, sharded on cache-line boundaries over a persistent
//!   [`WorkerPool`] (long-lived parked workers, one epoch bump + unpark of
//!   the non-empty shards per round); identical output is guaranteed by the
//!   counter-based RNG streams of `qlb-rng` and verified by tests and
//!   experiment E10;
//! * [`run_sparse_threaded`] — the active-set walk sharded over the pool.
//!
//! The engine also provides per-round [`trace`]s (potential decay, figure
//! experiments), [`dynamics`] for churn/re-convergence experiments,
//! [`open`] for open-system (arrival/departure) driving, [`large`] for
//! huge-`n` runs over chunked assignments with optional file-backed
//! spill, and [`weighted`] for the weighted-demand extension.
//!
//! ```
//! use qlb_core::prelude::*;
//! use qlb_engine::{run, run_threaded, RunConfig};
//!
//! let inst = Instance::uniform(512, 64, 10).unwrap();
//! let start = State::all_on(&inst, ResourceId(0));
//! let seq = run(&inst, start.clone(), &SlackDamped::default(), RunConfig::new(7, 10_000));
//! let par = run_threaded(&inst, start, &SlackDamped::default(), RunConfig::new(7, 10_000), 4);
//! assert!(seq.converged);
//! assert_eq!(seq.state, par.state); // bit-identical trajectories
//! ```

#![warn(missing_docs)]

pub mod dynamics;
pub mod large;
pub mod open;
pub mod pool;
pub mod run;
pub mod trace;
pub mod weighted;

pub use dynamics::{
    perturb_uniform, run_with_churn, run_with_churn_observed, ChurnConfig, ChurnOutcome,
};
pub use large::{chunked_from_state, hotspot_chunked, run_chunked, run_chunked_observed};
pub use open::{
    run_open_system, run_open_system_observed, OpenConfig, OpenOutcome, OpenRoundStats,
};
pub use pool::{shard_bounds, shard_chunk, shards_for, WorkerPool};
pub use run::{
    run, run_observed, run_sparse, run_sparse_observed, run_sparse_threaded,
    run_sparse_threaded_observed, run_threaded, run_threaded_observed, Executor, RunConfig,
    RunOutcome,
};
pub use trace::{RoundStats, Trace};
pub use weighted::{
    run_weighted, run_weighted_cfg, run_weighted_cfg_observed, run_weighted_observed,
    WeightedConfig, WeightedOutcome,
};
