//! Per-round measurement traces.

use qlb_core::{overload_potential, Instance, State};

/// Snapshot of the system after one round (or of the initial state, for
/// `round == 0` entries in a [`Trace`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Rounds executed so far (0 = initial state).
    pub round: u64,
    /// Number of unsatisfied users.
    pub unsatisfied: u64,
    /// Overload potential `Φ` (single-class instances; `None` otherwise).
    pub overload: Option<u64>,
    /// Migrations applied in this round (0 for the initial entry).
    pub migrations: u64,
}

/// A per-round trace of a run, plus optional per-user satisfaction times.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// One entry for the initial state and one per executed round.
    pub rounds: Vec<RoundStats>,
    /// For each user, the last round in which it was observed unsatisfied
    /// (`None` = never unsatisfied). Populated only when user-time tracking
    /// is enabled in the run config; used by the fairness experiment (E12):
    /// a user's *settling time* is `last_unsatisfied + 1`.
    pub last_unsatisfied: Vec<Option<u64>>,
}

impl Trace {
    pub(crate) fn record(&mut self, inst: &Instance, state: &State, round: u64, migrations: u64) {
        let overload = (inst.num_classes() == 1).then(|| overload_potential(inst, state));
        self.rounds.push(RoundStats {
            round,
            unsatisfied: state.num_unsatisfied(inst) as u64,
            overload,
            migrations,
        });
    }

    pub(crate) fn record_user_times(&mut self, inst: &Instance, state: &State, round: u64) {
        if self.last_unsatisfied.is_empty() {
            self.last_unsatisfied = vec![None; inst.num_users()];
        }
        for u in inst.users() {
            if !state.is_satisfied(inst, u) {
                self.last_unsatisfied[u.index()] = Some(round);
            }
        }
    }

    /// Settling time of each user: first round index from which the user
    /// stayed satisfied to the end of the run (0 = satisfied throughout).
    /// Empty unless user-time tracking was enabled.
    pub fn settling_times(&self) -> Vec<u64> {
        self.last_unsatisfied
            .iter()
            .map(|r| r.map_or(0, |x| x + 1))
            .collect()
    }

    /// The overload-potential series, if single-class.
    pub fn overload_series(&self) -> Option<Vec<u64>> {
        self.rounds.iter().map(|r| r.overload).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlb_core::ResourceId;

    #[test]
    fn record_tracks_rounds_and_overload() {
        let inst = Instance::uniform(8, 4, 3).unwrap();
        let hot = State::all_on(&inst, ResourceId(0));
        let mut t = Trace::default();
        t.record(&inst, &hot, 0, 0);
        assert_eq!(t.rounds.len(), 1);
        assert_eq!(t.rounds[0].unsatisfied, 8);
        assert_eq!(t.rounds[0].overload, Some(5));
        assert_eq!(t.overload_series(), Some(vec![5]));
    }

    #[test]
    fn user_times_track_last_unsatisfied() {
        let inst = Instance::uniform(4, 2, 2).unwrap();
        let hot = State::all_on(&inst, ResourceId(0));
        let legal = State::round_robin(&inst);
        let mut t = Trace::default();
        t.record_user_times(&inst, &hot, 0); // everyone unsatisfied
        t.record_user_times(&inst, &legal, 1); // nobody
        assert_eq!(t.last_unsatisfied, vec![Some(0); 4]);
        assert_eq!(t.settling_times(), vec![1; 4]);
    }

    #[test]
    fn settling_time_zero_for_always_satisfied() {
        let inst = Instance::uniform(4, 2, 2).unwrap();
        let legal = State::round_robin(&inst);
        let mut t = Trace::default();
        t.record_user_times(&inst, &legal, 0);
        assert_eq!(t.settling_times(), vec![0; 4]);
    }

    #[test]
    fn multi_class_overload_is_none() {
        use qlb_core::InstanceBuilder;
        let inst = InstanceBuilder::new()
            .speeds(vec![4.0])
            .latency_class(1.0, 1)
            .latency_class(2.0, 1)
            .build()
            .unwrap();
        let s = State::all_on(&inst, ResourceId(0));
        let mut t = Trace::default();
        t.record(&inst, &s, 0, 0);
        assert_eq!(t.rounds[0].overload, None);
        assert_eq!(t.overload_series(), None);
    }
}
