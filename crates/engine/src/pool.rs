//! Persistent worker-pool round executor.
//!
//! The original threaded executor respawned OS threads and reallocated
//! per-shard move buffers **every round** (`std::thread::scope` inside the
//! decide closure). Thread spawn costs tens of microseconds; in the endgame
//! — thousands of near-empty rounds — that fork/join overhead dominates the
//! actual decision work. [`WorkerPool`] fixes the cost model:
//!
//! * workers are spawned **once per run** and parked on a condvar between
//!   rounds; dispatching a round is an epoch bump plus a wake, roughly two
//!   orders of magnitude cheaper than `threads` spawns (measured in
//!   `BENCH_parallel.json`, gated by `qlb-bench-check`);
//! * each worker owns a reusable `Vec<Move>` shard buffer that keeps its
//!   capacity across rounds, so steady-state rounds allocate nothing;
//! * jobs borrow the caller's stack (instance, state, protocol) for the
//!   duration of one dispatch — the [`WorkerPool::run`] barrier returns
//!   only after every worker has finished, which is what makes the borrow
//!   sound.
//!
//! The pool is deliberately *not* a work-stealing scheduler: round decisions
//! are uniform-cost scans over contiguous shards, so static sharding (the
//! same partition the scoped executor used) is both optimal and — more
//! importantly — **deterministic**: shard boundaries never depend on timing,
//! so concatenating shard outputs in index order reproduces the sequential
//! move list byte for byte.

use qlb_core::Move;
use qlb_obs::{Phase, Sink};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Type-erased pointer to the per-dispatch job closure.
///
/// The closure is borrowed from [`WorkerPool::run`]'s caller; the raw
/// pointer erases that lifetime so it can live in the shared slot. Safety
/// rests on the dispatch barrier: `run` does not return until every worker
/// has finished with the pointer.
struct Job {
    f: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the pointee is `Sync` (bound enforced by `WorkerPool::run`) and
// only dereferenced while the originating `run` call keeps the borrow alive.
unsafe impl Send for Job {}

/// Coordinator/worker shared state: the current job, its epoch, and the
/// count of workers still running it.
struct PoolState {
    /// Bumped once per dispatched job; workers wait for it to advance.
    epoch: u64,
    /// The job of the current epoch (present while any worker may run it).
    job: Option<Job>,
    /// Workers that have not yet finished the current epoch's job.
    pending: usize,
    /// Set once by `Drop`; workers exit at the next wake.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers sleep here between rounds.
    start: Condvar,
    /// The coordinator sleeps here while `pending > 0`.
    done: Condvar,
}

/// A pool of long-lived worker threads executing one sharded job at a time.
///
/// Created once per run; [`WorkerPool::run`] dispatches a closure to all
/// shards (index `0..threads`) and blocks until every shard completed. The
/// coordinator thread executes shard 0 itself, so a 1-thread pool spawns no
/// OS threads at all and `run(f)` is exactly `f(0)`.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Per-shard reusable move buffers (index 0 = coordinator's shard).
    shards: Vec<Mutex<Vec<Move>>>,
    /// Per-shard compute time of the last timed dispatch, in ns.
    compute_ns: Vec<Mutex<u64>>,
    /// Per-shard dispatch wake latency of the last timed dispatch, in ns:
    /// from just before the epoch bump to the closure starting on the
    /// shard. Shard 0 is the coordinator, so its sample measures the
    /// dispatch lock + notify cost rather than a condvar wake.
    wake_ns: Vec<Mutex<u64>>,
    /// Reusable (compute, wake) snapshot buffers for
    /// [`WorkerPool::decide_round_observed`], so per-shard profiling adds
    /// no steady-state allocation.
    profile_scratch: Mutex<(Vec<u64>, Vec<u64>)>,
}

impl WorkerPool {
    /// Spawn a pool driving `threads` shards (`threads - 1` OS threads; the
    /// coordinator works shard 0).
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                pending: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qlb-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            shards: (0..threads).map(|_| Mutex::new(Vec::new())).collect(),
            compute_ns: (0..threads).map(|_| Mutex::new(0)).collect(),
            wake_ns: (0..threads).map(|_| Mutex::new(0)).collect(),
            profile_scratch: Mutex::new((Vec::new(), Vec::new())),
        }
    }

    /// Number of shards (worker threads + the coordinator).
    #[inline]
    pub fn threads(&self) -> usize {
        self.shards.len()
    }

    /// Execute `f(shard)` for every shard index, in parallel, and return
    /// once all shards completed. The closure may borrow the caller's stack
    /// freely — the barrier keeps the borrow alive for exactly the dispatch.
    pub fn run<F: Fn(usize) + Sync>(&self, f: &F) {
        if self.workers.is_empty() {
            f(0);
            return;
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert!(st.pending == 0 && st.job.is_none(), "overlapping dispatch");
            let short: &(dyn Fn(usize) + Sync) = f;
            // SAFETY (lifetime erasure): the transmute only extends the
            // borrow's lifetime to `'static` so it fits the shared slot; the
            // pointer is cleared below after `pending` drains to zero,
            // before this borrow of `f` ends.
            let long: &'static (dyn Fn(usize) + Sync + 'static) =
                unsafe { std::mem::transmute(short) };
            st.job = Some(Job {
                f: long as *const _,
            });
            st.epoch += 1;
            st.pending = self.workers.len();
            self.shared.start.notify_all();
        }
        f(0);
        let mut st = self.shared.state.lock().unwrap();
        while st.pending > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
    }

    /// Dispatch one **decide round**: each shard fills its private reusable
    /// buffer via `fill(shard, buf)`, then the buffers are drained into
    /// `out` in shard order (shard 0 first) — the same concatenation order
    /// the sequential scan produces. Buffers keep their capacity across
    /// rounds, so steady-state rounds perform no allocation.
    ///
    /// Returns the longest single-shard compute time in ns when `timed` is
    /// true (0 otherwise) so callers can split fork/join overhead from
    /// useful work in the phase timers.
    pub fn decide_round<F>(&self, fill: F, out: &mut Vec<Move>, timed: bool) -> u64
    where
        F: Fn(usize, &mut Vec<Move>) + Sync,
    {
        let dispatched = timed.then(Instant::now);
        self.run(&|shard: usize| {
            if let Some(d0) = dispatched {
                *self.wake_ns[shard].lock().unwrap() = d0.elapsed().as_nanos() as u64;
            }
            let t0 = timed.then(Instant::now);
            let mut buf = self.shards[shard].lock().unwrap();
            buf.clear();
            fill(shard, &mut buf);
            drop(buf);
            if let Some(t0) = t0 {
                *self.compute_ns[shard].lock().unwrap() = t0.elapsed().as_nanos() as u64;
            }
        });
        out.clear();
        let mut max_ns = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            out.extend_from_slice(&shard.lock().unwrap());
            if timed {
                max_ns = max_ns.max(*self.compute_ns[i].lock().unwrap());
            }
        }
        max_ns
    }

    /// [`WorkerPool::decide_round`] with the observability emission all
    /// observed pooled drivers share: `Decide` is the round's wall time,
    /// `Compute` the longest single shard, `ForkJoin` the remainder
    /// (dispatch, join, and shard-buffer drain). With `shard_timing` the
    /// per-shard compute times (each clipped to the round's wall time, so
    /// their per-round maximum sums exactly to the `Compute` aggregate)
    /// and dispatch wake latencies are forwarded to
    /// [`Sink::shard_round`] as well.
    ///
    /// With a disabled sink this is exactly the untimed
    /// [`WorkerPool::decide_round`] — no clock reads, no emission.
    pub fn decide_round_observed<S, F>(
        &self,
        fill: F,
        out: &mut Vec<Move>,
        sink: &mut S,
        shard_timing: bool,
    ) where
        S: Sink,
        F: Fn(usize, &mut Vec<Move>) + Sync,
    {
        if !S::ENABLED {
            self.decide_round(fill, out, false);
            return;
        }
        let t0 = Instant::now();
        let max_ns = self.decide_round(fill, out, true);
        let wall = t0.elapsed().as_nanos() as u64;
        let compute = max_ns.min(wall);
        sink.time(Phase::Decide, wall);
        sink.time(Phase::Compute, compute);
        sink.time(Phase::ForkJoin, wall.saturating_sub(compute));
        if shard_timing {
            let mut scratch = self.profile_scratch.lock().unwrap();
            let (compute_v, wake_v) = &mut *scratch;
            compute_v.clear();
            wake_v.clear();
            for i in 0..self.shards.len() {
                compute_v.push((*self.compute_ns[i].lock().unwrap()).min(wall));
                wake_v.push(*self.wake_ns[i].lock().unwrap());
            }
            sink.shard_round(compute_v, wake_v);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    break;
                }
                st = shared.start.wait(st).unwrap();
            }
            seen_epoch = st.epoch;
            let job = st.job.as_ref().expect("job set for new epoch");
            Job { f: job.f }
        };
        // SAFETY: the dispatching `run` call blocks until `pending == 0`,
        // so the borrow behind the pointer is alive for this call.
        (unsafe { &*job.f })(index);
        let mut st = shared.state.lock().unwrap();
        st.pending -= 1;
        if st.pending == 0 {
            shared.done.notify_one();
        }
    }
}

/// Split `0..n` into at most `threads` contiguous shards of near-equal
/// size, dropping empty shards (the partition the scoped executor used,
/// kept identical so both produce the same concatenation order).
pub fn shard_bounds(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let chunk = n.div_ceil(threads.max(1)).max(1);
    (0..threads)
        .map(|t| ((t * chunk).min(n), ((t + 1) * chunk).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_shard_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        for _ in 0..100 {
            pool.run(&|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 100));
    }

    #[test]
    fn single_thread_pool_spawns_nothing() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hit = AtomicUsize::new(0);
        pool.run(&|i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn decide_round_concatenates_in_shard_order() {
        use qlb_core::{ResourceId, UserId};
        let pool = WorkerPool::new(3);
        let mut out = Vec::new();
        for round in 0..50u32 {
            let max_ns = pool.decide_round(
                |shard, buf| {
                    for k in 0..=shard as u32 {
                        buf.push(Move {
                            user: UserId(shard as u32 * 100 + k + round),
                            from: ResourceId(0),
                            to: ResourceId(1),
                        });
                    }
                },
                &mut out,
                round % 2 == 0,
            );
            let users: Vec<u32> = out.iter().map(|mv| mv.user.0).collect();
            assert_eq!(
                users,
                vec![
                    round,
                    100 + round,
                    101 + round,
                    200 + round,
                    201 + round,
                    202 + round
                ]
            );
            if round % 2 == 1 {
                assert_eq!(max_ns, 0);
            }
        }
    }

    #[test]
    fn borrows_caller_stack() {
        let pool = WorkerPool::new(2);
        let data = [1u64, 2, 3, 4];
        let sums = [AtomicUsize::new(0), AtomicUsize::new(0)];
        pool.run(&|i| {
            sums[i].store(data.iter().sum::<u64>() as usize + i, Ordering::Relaxed);
        });
        assert_eq!(sums[0].load(Ordering::Relaxed), 10);
        assert_eq!(sums[1].load(Ordering::Relaxed), 11);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn decide_round_observed_profiles_every_shard() {
        use qlb_core::{ResourceId, UserId};
        use qlb_obs::Recorder;
        let pool = WorkerPool::new(3);
        let mut rec = Recorder::default();
        let mut out = Vec::new();
        for round in 0..20u32 {
            pool.decide_round_observed(
                |shard, buf| {
                    buf.push(Move {
                        user: UserId(shard as u32 * 10 + round),
                        from: ResourceId(0),
                        to: ResourceId(1),
                    });
                },
                &mut out,
                &mut rec,
                true,
            );
            assert_eq!(out.len(), 3);
        }
        let st = rec.shard_timers();
        assert_eq!(st.num_shards(), 3);
        assert_eq!(st.rounds(), 20);
        assert_eq!(st.dispatch().count(), 60);
        // per-round shard maxima (clipped to wall) sum exactly to the
        // aggregate Compute phase total
        assert_eq!(st.critical_ns(), rec.timers().total_ns(Phase::Compute));
        assert_eq!(rec.timers().histogram(Phase::Decide).count(), 20);
        assert_eq!(rec.timers().histogram(Phase::ForkJoin).count(), 20);
    }

    #[test]
    fn decide_round_observed_noop_sink_records_nothing() {
        use qlb_obs::NoopSink;
        let pool = WorkerPool::new(2);
        let mut out = Vec::new();
        pool.decide_round_observed(|_, _| {}, &mut out, &mut NoopSink, true);
        // untimed path: the wake/compute slots were never written
        assert_eq!(*pool.wake_ns[0].lock().unwrap(), 0);
        assert_eq!(*pool.compute_ns[1].lock().unwrap(), 0);
    }

    #[test]
    fn shard_bounds_cover_range_without_overlap() {
        for n in [0usize, 1, 7, 64, 1000] {
            for threads in [1usize, 2, 3, 8, 2000] {
                let bounds = shard_bounds(n, threads);
                let mut covered = 0usize;
                let mut prev_hi = 0usize;
                for &(lo, hi) in &bounds {
                    assert!(lo < hi);
                    assert_eq!(lo, prev_hi);
                    covered += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(covered, n);
                assert!(bounds.len() <= threads.max(1));
            }
        }
    }
}
