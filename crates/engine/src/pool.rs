//! Persistent worker-pool round executor.
//!
//! The original threaded executor respawned OS threads and reallocated
//! per-shard move buffers **every round** (`std::thread::scope` inside the
//! decide closure). Thread spawn costs tens of microseconds; in the endgame
//! — thousands of near-empty rounds — that fork/join overhead dominates the
//! actual decision work. [`WorkerPool`] fixes the cost model:
//!
//! * workers are spawned **once per run** and parked between rounds;
//!   dispatching a round is an epoch bump plus one `unpark` per
//!   participating worker, roughly two orders of magnitude cheaper than
//!   `threads` spawns (measured in `BENCH_parallel.json`, gated by
//!   `qlb-bench-check`);
//! * dispatch wakes **only the shards that have work**
//!   ([`WorkerPool::run_on`]): a sparse round whose active set fills two
//!   shards leaves the other six workers parked instead of paying their
//!   wake latency every round;
//! * each worker owns a reusable `Vec<Move>` shard buffer that keeps its
//!   capacity across rounds, so steady-state rounds allocate nothing;
//! * per-shard profiling slots are cache-line-isolated atomics
//!   ([`PaddedSlot`]) — the previous `Vec<Mutex<u64>>` packed eight
//!   hot-written slots into two cache lines, so every timed round
//!   ping-ponged the lines across all workers;
//! * jobs borrow the caller's stack (instance, state, protocol) for the
//!   duration of one dispatch — the [`WorkerPool::run`] barrier returns
//!   only after every worker has finished, which is what makes the borrow
//!   sound.
//!
//! The pool is deliberately *not* a work-stealing scheduler: round decisions
//! are uniform-cost scans over contiguous shards, so static sharding (the
//! same partition the scoped executor used) is both optimal and — more
//! importantly — **deterministic**: shard boundaries never depend on timing,
//! so concatenating shard outputs in index order reproduces the sequential
//! move list byte for byte. Shard boundaries are rounded up to 64-byte
//! lines of the struct-of-arrays assignment array ([`shard_chunk`]), so two
//! shards never stream the same cache line.

use qlb_core::Move;
use qlb_obs::{Phase, Sink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Type-erased pointer to the per-dispatch job closure.
///
/// The closure is borrowed from [`WorkerPool::run`]'s caller; the raw
/// pointer erases that lifetime so it can live in the shared slot. Safety
/// rests on the dispatch barrier: `run` does not return until every worker
/// has finished with the pointer.
struct Job {
    f: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the pointee is `Sync` (bound enforced by `WorkerPool::run`) and
// only dereferenced while the originating `run` call keeps the borrow alive.
unsafe impl Send for Job {}

/// Coordinator/worker shared state: the current job, its epoch, the number
/// of shards participating, and the count of workers still running it.
struct PoolState {
    /// Bumped once per dispatched job; workers wait for it to advance.
    epoch: u64,
    /// The job of the current epoch (present while any worker may run it).
    job: Option<Job>,
    /// Shards participating in the current epoch (`1..=threads`); workers
    /// with shard index `>= active` sit the epoch out and stay parked.
    active: usize,
    /// Workers that have not yet finished the current epoch's job.
    pending: usize,
    /// Set once by `Drop`; workers exit at the next wake.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// The coordinator sleeps here while `pending > 0`. (Workers sleep in
    /// `std::thread::park`, woken individually — a shared condvar would
    /// wake every worker on every dispatch even when only two shards have
    /// work.)
    done: Condvar,
}

/// A per-shard profiling slot on its own pair of cache lines.
///
/// Every worker writes its slot on every timed round; padding to 128 bytes
/// (two lines, defeating the adjacent-line prefetcher) keeps those writes
/// from invalidating each other's lines. Relaxed ordering suffices: the
/// slot is written before the worker's `pending` decrement (a mutex
/// release) and read after the coordinator observes `pending == 0` (a
/// mutex acquire), so the barrier orders the accesses.
#[repr(align(128))]
#[derive(Default)]
struct PaddedSlot(AtomicU64);

const _: () = assert!(std::mem::size_of::<PaddedSlot>() == 128);

/// A pool of long-lived worker threads executing one sharded job at a time.
///
/// Created once per run; [`WorkerPool::run`] dispatches a closure to all
/// shards (index `0..threads`) and blocks until every shard completed,
/// [`WorkerPool::run_on`] to a prefix of them. The coordinator thread
/// executes shard 0 itself, so a 1-thread pool spawns no OS threads at all
/// and `run(f)` is exactly `f(0)`.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Per-shard reusable move buffers (index 0 = coordinator's shard).
    shards: Vec<Mutex<Vec<Move>>>,
    /// Per-shard compute time of the last timed dispatch, in ns.
    compute_ns: Vec<PaddedSlot>,
    /// Per-shard dispatch wake latency of the last timed dispatch, in ns:
    /// from just before the epoch bump to the closure starting on the
    /// shard. Shard 0 is the coordinator, so its sample measures the
    /// dispatch lock + unpark cost rather than a real wake.
    wake_ns: Vec<PaddedSlot>,
    /// Reusable (compute, wake) snapshot buffers for
    /// [`WorkerPool::decide_round_observed`], so per-shard profiling adds
    /// no steady-state allocation.
    profile_scratch: Mutex<(Vec<u64>, Vec<u64>)>,
}

impl WorkerPool {
    /// Spawn a pool driving `threads` shards (`threads - 1` OS threads; the
    /// coordinator works shard 0).
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                pending: 0,
                shutdown: false,
            }),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qlb-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            shards: (0..threads).map(|_| Mutex::new(Vec::new())).collect(),
            compute_ns: (0..threads).map(|_| PaddedSlot::default()).collect(),
            wake_ns: (0..threads).map(|_| PaddedSlot::default()).collect(),
            profile_scratch: Mutex::new((Vec::new(), Vec::new())),
        }
    }

    /// Number of shards (worker threads + the coordinator).
    #[inline]
    pub fn threads(&self) -> usize {
        self.shards.len()
    }

    /// Execute `f(shard)` for every shard index, in parallel, and return
    /// once all shards completed. The closure may borrow the caller's stack
    /// freely — the barrier keeps the borrow alive for exactly the dispatch.
    pub fn run<F: Fn(usize) + Sync>(&self, f: &F) {
        self.run_on(f, self.threads());
    }

    /// Execute `f(shard)` for shards `0..active` only, leaving the
    /// remaining workers parked — the cheap dispatch for rounds whose work
    /// fills fewer shards than the pool has. `active` is clamped to
    /// `1..=threads()`; `run_on(f, 1)` is exactly `f(0)` with no wake at
    /// all.
    pub fn run_on<F: Fn(usize) + Sync>(&self, f: &F, active: usize) {
        let active = active.clamp(1, self.threads());
        if active == 1 {
            f(0);
            return;
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert!(st.pending == 0 && st.job.is_none(), "overlapping dispatch");
            let short: &(dyn Fn(usize) + Sync) = f;
            // SAFETY (lifetime erasure): the transmute only extends the
            // borrow's lifetime to `'static` so it fits the shared slot; the
            // pointer is cleared below after `pending` drains to zero,
            // before this borrow of `f` ends.
            let long: &'static (dyn Fn(usize) + Sync + 'static) =
                unsafe { std::mem::transmute(short) };
            st.job = Some(Job {
                f: long as *const _,
            });
            st.epoch += 1;
            st.active = active;
            st.pending = active - 1;
        }
        // Wake only the participating workers (worker i drives shard i+1).
        // The unpark token makes this race-free: a worker that has observed
        // the new epoch already simply consumes the token at its next park.
        for w in &self.workers[..active - 1] {
            w.thread().unpark();
        }
        f(0);
        let mut st = self.shared.state.lock().unwrap();
        while st.pending > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
    }

    /// Dispatch one **decide round** over shards `0..active`: each shard
    /// fills its private reusable buffer via `fill(shard, buf)`, then the
    /// buffers are drained into `out` in shard order (shard 0 first) — the
    /// same concatenation order the sequential scan produces. Buffers keep
    /// their capacity across rounds, so steady-state rounds perform no
    /// allocation.
    ///
    /// Returns the longest single-shard compute time in ns when `timed` is
    /// true (0 otherwise) so callers can split fork/join overhead from
    /// useful work in the phase timers.
    pub fn decide_round_on<F>(
        &self,
        fill: F,
        out: &mut Vec<Move>,
        timed: bool,
        active: usize,
    ) -> u64
    where
        F: Fn(usize, &mut Vec<Move>) + Sync,
    {
        let active = active.clamp(1, self.threads());
        let dispatched = timed.then(Instant::now);
        self.run_on(
            &|shard: usize| {
                if let Some(d0) = dispatched {
                    self.wake_ns[shard]
                        .0
                        .store(d0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
                let t0 = timed.then(Instant::now);
                let mut buf = self.shards[shard].lock().unwrap();
                buf.clear();
                fill(shard, &mut buf);
                drop(buf);
                if let Some(t0) = t0 {
                    self.compute_ns[shard]
                        .0
                        .store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            },
            active,
        );
        out.clear();
        let mut max_ns = 0u64;
        for (i, shard) in self.shards.iter().take(active).enumerate() {
            out.extend_from_slice(&shard.lock().unwrap());
            if timed {
                max_ns = max_ns.max(self.compute_ns[i].0.load(Ordering::Relaxed));
            }
        }
        max_ns
    }

    /// [`WorkerPool::decide_round_on`] over the full pool.
    pub fn decide_round<F>(&self, fill: F, out: &mut Vec<Move>, timed: bool) -> u64
    where
        F: Fn(usize, &mut Vec<Move>) + Sync,
    {
        self.decide_round_on(fill, out, timed, self.threads())
    }

    /// [`WorkerPool::decide_round_on`] with the observability emission all
    /// observed pooled drivers share: `Decide` is the round's wall time,
    /// `Compute` the longest single shard, `ForkJoin` the remainder
    /// (dispatch, join, and shard-buffer drain). With `shard_timing` the
    /// per-shard compute times of the participating shards (each clipped
    /// to the round's wall time, so their per-round maximum sums exactly
    /// to the `Compute` aggregate) and dispatch wake latencies are
    /// forwarded to [`Sink::shard_round`] as well.
    ///
    /// With a disabled sink this is exactly the untimed
    /// [`WorkerPool::decide_round_on`] — no clock reads, no emission.
    pub fn decide_round_observed_on<S, F>(
        &self,
        fill: F,
        out: &mut Vec<Move>,
        sink: &mut S,
        shard_timing: bool,
        active: usize,
    ) where
        S: Sink,
        F: Fn(usize, &mut Vec<Move>) + Sync,
    {
        let active = active.clamp(1, self.threads());
        if !S::ENABLED {
            self.decide_round_on(fill, out, false, active);
            return;
        }
        let t0 = Instant::now();
        let max_ns = self.decide_round_on(fill, out, true, active);
        let wall = t0.elapsed().as_nanos() as u64;
        let compute = max_ns.min(wall);
        sink.time(Phase::Decide, wall);
        sink.time(Phase::Compute, compute);
        sink.time(Phase::ForkJoin, wall.saturating_sub(compute));
        if shard_timing {
            let mut scratch = self.profile_scratch.lock().unwrap();
            let (compute_v, wake_v) = &mut *scratch;
            compute_v.clear();
            wake_v.clear();
            for i in 0..active {
                compute_v.push(self.compute_ns[i].0.load(Ordering::Relaxed).min(wall));
                wake_v.push(self.wake_ns[i].0.load(Ordering::Relaxed));
            }
            sink.shard_round(compute_v, wake_v);
        }
    }

    /// [`WorkerPool::decide_round_observed_on`] over the full pool.
    pub fn decide_round_observed<S, F>(
        &self,
        fill: F,
        out: &mut Vec<Move>,
        sink: &mut S,
        shard_timing: bool,
    ) where
        S: Sink,
        F: Fn(usize, &mut Vec<Move>) + Sync,
    {
        self.decide_round_observed_on(fill, out, sink, shard_timing, self.threads());
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        for w in &self.workers {
            w.thread().unpark();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if index < st.active {
                        break;
                    }
                    // an epoch this worker sits out: acknowledge it so a
                    // later spurious wake cannot mistake it for fresh work
                    seen_epoch = st.epoch;
                }
                drop(st);
                std::thread::park();
                st = shared.state.lock().unwrap();
            }
            seen_epoch = st.epoch;
            let job = st.job.as_ref().expect("job set for new epoch");
            Job { f: job.f }
        };
        // SAFETY: the dispatching `run_on` call blocks until `pending == 0`,
        // so the borrow behind the pointer is alive for this call.
        (unsafe { &*job.f })(index);
        let mut st = shared.state.lock().unwrap();
        st.pending -= 1;
        if st.pending == 0 {
            shared.done.notify_one();
        }
    }
}

/// The shard size the pooled executors use for a round over `len` items on
/// a `threads`-shard pool: the near-equal split, rounded **up to 16 items
/// (one 64-byte cache line of the `u32` SoA arrays)** so consecutive
/// shards never stream the same line of the assignment array.
pub fn shard_chunk(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.max(1)).max(1).next_multiple_of(16)
}

/// Number of non-empty shards a round over `len` items occupies (at least
/// 1 — an empty round still runs the coordinator's no-op shard). This is
/// the `active` argument the pooled drivers pass to
/// [`WorkerPool::run_on`]-based dispatch so workers without a shard stay
/// parked.
pub fn shards_for(len: usize, threads: usize) -> usize {
    len.div_ceil(shard_chunk(len, threads)).max(1)
}

/// Split `0..n` into at most `threads` contiguous shards of near-equal
/// size (boundaries cache-line-rounded per [`shard_chunk`]), dropping
/// empty shards.
pub fn shard_bounds(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let chunk = shard_chunk(n, threads);
    (0..threads)
        .map(|t| ((t * chunk).min(n), ((t + 1) * chunk).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_shard_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        for _ in 0..100 {
            pool.run(&|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 100));
    }

    #[test]
    fn run_on_skips_parked_shards() {
        let pool = WorkerPool::new(4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        for _ in 0..50 {
            pool.run_on(
                &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                },
                2,
            );
        }
        assert_eq!(hits[0].load(Ordering::Relaxed), 50);
        assert_eq!(hits[1].load(Ordering::Relaxed), 50);
        assert_eq!(hits[2].load(Ordering::Relaxed), 0);
        assert_eq!(hits[3].load(Ordering::Relaxed), 0);
        // the full pool still works after partial dispatches
        pool.run(&|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) >= 1));
        assert_eq!(hits[3].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_on_alternating_widths() {
        // interleave narrow and wide dispatches: every width must hit
        // exactly its prefix, and sat-out workers must rejoin cleanly
        let pool = WorkerPool::new(4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        let mut expected = [0usize; 4];
        for round in 0..60 {
            let active = 1 + round % 4;
            pool.run_on(
                &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                },
                active,
            );
            for e in expected.iter_mut().take(active) {
                *e += 1;
            }
        }
        for (h, e) in hits.iter().zip(expected) {
            assert_eq!(h.load(Ordering::Relaxed), e);
        }
    }

    #[test]
    fn single_thread_pool_spawns_nothing() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hit = AtomicUsize::new(0);
        pool.run(&|i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn decide_round_concatenates_in_shard_order() {
        use qlb_core::{ResourceId, UserId};
        let pool = WorkerPool::new(3);
        let mut out = Vec::new();
        for round in 0..50u32 {
            let max_ns = pool.decide_round(
                |shard, buf| {
                    for k in 0..=shard as u32 {
                        buf.push(Move {
                            user: UserId(shard as u32 * 100 + k + round),
                            from: ResourceId(0),
                            to: ResourceId(1),
                        });
                    }
                },
                &mut out,
                round % 2 == 0,
            );
            let users: Vec<u32> = out.iter().map(|mv| mv.user.0).collect();
            assert_eq!(
                users,
                vec![
                    round,
                    100 + round,
                    101 + round,
                    200 + round,
                    201 + round,
                    202 + round
                ]
            );
            if round % 2 == 1 {
                assert_eq!(max_ns, 0);
            }
        }
    }

    #[test]
    fn decide_round_on_drains_active_shards_only() {
        use qlb_core::{ResourceId, UserId};
        let pool = WorkerPool::new(4);
        let mut out = Vec::new();
        // seed every shard's buffer with a full dispatch...
        pool.decide_round(
            |shard, buf| {
                buf.push(Move {
                    user: UserId(shard as u32),
                    from: ResourceId(0),
                    to: ResourceId(1),
                });
            },
            &mut out,
            false,
        );
        assert_eq!(out.len(), 4);
        // ...then a 2-shard round must not leak shard 2/3's stale moves
        pool.decide_round_on(
            |shard, buf| {
                buf.push(Move {
                    user: UserId(10 + shard as u32),
                    from: ResourceId(0),
                    to: ResourceId(1),
                });
            },
            &mut out,
            false,
            2,
        );
        let users: Vec<u32> = out.iter().map(|mv| mv.user.0).collect();
        assert_eq!(users, vec![10, 11]);
    }

    #[test]
    fn borrows_caller_stack() {
        let pool = WorkerPool::new(2);
        let data = [1u64, 2, 3, 4];
        let sums = [AtomicUsize::new(0), AtomicUsize::new(0)];
        pool.run(&|i| {
            sums[i].store(data.iter().sum::<u64>() as usize + i, Ordering::Relaxed);
        });
        assert_eq!(sums[0].load(Ordering::Relaxed), 10);
        assert_eq!(sums[1].load(Ordering::Relaxed), 11);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn decide_round_observed_profiles_every_shard() {
        use qlb_core::{ResourceId, UserId};
        use qlb_obs::Recorder;
        let pool = WorkerPool::new(3);
        let mut rec = Recorder::default();
        let mut out = Vec::new();
        for round in 0..20u32 {
            pool.decide_round_observed(
                |shard, buf| {
                    buf.push(Move {
                        user: UserId(shard as u32 * 10 + round),
                        from: ResourceId(0),
                        to: ResourceId(1),
                    });
                },
                &mut out,
                &mut rec,
                true,
            );
            assert_eq!(out.len(), 3);
        }
        let st = rec.shard_timers();
        assert_eq!(st.num_shards(), 3);
        assert_eq!(st.rounds(), 20);
        assert_eq!(st.dispatch().count(), 60);
        // per-round shard maxima (clipped to wall) sum exactly to the
        // aggregate Compute phase total
        assert_eq!(st.critical_ns(), rec.timers().total_ns(Phase::Compute));
        assert_eq!(rec.timers().histogram(Phase::Decide).count(), 20);
        assert_eq!(rec.timers().histogram(Phase::ForkJoin).count(), 20);
    }

    #[test]
    fn decide_round_observed_on_profiles_active_prefix() {
        use qlb_obs::Recorder;
        let pool = WorkerPool::new(4);
        let mut rec = Recorder::default();
        let mut out = Vec::new();
        for _ in 0..10 {
            pool.decide_round_observed_on(|_, _| {}, &mut out, &mut rec, true, 2);
        }
        let st = rec.shard_timers();
        assert_eq!(st.num_shards(), 2, "only participating shards profiled");
        assert_eq!(st.dispatch().count(), 20);
    }

    #[test]
    fn decide_round_observed_noop_sink_records_nothing() {
        use qlb_obs::NoopSink;
        let pool = WorkerPool::new(2);
        let mut out = Vec::new();
        pool.decide_round_observed(|_, _| {}, &mut out, &mut NoopSink, true);
        // untimed path: the wake/compute slots were never written
        assert_eq!(pool.wake_ns[0].0.load(Ordering::Relaxed), 0);
        assert_eq!(pool.compute_ns[1].0.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shard_bounds_cover_range_without_overlap() {
        for n in [0usize, 1, 7, 64, 1000] {
            for threads in [1usize, 2, 3, 8, 2000] {
                let bounds = shard_bounds(n, threads);
                let mut covered = 0usize;
                let mut prev_hi = 0usize;
                for &(lo, hi) in &bounds {
                    assert!(lo < hi);
                    assert_eq!(lo, prev_hi);
                    covered += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(covered, n);
                assert!(bounds.len() <= threads.max(1));
                if n > 0 {
                    assert_eq!(bounds.len(), shards_for(n, threads));
                }
            }
        }
    }

    #[test]
    fn shard_boundaries_are_cache_line_rounded() {
        for n in [100usize, 1000, 1 << 20] {
            for threads in [2usize, 3, 8] {
                let chunk = shard_chunk(n, threads);
                assert_eq!(chunk % 16, 0, "chunk {chunk} not line-rounded");
                for &(lo, hi) in &shard_bounds(n, threads) {
                    assert_eq!(lo % 16, 0, "shard start {lo} mid-line");
                    assert!(hi == n || hi % 16 == 0);
                }
                assert_eq!(shards_for(n, threads), shard_bounds(n, threads).len());
            }
        }
        // tiny rounds collapse to one shard instead of waking the pool
        assert_eq!(shards_for(10, 8), 1);
        assert_eq!(shards_for(0, 8), 1);
        assert_eq!(shards_for(17, 8), 2);
    }
}
