//! The round loop: sequential, threaded, and sparse executors.

use crate::pool::{shard_bounds, shard_chunk, shards_for, WorkerPool};
use crate::trace::Trace;
use qlb_core::step::{decide_active_into, decide_round_into, decide_users_into};
use qlb_core::{
    overload_potential_loads, ActiveIndex, Instance, Move, Protocol, RoundView, ShardDeltas,
    ShardScratch, State, UserId,
};
use qlb_obs::{timed, Counter, Event, Gauge, NoopSink, Phase, Sink};
use std::sync::Mutex;
use std::time::Instant;

/// Below this many active users a pooled sparse round decides sequentially:
/// the per-user kernel is ~100 ns, so a sub-1024 batch is cheaper than one
/// condvar dispatch. Purely a cost decision — shard outputs concatenate in
/// user order either way, so the trajectory is unaffected.
const SPARSE_POOL_MIN_ACTIVE: usize = 1024;

/// Below this many moves the shard-owned executor applies the batch on the
/// coordinator instead of waking the pool a second time: the in-place write
/// is ~5 ns/move, so a small batch is cheaper than one dispatch round-trip.
/// Purely a cost decision — both paths write the same cells.
const OWNED_APPLY_MIN_BATCH: usize = 4096;

/// Which round-execution strategy [`run`] uses.
///
/// All executors produce **bit-identical trajectories** (same seed ⇒ same
/// rounds, migrations, and final state); they differ only in cost:
///
/// * [`Executor::Dense`] walks all `n` users each round — `O(n)`/round,
///   the reference executor, sound for every protocol;
/// * [`Executor::Sparse`] walks only the unsatisfied users via an
///   incrementally-maintained [`ActiveIndex`] — `O(active)`/round, a large
///   win in the endgame where few users remain unsatisfied. Unsound only
///   for protocols that act while satisfied
///   ([`Protocol::acts_when_satisfied`]); [`run`] detects those and falls
///   back to dense automatically;
/// * [`Executor::Threaded`] shards the dense scan over a persistent
///   [`WorkerPool`] — `O(n / threads)`/round critical path, with one
///   condvar dispatch (not `threads` thread spawns) of overhead per round;
/// * [`Executor::SparseThreaded`] composes both: the active-set walk is
///   sharded over the pool while it is large and runs sequentially once it
///   is small — `O(active / threads)`/round, the same dense fallback rule
///   as [`Executor::Sparse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Executor {
    /// Full `O(n)` scan per round (reference).
    #[default]
    Dense,
    /// Active-set scan, `O(unsatisfied)` per round, with automatic dense
    /// fallback where unsound.
    Sparse,
    /// Dense scan sharded over a persistent pool of this many threads.
    Threaded(usize),
    /// Active-set scan sharded over a persistent pool of this many threads
    /// (with the same automatic dense fallback as [`Executor::Sparse`]).
    SparseThreaded(usize),
}

/// Configuration of one run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Seed of the run; all randomness is derived from it.
    pub seed: u64,
    /// Round budget; the run stops unconverged when exhausted.
    pub max_rounds: u64,
    /// Record a per-round [`Trace`].
    pub record_trace: bool,
    /// Track per-user settling times (needs `record_trace`; O(n)/round).
    pub track_user_times: bool,
    /// Round-execution strategy (default [`Executor::Dense`]).
    pub executor: Executor,
    /// Sample the `k` hottest resources at each observed round end
    /// (0 = off). Flows to [`qlb_obs::Sink::topk`]; the recording sinks
    /// retain a decimated series.
    pub topk_resources: usize,
    /// Record per-shard compute/wake profiles on observed pooled rounds
    /// (default on; irrelevant for sequential executors and disabled
    /// sinks).
    pub shard_timing: bool,
    /// Spill cold assignment chunks to a temp file between rounds (only
    /// meaningful for [`crate::large::run_chunked`]; spill directory from
    /// `QLB_SPILL_DIR`, else the system temp dir).
    pub spill: bool,
}

impl RunConfig {
    /// Plain config: given seed, round budget, no tracing, dense executor.
    pub fn new(seed: u64, max_rounds: u64) -> Self {
        Self {
            seed,
            max_rounds,
            record_trace: false,
            track_user_times: false,
            executor: Executor::Dense,
            topk_resources: 0,
            shard_timing: true,
            spill: false,
        }
    }

    /// Toggle chunk spilling for the chunked huge-`n` executor
    /// (see [`RunConfig::spill`]).
    pub fn with_spill(mut self, on: bool) -> Self {
        self.spill = on;
        self
    }

    /// Sample the `k` hottest resources at each observed round end
    /// (0 disables).
    pub fn with_topk_resources(mut self, k: usize) -> Self {
        self.topk_resources = k;
        self
    }

    /// Toggle per-shard compute/wake profiling of observed pooled rounds.
    pub fn with_shard_timing(mut self, on: bool) -> Self {
        self.shard_timing = on;
        self
    }

    /// Enable per-round tracing.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enable per-user settling-time tracking (implies tracing).
    pub fn with_user_times(mut self) -> Self {
        self.record_trace = true;
        self.track_user_times = true;
        self
    }

    /// Select the round-execution strategy.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Shorthand for [`RunConfig::with_executor`]`(`[`Executor::Sparse`]`)`.
    pub fn sparse(self) -> Self {
        self.with_executor(Executor::Sparse)
    }

    /// Shorthand for [`RunConfig::with_executor`]`(`[`Executor::Threaded`]`)`.
    pub fn threaded(self, threads: usize) -> Self {
        self.with_executor(Executor::Threaded(threads))
    }

    /// Shorthand for
    /// [`RunConfig::with_executor`]`(`[`Executor::SparseThreaded`]`)`.
    pub fn sparse_threaded(self, threads: usize) -> Self {
        self.with_executor(Executor::SparseThreaded(threads))
    }
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// True iff a legal state was reached within the round budget.
    pub converged: bool,
    /// Rounds executed (0 if the initial state was already legal).
    pub rounds: u64,
    /// Total migrations applied.
    pub migrations: u64,
    /// The final state.
    pub state: State,
    /// Per-round trace if requested.
    pub trace: Option<Trace>,
}

/// Run a protocol sequentially until legal or out of rounds, using the
/// executor selected by [`RunConfig::executor`] (dense by default).
///
/// The loop reuses one move buffer, so steady-state execution performs no
/// allocation; with tracing enabled, the trace grows by one entry per round.
pub fn run<P: Protocol + ?Sized>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: RunConfig,
) -> RunOutcome {
    run_observed(inst, state, proto, config, &mut NoopSink)
}

/// [`run`] with an observability sink attached.
///
/// The sink is monomorphized into the round loop (no `dyn`): with the
/// default [`NoopSink`] every emission site compiles away and this is
/// exactly [`run`]. With a recording sink (e.g. [`qlb_obs::Recorder`]) the
/// loop emits per-round events (round start/end, migration batch,
/// convergence check, executor switch), counters, gauges, and
/// decide/apply/convergence phase timings. Observability is derived data
/// only — the trajectory is bit-identical either way (property-tested).
pub fn run_observed<P: Protocol + ?Sized, S: Sink>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: RunConfig,
    sink: &mut S,
) -> RunOutcome {
    match config.executor {
        Executor::Dense => run_dense(inst, state, proto, config, sink),
        Executor::Sparse => run_sparse_observed(inst, state, proto, config, sink),
        Executor::Threaded(threads) => {
            run_threaded_observed(inst, state, proto, config, threads, sink)
        }
        Executor::SparseThreaded(threads) => {
            run_sparse_threaded_observed(inst, state, proto, config, threads, sink)
        }
    }
}

fn run_dense<P: Protocol + ?Sized, S: Sink>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: RunConfig,
    sink: &mut S,
) -> RunOutcome {
    run_with_decider(
        inst,
        state,
        proto,
        config,
        sink,
        |inst, state, proto, seed, round, buf, sink| {
            timed(sink, Phase::Decide, || {
                decide_round_into(inst, state, proto, seed, round, buf)
            });
        },
    )
}

/// The pooled dense decide path's owned state: the struct-of-arrays
/// [`RoundView`] plus one `(deltas, scratch)` slot per shard. During a
/// dispatch each shard locks only its own slot (uncontended by
/// construction); between dispatches the coordinator folds the slots back
/// into the view.
pub(crate) struct ViewShards {
    pub(crate) view: RoundView,
    slots: Vec<Mutex<(ShardDeltas, ShardScratch)>>,
}

impl ViewShards {
    pub(crate) fn new(inst: &Instance, state: &State, shards: usize) -> Self {
        Self {
            view: RoundView::new(inst, state),
            slots: (0..shards)
                .map(|_| Mutex::new((ShardDeltas::new(inst.num_resources()), ShardScratch::new())))
                .collect(),
        }
    }

    /// One pooled dense round: decide all `n` users via the SoA two-pass
    /// kernel (sharded on cache-line boundaries, waking only non-empty
    /// shards), then merge the per-shard deltas so the view mirrors the
    /// post-round state. The move list in `buf` is byte-identical to the
    /// sequential scan's.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn decide_round<P: Protocol + ?Sized, S: Sink>(
        &mut self,
        inst: &Instance,
        proto: &P,
        seed: u64,
        round: u64,
        pool: &WorkerPool,
        buf: &mut Vec<Move>,
        sink: &mut S,
        shard_timing: bool,
    ) {
        let n = inst.num_users();
        let chunk = shard_chunk(n, pool.threads());
        let (view, slots) = (&self.view, &self.slots);
        pool.decide_round_observed_on(
            |shard, out| {
                let lo = (shard * chunk).min(n);
                let hi = ((shard + 1) * chunk).min(n);
                if lo < hi {
                    let mut slot = slots[shard].lock().unwrap();
                    let (deltas, scratch) = &mut *slot;
                    view.decide_shard_into(inst, proto, seed, round, lo, hi, out, scratch, deltas);
                }
            },
            buf,
            sink,
            shard_timing,
            shards_for(n, pool.threads()),
        );
        // Coordinator merge, ordered per the RoundView contract: every
        // shard's loads first, then the assignment writes, then the bit
        // repair of each shard's touched set (which needs final loads).
        timed(sink, Phase::Apply, || {
            for slot in &self.slots {
                self.view.merge_loads(&slot.lock().unwrap().0);
            }
            self.view.apply_assignments(buf);
            for slot in &self.slots {
                self.view.repair_touched(inst, &mut slot.lock().unwrap().0);
            }
        });
    }

    /// [`ViewShards::decide_round`] for the shard-owned executor: large
    /// migration batches are applied **by the workers themselves**, each
    /// writing only its own cache-line-aligned user range of the interior-
    /// mutable assignment array. The decide dispatch drains shards in
    /// order and each shard emits moves in user order, so `buf` is
    /// globally sorted by user index — each worker recovers its slice with
    /// two binary searches, no extra bookkeeping, no array copy.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn decide_round_owned<P: Protocol + ?Sized, S: Sink>(
        &mut self,
        inst: &Instance,
        proto: &P,
        seed: u64,
        round: u64,
        pool: &WorkerPool,
        buf: &mut Vec<Move>,
        sink: &mut S,
        shard_timing: bool,
    ) {
        let n = inst.num_users();
        let chunk = shard_chunk(n, pool.threads());
        let active = shards_for(n, pool.threads());
        let (view, slots) = (&self.view, &self.slots);
        pool.decide_round_observed_on(
            |shard, out| {
                let lo = (shard * chunk).min(n);
                let hi = ((shard + 1) * chunk).min(n);
                if lo < hi {
                    let mut slot = slots[shard].lock().unwrap();
                    let (deltas, scratch) = &mut *slot;
                    view.decide_shard_into(inst, proto, seed, round, lo, hi, out, scratch, deltas);
                }
            },
            buf,
            sink,
            shard_timing,
            active,
        );
        timed(sink, Phase::Apply, || {
            for slot in &self.slots {
                self.view.merge_loads(&slot.lock().unwrap().0);
            }
            if buf.len() >= OWNED_APPLY_MIN_BATCH {
                let view = &self.view;
                let moves: &[Move] = buf;
                pool.run_on(
                    &|shard| {
                        let lo = (shard * chunk).min(n);
                        let hi = ((shard + 1) * chunk).min(n);
                        if lo < hi {
                            let start = moves.partition_point(|mv| mv.user.index() < lo);
                            let end = moves.partition_point(|mv| mv.user.index() < hi);
                            view.apply_shard_assignments(lo, hi, &moves[start..end]);
                        }
                    },
                    active,
                );
            } else {
                self.view.apply_assignments(buf);
            }
            for slot in &self.slots {
                self.view.repair_touched(inst, &mut slot.lock().unwrap().0);
            }
        });
    }
}

/// The **shard-owned** pooled round loop: no dense [`State`] is kept at
/// all. The struct-of-arrays [`RoundView`] is built once from the start
/// state, the workers decide against it and apply their own ranges in
/// place, and the coordinator holds only the `m` per-resource loads plus
/// the per-(class, resource) unsatisfied bitmaps. Steady-state rounds are
/// **zero-copy and zero-allocation** (asserted in the memory bench);
/// memory cost beyond the view is `O(moves)` for the round's batch.
///
/// Trajectory is bit-identical to [`run_pooled_dense`] — same decide
/// kernel, same merge order, same cells written — the only difference is
/// *who* writes the assignment array. Trace recording needs a dense
/// [`State`] per round, so [`run_threaded_observed`] routes traced runs to
/// [`run_pooled_dense`] instead.
fn run_pooled_owned<P: Protocol + ?Sized, S: Sink>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: RunConfig,
    sink: &mut S,
    pool: &WorkerPool,
) -> RunOutcome {
    debug_assert!(!config.record_trace, "traced runs keep the dense state");
    let mut vs = ViewShards::new(inst, &state, pool.threads());
    drop(state); // from here the view IS the state

    let mut moves: Vec<Move> = Vec::new();
    let mut rounds = 0u64;
    let mut migrations = 0u64;
    let mut converged = vs.view.is_legal();
    let mut entering = if S::ENABLED && !converged {
        vs.view.num_unsatisfied() as u64
    } else {
        0
    };

    while !converged && rounds < config.max_rounds {
        if S::ENABLED {
            sink.event(Event::RoundStart {
                round: rounds,
                active: entering,
            });
        }
        vs.decide_round_owned(
            inst,
            proto,
            config.seed,
            rounds,
            pool,
            &mut moves,
            sink,
            config.shard_timing,
        );
        if S::ENABLED {
            sink.add(Counter::DenseRounds, 1);
            sink.event(Event::MigrationBatch {
                round: rounds,
                size: moves.len() as u64,
            });
        }
        migrations += moves.len() as u64;
        rounds += 1;
        converged = timed(sink, Phase::Convergence, || vs.view.is_legal());
        if S::ENABLED {
            let unsatisfied = if converged {
                0
            } else {
                vs.view.num_unsatisfied() as u64
            };
            emit_round_end_loads(
                inst,
                vs.view.loads(),
                sink,
                rounds - 1,
                moves.len() as u64,
                converged,
                unsatisfied,
                config.topk_resources,
            );
            entering = unsatisfied;
        }
    }

    RunOutcome {
        converged,
        rounds,
        migrations,
        state: vs.view.to_state(inst),
        trace: None,
    }
}

/// Dense round loop over a caller-provided persistent [`WorkerPool`]: the
/// full user range is statically sharded once (on cache-line boundaries)
/// and every round is one pool dispatch deciding against the
/// struct-of-arrays [`RoundView`] — contiguous assignment/bitmap arrays
/// instead of the pointer-rich [`State`], per-shard delta buffers instead
/// of shared counters. No per-round allocation: the pool reuses its shard
/// buffers, the view its arrays.
fn run_pooled_dense<P: Protocol + ?Sized, S: Sink>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: RunConfig,
    sink: &mut S,
    pool: &WorkerPool,
) -> RunOutcome {
    let mut vs = ViewShards::new(inst, &state, pool.threads());
    run_with_decider(
        inst,
        state,
        proto,
        config,
        sink,
        move |inst, state, proto, seed, round, buf, sink| {
            if cfg!(debug_assertions) {
                vs.view.assert_synced(inst, state);
            }
            vs.decide_round(
                inst,
                proto,
                seed,
                round,
                pool,
                buf,
                sink,
                config.shard_timing,
            );
        },
    )
}

/// Run a protocol with the **sparse active-set executor**: each round
/// visits only the currently unsatisfied users, making round cost
/// `O(active)` instead of `O(n)`.
///
/// Exact mechanism: an [`ActiveIndex`] tracks the unsatisfied set and
/// per-resource occupant lists. Applying a round's migrations changes the
/// congestion of the touched resources only, and a user's satisfaction
/// depends solely on its own resource's congestion — so the set is updated
/// by rechecking just the occupants of touched resources. Convergence is
/// detected in O(1) as set emptiness (equivalent to [`State::is_legal`]).
///
/// The trajectory is **bit-identical** to [`run`]'s dense executor:
/// decisions are pure functions of `(seed, user, round)` and start-of-round
/// loads, satisfied users consume no randomness, and the active set is
/// walked in user order. Protocols that act while satisfied
/// ([`Protocol::acts_when_satisfied`]) would make the active set unsound,
/// so they **fall back to the dense executor** automatically — the result
/// is identical either way; only the cost differs.
///
/// Crowded rounds (most users unsatisfied, as from a hotspot start) are a
/// loss for the index: maintaining occupant lists under a near-`n`-sized
/// batch costs more than the dense scan it replaces. The executor therefore
/// runs **dense warm-up rounds** while batches stay large and builds the
/// index only once a round's batch drops below `n / 8` — both phases decide
/// identically, so the trajectory is unaffected.
pub fn run_sparse<P: Protocol + ?Sized>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: RunConfig,
) -> RunOutcome {
    run_sparse_observed(inst, state, proto, config, &mut NoopSink)
}

/// [`run_sparse`] with an observability sink attached (see
/// [`run_observed`] for the contract). Additionally emits
/// [`Event::ExecutorSwitch`] when the active-set index is built (or when
/// the protocol forces the dense fallback) and tracks the active-set size
/// gauge.
pub fn run_sparse_observed<P: Protocol + ?Sized, S: Sink>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: RunConfig,
    sink: &mut S,
) -> RunOutcome {
    run_sparse_core(inst, state, proto, config, sink, None)
}

/// Run with the **pooled sparse executor** ([`Executor::SparseThreaded`]):
/// the sparse active-set walk of [`run_sparse`], with large rounds (warm-up
/// dense rounds and big active sets) sharded over a persistent
/// [`WorkerPool`] and small ones decided sequentially. Same trajectory and
/// same automatic dense fallback as [`run_sparse`].
///
/// # Panics
/// Panics if `threads == 0`.
pub fn run_sparse_threaded<P: Protocol + ?Sized>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: RunConfig,
    threads: usize,
) -> RunOutcome {
    run_sparse_threaded_observed(inst, state, proto, config, threads, &mut NoopSink)
}

/// [`run_sparse_threaded`] with an observability sink attached. Pooled
/// rounds additionally split the decide phase into [`Phase::Compute`] and
/// [`Phase::ForkJoin`].
///
/// # Panics
/// Panics if `threads == 0`.
pub fn run_sparse_threaded_observed<P: Protocol + ?Sized, S: Sink>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: RunConfig,
    threads: usize,
    sink: &mut S,
) -> RunOutcome {
    assert!(threads > 0, "need at least one thread");
    if threads == 1 {
        return run_sparse_core(inst, state, proto, config, sink, None);
    }
    let pool = WorkerPool::new(threads);
    run_sparse_core(inst, state, proto, config, sink, Some(&pool))
}

fn run_sparse_core<P: Protocol + ?Sized, S: Sink>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: RunConfig,
    sink: &mut S,
    pool: Option<&WorkerPool>,
) -> RunOutcome {
    if proto.acts_when_satisfied() {
        // the active set would be unsound; record the decision and run dense
        if S::ENABLED {
            sink.event(Event::ExecutorSwitch {
                round: 0,
                sparse: false,
            });
        }
        return match pool {
            Some(pool) => run_pooled_dense(inst, state, proto, config, sink, pool),
            None => run_dense(inst, state, proto, config, sink),
        };
    }

    let mut state = state;
    let mut trace = config.record_trace.then(Trace::default);
    if let Some(t) = trace.as_mut() {
        t.record(inst, &state, 0, 0);
        if config.track_user_times {
            t.record_user_times(inst, &state, 0);
        }
    }

    let n = inst.num_users().max(1);
    let unsat0 = state.num_unsatisfied(inst);
    // start sparse only if the initial state is already in the sparse
    // regime; otherwise warm up with dense rounds
    let mut active: Option<ActiveIndex> = (unsat0 * 8 < n).then(|| ActiveIndex::new(inst, &state));
    if S::ENABLED && active.is_some() {
        sink.add(Counter::ExecutorSwitches, 1);
        sink.event(Event::ExecutorSwitch {
            round: 0,
            sparse: true,
        });
    }
    let mut moves: Vec<Move> = Vec::new();
    let mut scratch: Vec<UserId> = Vec::new();
    // SoA view of the dense warm-up rounds (pooled runs only); dropped at
    // the switch to the sparse index
    let mut warmup_view: Option<ViewShards> = None;
    let mut rounds = 0u64;
    let mut migrations = 0u64;
    let mut converged = unsat0 == 0;
    // carried between rounds (see `emit_round_end`): start count == the
    // previous round's end count
    let mut entering = unsat0 as u64;

    while !converged && rounds < config.max_rounds {
        if S::ENABLED {
            sink.event(Event::RoundStart {
                round: rounds,
                active: entering,
            });
        }
        match active.as_mut() {
            Some(index) => {
                match pool {
                    Some(pool) => {
                        let t0 = S::ENABLED.then(Instant::now);
                        index.sorted_active_into(&mut scratch);
                        let len = scratch.len();
                        if len >= SPARSE_POOL_MIN_ACTIVE {
                            let chunk = shard_chunk(len, pool.threads());
                            let (state_ref, scratch_ref) = (&state, &scratch);
                            // wake only the shards the batch fills — small
                            // active sets stop paying full-pool wake latency
                            pool.decide_round_observed_on(
                                |shard, out| {
                                    let lo = (shard * chunk).min(len);
                                    let hi = ((shard + 1) * chunk).min(len);
                                    if lo < hi {
                                        decide_users_into(
                                            inst,
                                            state_ref,
                                            &scratch_ref[lo..hi],
                                            proto,
                                            config.seed,
                                            rounds,
                                            out,
                                        );
                                    }
                                },
                                &mut moves,
                                sink,
                                config.shard_timing,
                                shards_for(len, pool.threads()),
                            );
                        } else {
                            moves.clear();
                            decide_users_into(
                                inst,
                                &state,
                                &scratch,
                                proto,
                                config.seed,
                                rounds,
                                &mut moves,
                            );
                            if let Some(t0) = t0 {
                                sink.time(Phase::Decide, t0.elapsed().as_nanos() as u64);
                            }
                        }
                    }
                    None => {
                        timed(sink, Phase::Decide, || {
                            decide_active_into(
                                inst,
                                &state,
                                index,
                                proto,
                                config.seed,
                                rounds,
                                &mut moves,
                                &mut scratch,
                            )
                        });
                    }
                }
                if S::ENABLED {
                    sink.add(Counter::SparseRounds, 1);
                    sink.event(Event::MigrationBatch {
                        round: rounds,
                        size: moves.len() as u64,
                    });
                }
                timed(sink, Phase::Apply, || {
                    index.apply_moves(inst, &mut state, &moves)
                });
            }
            None => {
                match pool {
                    Some(pool) => {
                        let vs = warmup_view
                            .get_or_insert_with(|| ViewShards::new(inst, &state, pool.threads()));
                        if cfg!(debug_assertions) {
                            vs.view.assert_synced(inst, &state);
                        }
                        vs.decide_round(
                            inst,
                            proto,
                            config.seed,
                            rounds,
                            pool,
                            &mut moves,
                            sink,
                            config.shard_timing,
                        );
                    }
                    None => {
                        timed(sink, Phase::Decide, || {
                            decide_round_into(inst, &state, proto, config.seed, rounds, &mut moves)
                        });
                    }
                }
                if S::ENABLED {
                    sink.add(Counter::DenseRounds, 1);
                    sink.event(Event::MigrationBatch {
                        round: rounds,
                        size: moves.len() as u64,
                    });
                }
                timed(sink, Phase::Apply, || state.apply_moves(inst, &moves));
                // batch size tracks the active count for the damped
                // kernels; once it shrinks, the index starts paying off
                if moves.len() * 8 < n {
                    active = Some(ActiveIndex::new(inst, &state));
                    warmup_view = None;
                    if S::ENABLED {
                        sink.add(Counter::ExecutorSwitches, 1);
                        sink.event(Event::ExecutorSwitch {
                            round: rounds + 1,
                            sparse: true,
                        });
                    }
                }
            }
        }
        migrations += moves.len() as u64;
        rounds += 1;
        if let Some(t) = trace.as_mut() {
            t.record(inst, &state, rounds, moves.len() as u64);
            if config.track_user_times {
                t.record_user_times(inst, &state, rounds);
            }
        }
        converged = timed(sink, Phase::Convergence, || match active.as_ref() {
            Some(index) => index.is_empty(),
            None => state.is_legal(inst),
        });
        if S::ENABLED {
            // the index tracks the unsatisfied set exactly, so when it is
            // live the count is O(1); the dense warm-up scans
            let unsatisfied = match active.as_ref() {
                Some(index) => index.num_active() as u64,
                None if converged => 0,
                None => state.num_unsatisfied(inst) as u64,
            };
            emit_round_end(
                inst,
                &state,
                sink,
                rounds - 1,
                moves.len() as u64,
                converged,
                unsatisfied,
                config.topk_resources,
            );
            entering = unsatisfied;
            if let Some(index) = active.as_ref() {
                sink.set(Gauge::ActiveSetSize, index.num_active() as u64);
            }
        }
    }

    debug_assert_eq!(converged, state.is_legal(inst));
    RunOutcome {
        converged,
        rounds,
        migrations,
        state,
        trace,
    }
}

/// Run a protocol with round decisions sharded over a persistent
/// [`WorkerPool`] of `threads` threads.
///
/// Produces the **same trajectory** as [`run`] for the same config: user
/// decisions are pure functions of `(seed, user, round)` and the
/// start-of-round state, so sharding only changes who computes them. Shard
/// results are concatenated in user order before application.
///
/// The pool (and its reusable per-shard move buffers) is created **once per
/// run** and every round is dispatched as an epoch bump on parked workers —
/// the earlier `std::thread::scope`-per-round executor paid `threads`
/// thread spawns and fresh shard allocations every round, which dominated
/// endgame rounds (measured in `BENCH_parallel.json`).
///
/// # Panics
/// Panics if `threads == 0`.
pub fn run_threaded<P: Protocol + ?Sized>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: RunConfig,
    threads: usize,
) -> RunOutcome {
    run_threaded_observed(inst, state, proto, config, threads, &mut NoopSink)
}

/// [`run_threaded`] with an observability sink attached (see
/// [`run_observed`] for the contract). The decide phase covers the whole
/// fork/join of a round's shards; pooled rounds additionally split it into
/// [`Phase::Compute`] (longest shard) and [`Phase::ForkJoin`] (dispatch +
/// join + drain overhead).
///
/// # Panics
/// Panics if `threads == 0`.
pub fn run_threaded_observed<P: Protocol + ?Sized, S: Sink>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: RunConfig,
    threads: usize,
    sink: &mut S,
) -> RunOutcome {
    assert!(threads > 0, "need at least one thread");
    // More threads than non-empty shards would park idle workers; size the
    // pool to the real shard count, and skip the pool entirely when one
    // shard (⇒ the sequential scan) covers everything.
    let shards = shard_bounds(inst.num_users(), threads).len();
    if shards <= 1 {
        return run_dense(inst, state, proto, config, sink);
    }
    let pool = WorkerPool::new(shards);
    if config.record_trace {
        // per-round trace entries need a dense State alongside the view
        run_pooled_dense(inst, state, proto, config, sink, &pool)
    } else {
        run_pooled_owned(inst, state, proto, config, sink, &pool)
    }
}

/// Emit the post-round counters, gauges, and events. Everything here is
/// *derived* from the already-updated state — it must never feed back into
/// decisions. `unsatisfied` is passed in (the caller usually has it for
/// free: the sparse index knows it in O(1), and the dense loops reuse it as
/// the next round's `RoundStart` active count, halving the scans). With
/// `topk > 0` the `topk` hottest resources are offered to the sink as a
/// congestion sample.
#[allow(clippy::too_many_arguments)]
fn emit_round_end<S: Sink>(
    inst: &Instance,
    state: &State,
    sink: &mut S,
    round: u64,
    batch: u64,
    converged: bool,
    unsatisfied: u64,
    topk: usize,
) {
    emit_round_end_loads(
        inst,
        state.loads(),
        sink,
        round,
        batch,
        converged,
        unsatisfied,
        topk,
    );
}

/// [`emit_round_end`] from a raw congestion vector — the shard-owned
/// executor has no dense [`State`] to pass, and every emitted quantity is
/// derivable from the loads alone.
#[allow(clippy::too_many_arguments)]
fn emit_round_end_loads<S: Sink>(
    inst: &Instance,
    loads: &[u32],
    sink: &mut S,
    round: u64,
    batch: u64,
    converged: bool,
    unsatisfied: u64,
    topk: usize,
) {
    let overload = (inst.num_classes() == 1).then(|| overload_potential_loads(inst, loads));
    sink.add(Counter::Rounds, 1);
    sink.add(Counter::Migrations, batch);
    sink.set(Gauge::Unsatisfied, unsatisfied);
    if let Some(phi) = overload {
        sink.set(Gauge::Overload, phi);
    }
    sink.event(Event::RoundEnd {
        round,
        migrations: batch,
        unsatisfied,
        overload,
    });
    sink.event(Event::ConvergenceCheck { round, converged });
    if topk > 0 {
        sink.topk(round, &qlb_obs::top_k_entries(loads, topk));
    }
}

/// The dense round loop, generic over how a round is decided. The decider
/// owns its own [`Phase::Decide`] emission (pooled deciders split it into
/// compute and fork/join), which is why it receives the sink.
fn run_with_decider<P, S, D>(
    inst: &Instance,
    mut state: State,
    proto: &P,
    config: RunConfig,
    sink: &mut S,
    mut decide: D,
) -> RunOutcome
where
    P: Protocol + ?Sized,
    S: Sink,
    D: FnMut(&Instance, &State, &P, u64, u64, &mut Vec<Move>, &mut S),
{
    let mut trace = config.record_trace.then(Trace::default);
    if let Some(t) = trace.as_mut() {
        t.record(inst, &state, 0, 0);
        if config.track_user_times {
            t.record_user_times(inst, &state, 0);
        }
    }

    let mut moves: Vec<Move> = Vec::new();
    let mut rounds = 0u64;
    let mut migrations = 0u64;
    let mut converged = state.is_legal(inst);
    // carried from round end to the next round start, so each round does
    // one unsatisfied scan, not two
    let mut entering = if S::ENABLED && !converged {
        state.num_unsatisfied(inst) as u64
    } else {
        0
    };

    while !converged && rounds < config.max_rounds {
        if S::ENABLED {
            sink.event(Event::RoundStart {
                round: rounds,
                active: entering,
            });
        }
        decide(inst, &state, proto, config.seed, rounds, &mut moves, sink);
        if S::ENABLED {
            sink.add(Counter::DenseRounds, 1);
            sink.event(Event::MigrationBatch {
                round: rounds,
                size: moves.len() as u64,
            });
        }
        timed(sink, Phase::Apply, || state.apply_moves(inst, &moves));
        migrations += moves.len() as u64;
        rounds += 1;
        if let Some(t) = trace.as_mut() {
            t.record(inst, &state, rounds, moves.len() as u64);
            if config.track_user_times {
                t.record_user_times(inst, &state, rounds);
            }
        }
        converged = timed(sink, Phase::Convergence, || state.is_legal(inst));
        if S::ENABLED {
            let unsatisfied = if converged {
                0
            } else {
                state.num_unsatisfied(inst) as u64
            };
            emit_round_end(
                inst,
                &state,
                sink,
                rounds - 1,
                moves.len() as u64,
                converged,
                unsatisfied,
                config.topk_resources,
            );
            entering = unsatisfied;
        }
    }

    RunOutcome {
        converged,
        rounds,
        migrations,
        state,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlb_core::{BlindUniform, ResourceId, SlackDamped};
    use qlb_obs::Recorder;

    fn hotspot(n: usize, m: usize, cap: u32) -> (Instance, State) {
        let inst = Instance::uniform(n, m, cap).unwrap();
        let state = State::all_on(&inst, ResourceId(0));
        (inst, state)
    }

    #[test]
    fn already_legal_returns_immediately() {
        let inst = Instance::uniform(8, 4, 3).unwrap();
        let state = State::round_robin(&inst);
        let out = run(
            &inst,
            state,
            &SlackDamped::default(),
            RunConfig::new(1, 100),
        );
        assert!(out.converged);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.migrations, 0);
    }

    #[test]
    fn slack_damped_converges_from_hotspot() {
        let (inst, state) = hotspot(256, 32, 10); // slack factor 1.25
        let out = run(
            &inst,
            state,
            &SlackDamped::default(),
            RunConfig::new(7, 10_000),
        );
        assert!(out.converged, "did not converge in {} rounds", out.rounds);
        assert!(out.state.is_legal(&inst));
        assert!(out.rounds < 200, "took {} rounds", out.rounds);
        assert!(out.migrations >= 256 - 10); // most users had to leave r0
    }

    #[test]
    fn round_budget_respected() {
        let (inst, state) = hotspot(256, 32, 10);
        let out = run(&inst, state, &SlackDamped::default(), RunConfig::new(7, 1));
        assert!(!out.converged);
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn trace_has_initial_plus_per_round_entries() {
        let (inst, state) = hotspot(64, 8, 10);
        let out = run(
            &inst,
            state,
            &SlackDamped::default(),
            RunConfig::new(3, 10_000).with_trace(),
        );
        let trace = out.trace.unwrap();
        assert_eq!(trace.rounds.len() as u64, out.rounds + 1);
        assert_eq!(trace.rounds[0].round, 0);
        assert_eq!(trace.rounds[0].unsatisfied, 64);
        // overload is non-increasing in a *typical* damped run from a
        // hotspot? Not guaranteed per-round; assert the endpoint instead.
        assert_eq!(trace.rounds.last().unwrap().unsatisfied, 0);
        // migrations in trace sum to outcome total
        let total: u64 = trace.rounds.iter().map(|r| r.migrations).sum();
        assert_eq!(total, out.migrations);
    }

    #[test]
    fn user_times_recorded() {
        let (inst, state) = hotspot(64, 8, 10);
        let out = run(
            &inst,
            state,
            &SlackDamped::default(),
            RunConfig::new(3, 10_000).with_user_times(),
        );
        let trace = out.trace.unwrap();
        let times = trace.settling_times();
        assert_eq!(times.len(), 64);
        assert!(times.iter().all(|&t| t <= out.rounds));
        assert!(times.iter().any(|&t| t > 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let (inst, s1) = hotspot(128, 16, 10);
        let s2 = s1.clone();
        let a = run(
            &inst,
            s1,
            &SlackDamped::default(),
            RunConfig::new(9, 10_000),
        );
        let b = run(
            &inst,
            s2,
            &SlackDamped::default(),
            RunConfig::new(9, 10_000),
        );
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.state, b.state);
    }

    #[test]
    fn threaded_matches_sequential_exactly() {
        let (inst, s1) = hotspot(500, 16, 40);
        for threads in [1, 2, 3, 8] {
            let seq = run(
                &inst,
                s1.clone(),
                &SlackDamped::default(),
                RunConfig::new(11, 10_000),
            );
            let par = run_threaded(
                &inst,
                s1.clone(),
                &SlackDamped::default(),
                RunConfig::new(11, 10_000),
                threads,
            );
            assert_eq!(seq.rounds, par.rounds, "threads={threads}");
            assert_eq!(seq.migrations, par.migrations, "threads={threads}");
            assert_eq!(seq.state, par.state, "threads={threads}");
        }
    }

    #[test]
    fn threaded_more_threads_than_users() {
        let (inst, state) = hotspot(4, 2, 3);
        let out = run_threaded(
            &inst,
            state,
            &SlackDamped::default(),
            RunConfig::new(2, 1_000),
            16,
        );
        assert!(out.converged);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let (inst, state) = hotspot(4, 2, 3);
        let _ = run_threaded(
            &inst,
            state,
            &SlackDamped::default(),
            RunConfig::new(2, 10),
            0,
        );
    }

    /// Documents the **blocking phenomenon** of multi-class instances:
    /// satisfied lenient users never move, so they can squat capacity that
    /// strict users need, and the protocol cannot reach the (existing!)
    /// legal state. Convergence in the heterogeneous model needs per-class
    /// headroom: enough resources whose *total* load stays below the strict
    /// class's effective capacity.
    #[test]
    fn multi_class_blocking_prevents_convergence() {
        use qlb_core::InstanceBuilder;
        // One channel, speed 4: strict cap 2, lenient cap 4. One strict +
        // three lenient users on a second identical channel would be legal
        // (strict alone on ch0, lenient trio on ch1), but from the mixed
        // start the lenient users are satisfied (load 4 ≤ 4) and never
        // move, so the strict user (load 4 > 2 everywhere it can see the
        // crowd) can never be satisfied on ch0 — and ch1 hosts the other
        // crowd half. Construct the fully blocked variant: both channels
        // at lenient-satisfying load above the strict cap.
        let inst = InstanceBuilder::new()
            .speeds(vec![4.0, 4.0])
            .latency_class(0.5, 1) // strict: cap 2
            .latency_class(1.0, 5) // lenient: cap 4
            .build()
            .unwrap();
        // A legal state exists — note it must MIX classes (strict + one
        // lenient on ch0 at load 2; four lenient on ch1 at load 4), which
        // is why the segregating greedy cannot find it:
        let legal = State::new(
            &inst,
            vec![
                ResourceId(0), // strict
                ResourceId(0), // lenient sharing under the strict cap
                ResourceId(1),
                ResourceId(1),
                ResourceId(1),
                ResourceId(1),
            ],
        )
        .unwrap();
        assert!(legal.is_legal(&inst));
        // Blocked start: strict + 2 lenient on ch0 (load 3 > strict cap 2,
        // lenient fine), 3 lenient on ch1 (load 3 ≤ 4): every lenient user
        // is satisfied, and no channel has room at the strict cap.
        let assignment = vec![
            ResourceId(0), // strict
            ResourceId(0),
            ResourceId(0),
            ResourceId(1),
            ResourceId(1),
            ResourceId(1),
        ];
        let state = State::new(&inst, assignment).unwrap();
        // ...but the protocol cannot reach it: the strict user finds no
        // channel with room at its cap, and nobody else ever moves.
        let out = run(
            &inst,
            state,
            &SlackDamped::default(),
            RunConfig::new(3, 2_000),
        );
        assert!(!out.converged);
        assert_eq!(out.migrations, 0, "no migration is ever possible");
        assert_eq!(out.state.num_unsatisfied(&inst), 1);
    }

    #[test]
    fn sparse_matches_dense_exactly() {
        let (inst, s1) = hotspot(500, 16, 40);
        for proto in qlb_core::registry(&inst) {
            let dense = run(
                &inst,
                s1.clone(),
                proto.as_ref(),
                RunConfig::new(11, 2_000).with_trace(),
            );
            let sparse = run_sparse(
                &inst,
                s1.clone(),
                proto.as_ref(),
                RunConfig::new(11, 2_000).with_trace(),
            );
            let name = proto.name();
            assert_eq!(dense.converged, sparse.converged, "{name}");
            assert_eq!(dense.rounds, sparse.rounds, "{name}");
            assert_eq!(dense.migrations, sparse.migrations, "{name}");
            assert_eq!(dense.state, sparse.state, "{name}");
            let (dt, st) = (dense.trace.unwrap(), sparse.trace.unwrap());
            assert_eq!(dt.rounds.len(), st.rounds.len(), "{name}");
        }
    }

    #[test]
    fn pooled_executors_match_sequential_exactly() {
        let (inst, s1) = hotspot(500, 16, 40);
        for proto in qlb_core::registry(&inst) {
            let dense = run(&inst, s1.clone(), proto.as_ref(), RunConfig::new(11, 2_000));
            for exec in [
                Executor::Threaded(3),
                Executor::SparseThreaded(2),
                Executor::SparseThreaded(8),
            ] {
                let pooled = run(
                    &inst,
                    s1.clone(),
                    proto.as_ref(),
                    RunConfig::new(11, 2_000).with_executor(exec),
                );
                let name = proto.name();
                assert_eq!(dense.converged, pooled.converged, "{name} {exec:?}");
                assert_eq!(dense.rounds, pooled.rounds, "{name} {exec:?}");
                assert_eq!(dense.migrations, pooled.migrations, "{name} {exec:?}");
                assert_eq!(dense.state, pooled.state, "{name} {exec:?}");
            }
        }
    }

    #[test]
    fn pooled_observed_splits_decide_phase() {
        let (inst, s1) = hotspot(300, 16, 24);
        let mut rec = Recorder::default();
        let out = run_threaded_observed(
            &inst,
            s1,
            &SlackDamped::default(),
            RunConfig::new(5, 10_000),
            4,
            &mut rec,
        );
        assert!(out.converged);
        let t = rec.timers();
        assert_eq!(t.histogram(Phase::Decide).count(), out.rounds);
        assert_eq!(t.histogram(Phase::Compute).count(), out.rounds);
        assert_eq!(t.histogram(Phase::ForkJoin).count(), out.rounds);
        // Decide = Compute + ForkJoin per round, so the totals must agree
        // up to per-sample rounding.
        let decide = t.total_ns(Phase::Decide);
        let split = t.total_ns(Phase::Compute) + t.total_ns(Phase::ForkJoin);
        assert!(split <= decide + out.rounds && decide <= split + out.rounds);
    }

    #[test]
    fn sparse_threaded_more_threads_than_active_users() {
        let (inst, state) = hotspot(6, 3, 3);
        let out = run_sparse_threaded(
            &inst,
            state,
            &SlackDamped::default(),
            RunConfig::new(2, 1_000),
            16,
        );
        assert!(out.converged);
    }

    #[test]
    fn config_executor_selects_sparse() {
        let (inst, s1) = hotspot(128, 16, 10);
        let dense = run(
            &inst,
            s1.clone(),
            &SlackDamped::default(),
            RunConfig::new(9, 10_000),
        );
        let sparse = run(
            &inst,
            s1,
            &SlackDamped::default(),
            RunConfig::new(9, 10_000).sparse(),
        );
        assert!(dense.converged && sparse.converged);
        assert_eq!(dense.rounds, sparse.rounds);
        assert_eq!(dense.migrations, sparse.migrations);
        assert_eq!(dense.state, sparse.state);
    }

    #[test]
    fn sparse_already_legal_returns_immediately() {
        let inst = Instance::uniform(8, 4, 3).unwrap();
        let state = State::round_robin(&inst);
        let out = run_sparse(
            &inst,
            state,
            &SlackDamped::default(),
            RunConfig::new(1, 100),
        );
        assert!(out.converged);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.migrations, 0);
    }

    #[test]
    fn blind_uniform_converges_with_huge_slack_only() {
        // with enormous slack blind scattering works...
        let inst = Instance::uniform(32, 32, 32).unwrap();
        let state = State::all_on(&inst, ResourceId(0));
        let out = run(&inst, state, &BlindUniform, RunConfig::new(5, 10_000));
        assert!(out.converged);
    }

    #[test]
    fn observed_run_is_bit_identical_and_records() {
        let (inst, s1) = hotspot(256, 32, 10);
        let plain = run(
            &inst,
            s1.clone(),
            &SlackDamped::default(),
            RunConfig::new(7, 10_000),
        );
        let mut rec = Recorder::default();
        let observed = run_observed(
            &inst,
            s1,
            &SlackDamped::default(),
            RunConfig::new(7, 10_000),
            &mut rec,
        );
        assert_eq!(plain.rounds, observed.rounds);
        assert_eq!(plain.migrations, observed.migrations);
        assert_eq!(plain.state, observed.state);
        // the recorder agrees with the outcome
        assert_eq!(rec.counter(Counter::Rounds), observed.rounds);
        assert_eq!(rec.counter(Counter::Migrations), observed.migrations);
        assert_eq!(rec.gauge(Gauge::Unsatisfied), 0);
        assert_eq!(
            rec.timers().histogram(Phase::Decide).count(),
            observed.rounds
        );
        // one RoundEnd event per round, in order
        let round_ends: Vec<u64> = rec
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                Event::RoundEnd { round, .. } => Some(round),
                _ => None,
            })
            .collect();
        assert_eq!(round_ends.len() as u64, observed.rounds);
        assert!(round_ends.windows(2).all(|w| w[0] + 1 == w[1]));
    }

    #[test]
    fn observed_sparse_emits_executor_switch() {
        let (inst, s1) = hotspot(256, 32, 10);
        let mut rec = Recorder::default();
        let out = run_sparse_observed(
            &inst,
            s1.clone(),
            &SlackDamped::default(),
            RunConfig::new(7, 10_000),
            &mut rec,
        );
        assert!(out.converged);
        assert_eq!(
            out.state,
            run(
                &inst,
                s1,
                &SlackDamped::default(),
                RunConfig::new(7, 10_000)
            )
            .state
        );
        assert_eq!(rec.counter(Counter::ExecutorSwitches), 1);
        assert!(rec
            .events()
            .iter()
            .any(|(_, e)| matches!(e, Event::ExecutorSwitch { sparse: true, .. })));
        // warm-up rounds + sparse rounds partition the run
        assert_eq!(
            rec.counter(Counter::DenseRounds) + rec.counter(Counter::SparseRounds),
            out.rounds
        );
    }

    #[test]
    fn observed_threaded_matches_sequential() {
        let (inst, s1) = hotspot(200, 16, 16);
        let seq = run(
            &inst,
            s1.clone(),
            &SlackDamped::default(),
            RunConfig::new(3, 10_000),
        );
        let mut rec = Recorder::default();
        let par = run_threaded_observed(
            &inst,
            s1,
            &SlackDamped::default(),
            RunConfig::new(3, 10_000),
            4,
            &mut rec,
        );
        assert_eq!(seq.state, par.state);
        assert_eq!(rec.counter(Counter::Rounds), par.rounds);
    }
}
