//! Churn: perturbation and re-convergence driving (experiment E6).
//!
//! The robustness claim [reconstructed T4] says the protocol re-converges
//! quickly after a batch of users is displaced (arrivals, departures, or
//! failures that re-home users). We model churn as *uniform re-placement*:
//! a fraction `φ` of users is torn from its resource and dropped on a
//! uniformly random one — equivalent to `φ·n` departures followed by `φ·n`
//! oblivious arrivals, the standard worst-case-neutral churn model.

use crate::run::{run_observed, Executor, RunConfig, RunOutcome};
use qlb_core::{Instance, Protocol, ResourceId, State};
use qlb_obs::{Counter, Event, NoopSink, Sink};
use qlb_rng::{Rng64, SplitMix64};

/// Re-home a uniform random `fraction` of users to uniformly random
/// resources. Returns the number of users actually displaced.
///
/// Deterministic in `seed`; independent of protocol streams (different
/// derivation path), so churn never perturbs protocol randomness.
pub fn perturb_uniform(inst: &Instance, state: &mut State, fraction: f64, seed: u64) -> usize {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    let mut rng = SplitMix64::new(qlb_rng::mix64_pair(seed, 0xC0FF_EE00));
    let m = inst.num_resources();
    let mut displaced = 0usize;
    for u in inst.users() {
        if rng.bernoulli(fraction) {
            let to = ResourceId(rng.uniform_usize(m) as u32);
            state.reassign(u, to);
            displaced += 1;
        }
    }
    displaced
}

/// Configuration of a churn experiment episode.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Seed for both the initial convergence and the churn episodes.
    pub seed: u64,
    /// Fraction of users displaced per episode.
    pub fraction: f64,
    /// Number of churn episodes.
    pub episodes: u32,
    /// Round budget per re-convergence.
    pub max_rounds_per_episode: u64,
    /// Executor used for each re-convergence run (default
    /// [`Executor::Dense`]). Churn repair keeps the sparse executor's
    /// [`qlb_core::ActiveIndex`] sound: every re-convergence starts from
    /// the post-perturbation state, so the index is rebuilt fresh each
    /// episode — the trajectory is bit-identical either way
    /// (property-tested).
    pub executor: Executor,
}

/// Result of a churn run.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Rounds needed to re-converge after each episode (length =
    /// `episodes`); an entry equals the budget if re-convergence failed.
    pub recovery_rounds: Vec<u64>,
    /// True iff every episode re-converged within budget.
    pub all_recovered: bool,
    /// Users displaced per episode.
    pub displaced: Vec<usize>,
    /// Final state after the last episode.
    pub state: State,
}

/// Drive repeated churn episodes: starting from a **legal** state, displace
/// a fraction of users, let the protocol re-converge, repeat.
///
/// # Panics
/// Panics if the initial state is not legal (establish one first with
/// `qlb_core::greedy_assign` or a converging run).
pub fn run_with_churn<P: Protocol + ?Sized>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: ChurnConfig,
) -> ChurnOutcome {
    run_with_churn_observed(inst, state, proto, config, &mut NoopSink)
}

/// [`run_with_churn`] with an observability sink attached: each episode
/// emits an [`Event::ChurnEpisode`] and bumps the churn-episode /
/// displaced-user counters; the per-episode re-convergence runs feed the
/// sink through [`run_observed`]. Derived data only — trajectories are
/// bit-identical to the unobserved driver.
///
/// # Panics
/// Panics if the initial state is not legal.
pub fn run_with_churn_observed<P: Protocol + ?Sized, S: Sink>(
    inst: &Instance,
    state: State,
    proto: &P,
    config: ChurnConfig,
    sink: &mut S,
) -> ChurnOutcome {
    assert!(state.is_legal(inst), "churn driver needs a legal start");
    let mut state = state;
    let mut recovery_rounds = Vec::with_capacity(config.episodes as usize);
    let mut displaced = Vec::with_capacity(config.episodes as usize);
    let mut all_recovered = true;

    for episode in 0..config.episodes {
        let ep_seed = qlb_rng::mix64_pair(config.seed, episode as u64 + 1);
        let moved = perturb_uniform(inst, &mut state, config.fraction, ep_seed);
        displaced.push(moved);
        if S::ENABLED {
            sink.add(Counter::ChurnEpisodes, 1);
            sink.add(Counter::DisplacedUsers, moved as u64);
            sink.event(Event::ChurnEpisode {
                episode: episode as u64,
                displaced: moved as u64,
            });
        }
        let out: RunOutcome = run_observed(
            inst,
            state,
            proto,
            RunConfig::new(ep_seed, config.max_rounds_per_episode).with_executor(config.executor),
            sink,
        );
        recovery_rounds.push(out.rounds);
        all_recovered &= out.converged;
        state = out.state;
    }

    ChurnOutcome {
        recovery_rounds,
        all_recovered,
        displaced,
        state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlb_core::{greedy_assign, SlackDamped};

    #[test]
    fn perturb_zero_fraction_is_noop() {
        let inst = Instance::uniform(32, 8, 5).unwrap();
        let mut state = State::round_robin(&inst);
        let before = state.clone();
        assert_eq!(perturb_uniform(&inst, &mut state, 0.0, 1), 0);
        assert_eq!(state, before);
    }

    #[test]
    fn perturb_full_fraction_touches_everyone() {
        let inst = Instance::uniform(32, 8, 5).unwrap();
        let mut state = State::round_robin(&inst);
        assert_eq!(perturb_uniform(&inst, &mut state, 1.0, 1), 32);
        state.debug_assert_invariants();
    }

    #[test]
    fn perturb_is_deterministic() {
        let inst = Instance::uniform(64, 8, 10).unwrap();
        let mut a = State::round_robin(&inst);
        let mut b = State::round_robin(&inst);
        perturb_uniform(&inst, &mut a, 0.3, 99);
        perturb_uniform(&inst, &mut b, 0.3, 99);
        assert_eq!(a, b);
        let mut c = State::round_robin(&inst);
        perturb_uniform(&inst, &mut c, 0.3, 100);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn perturb_rejects_bad_fraction() {
        let inst = Instance::uniform(4, 2, 3).unwrap();
        let mut state = State::round_robin(&inst);
        perturb_uniform(&inst, &mut state, 1.5, 0);
    }

    #[test]
    fn churn_episodes_recover() {
        let inst = Instance::uniform(128, 16, 10).unwrap(); // γ = 1.25
        let legal = greedy_assign(&inst).unwrap();
        let out = run_with_churn(
            &inst,
            legal,
            &SlackDamped::default(),
            ChurnConfig {
                seed: 5,
                fraction: 0.1,
                episodes: 5,
                max_rounds_per_episode: 10_000,
                executor: Executor::Dense,
            },
        );
        assert!(out.all_recovered);
        assert_eq!(out.recovery_rounds.len(), 5);
        assert!(out.state.is_legal(&inst));
        assert!(out.displaced.iter().all(|&d| d <= 128));
        // small perturbations should recover fast
        assert!(out.recovery_rounds.iter().all(|&r| r < 100));
    }

    #[test]
    #[should_panic(expected = "legal start")]
    fn churn_requires_legal_start() {
        let inst = Instance::uniform(16, 2, 2).unwrap();
        let bad = State::all_on(&inst, ResourceId(0));
        let _ = run_with_churn(
            &inst,
            bad,
            &SlackDamped::default(),
            ChurnConfig {
                seed: 1,
                fraction: 0.1,
                episodes: 1,
                max_rounds_per_episode: 10,
                executor: Executor::Dense,
            },
        );
    }

    #[test]
    fn bigger_churn_needs_no_fewer_rounds_on_average() {
        let inst = Instance::uniform(256, 32, 10).unwrap();
        let legal = greedy_assign(&inst).unwrap();
        let small = run_with_churn(
            &inst,
            legal.clone(),
            &SlackDamped::default(),
            ChurnConfig {
                seed: 2,
                fraction: 0.02,
                episodes: 10,
                max_rounds_per_episode: 10_000,
                executor: Executor::Dense,
            },
        );
        let large = run_with_churn(
            &inst,
            legal,
            &SlackDamped::default(),
            ChurnConfig {
                seed: 2,
                fraction: 0.5,
                episodes: 10,
                max_rounds_per_episode: 10_000,
                executor: Executor::Dense,
            },
        );
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(mean(&large.recovery_rounds) >= mean(&small.recovery_rounds));
    }
}
