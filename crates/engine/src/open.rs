//! Open system: users arrive and depart while the protocol runs.
//!
//! The paper's model is closed (`n` fixed); the natural open-system
//! question is whether the protocol keeps *almost everyone* satisfied under
//! continuous arrivals and departures, as long as the offered load stays
//! below capacity. We model it with the **parking trick**: the instance is
//! augmented with one virtual resource of effectively infinite capacity
//! where inactive users "live". Parked users are always satisfied, so they
//! never act; arrivals are reassignments out of parking onto a uniformly
//! random real resource, departures are reassignments back. The protocol
//! itself is unchanged and unaware of the driver — exactly how churn would
//! hit a deployed system.
//!
//! The driver supports the full [`Executor`] family. The sparse executors
//! are the natural fit here: the steady-state active population is usually
//! a small fraction of the user pool, so `O(pool)` dense rounds are almost
//! entirely wasted scans of parked (always-satisfied) users. Arrivals,
//! departures, **and** protocol migrations are all fed to the
//! [`ActiveIndex`] as reassignment deltas with the parking resource
//! exempted from occupant rechecks (its infinite capacity means its
//! occupants' satisfaction never changes), keeping every round
//! `O(churn + active)` instead of `O(pool)`.

use crate::pool::{shard_bounds, shard_chunk, shards_for, WorkerPool};
use crate::run::{Executor, ViewShards};
use qlb_core::step::{decide_active_into, decide_round_into, decide_users_into};
use qlb_core::{ActiveIndex, Instance, Move, Protocol, ResourceId, State, UserId};
use qlb_obs::{timed, Counter, Event, Gauge, NoopSink, Phase, Sink};
use qlb_rng::{Rng64, SplitMix64};
use std::time::Instant;

/// Below this many active users a pooled open-system round decides
/// sequentially (same rationale as the closed-system threshold).
const SPARSE_POOL_MIN_ACTIVE: usize = 1024;

/// Configuration of an open-system run.
#[derive(Debug, Clone, Copy)]
pub struct OpenConfig {
    /// Seed for the driver (arrivals/departures) and the protocol.
    pub seed: u64,
    /// Rounds to simulate.
    pub rounds: u64,
    /// Arrivals injected per round (deterministic rate; fractional rates
    /// accumulate, e.g. `1.5` injects 1 and 2 on alternating rounds).
    pub arrivals_per_round: f64,
    /// Per-round departure probability of each active user.
    pub departure_prob: f64,
    /// Rounds to discard before computing steady-state statistics.
    pub warmup: u64,
    /// Round-execution strategy (default [`Executor::Dense`]; every
    /// executor produces a bit-identical series).
    pub executor: Executor,
    /// Sample the `k` hottest *real* resources (parking excluded) at each
    /// observed round end (0 = off).
    pub topk_resources: usize,
    /// Record per-shard compute/wake profiles on observed pooled rounds
    /// (default on).
    pub shard_timing: bool,
}

impl OpenConfig {
    /// Plain config: given seed, rounds, and rates; no warmup discard,
    /// dense executor.
    pub fn new(seed: u64, rounds: u64, arrivals_per_round: f64, departure_prob: f64) -> Self {
        Self {
            seed,
            rounds,
            arrivals_per_round,
            departure_prob,
            warmup: 0,
            executor: Executor::Dense,
            topk_resources: 0,
            shard_timing: true,
        }
    }

    /// Set the warmup rounds discarded from steady-state statistics.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Select the round-execution strategy.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Sample the `k` hottest real resources at each observed round end
    /// (0 disables).
    pub fn with_topk_resources(mut self, k: usize) -> Self {
        self.topk_resources = k;
        self
    }

    /// Toggle per-shard compute/wake profiling of observed pooled rounds.
    pub fn with_shard_timing(mut self, on: bool) -> Self {
        self.shard_timing = on;
        self
    }
}

/// Per-round observation of an open-system run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenRoundStats {
    /// Round index.
    pub round: u64,
    /// Active (non-parked) users after arrivals/departures.
    pub active: u64,
    /// Unsatisfied users after the protocol round.
    pub unsatisfied: u64,
}

/// Result of an open-system run.
#[derive(Debug, Clone)]
pub struct OpenOutcome {
    /// Per-round series.
    pub series: Vec<OpenRoundStats>,
    /// Mean unsatisfied fraction among active users over the post-warmup
    /// rounds (0 when no users were active).
    pub mean_unsatisfied_frac: f64,
    /// Worst post-warmup unsatisfied fraction.
    pub max_unsatisfied_frac: f64,
    /// Mean active population post-warmup.
    pub mean_active: f64,
}

/// Run an open system over `base_caps` real resources with a user pool of
/// `pool` users (the maximum concurrently active population; arrivals stall
/// when the pool is exhausted).
///
/// # Panics
/// Panics on nonsensical rates (negative arrivals, departure probability
/// outside `[0, 1]`) and on a threaded executor with zero threads.
pub fn run_open_system<P: Protocol + ?Sized>(
    base_caps: &[u32],
    pool: usize,
    proto: &P,
    cfg: OpenConfig,
) -> OpenOutcome {
    run_open_system_observed(base_caps, pool, proto, cfg, &mut NoopSink)
}

/// [`run_open_system`] with an observability sink attached: per-round
/// arrival/departure events and counters, the active-population gauge, and
/// decide/apply phase timings. Derived data only — the trajectory is
/// bit-identical to the unobserved driver.
///
/// # Panics
/// Panics on nonsensical rates, as [`run_open_system`].
pub fn run_open_system_observed<P: Protocol + ?Sized, S: Sink>(
    base_caps: &[u32],
    pool: usize,
    proto: &P,
    cfg: OpenConfig,
    sink: &mut S,
) -> OpenOutcome {
    assert!(cfg.arrivals_per_round >= 0.0, "negative arrival rate");
    assert!(
        (0.0..=1.0).contains(&cfg.departure_prob),
        "departure probability out of range"
    );
    let m = base_caps.len();
    // Parking resource: effectively infinite capacity.
    let mut caps = base_caps.to_vec();
    caps.push(u32::MAX);
    let parking = ResourceId(m as u32);
    let inst = Instance::with_capacities(pool, caps).expect("non-empty capacities");
    let mut state = State::all_on(&inst, parking);

    // Executor selection. The sparse index is unsound for protocols that
    // act while satisfied — those fall back to the dense scan, exactly as
    // the closed-system engine does.
    let sparse_requested = matches!(cfg.executor, Executor::Sparse | Executor::SparseThreaded(_));
    let use_sparse = sparse_requested && !proto.acts_when_satisfied();
    if S::ENABLED && sparse_requested {
        sink.add(Counter::ExecutorSwitches, 1);
        sink.event(Event::ExecutorSwitch {
            round: 0,
            sparse: use_sparse,
        });
    }
    let wpool = match cfg.executor {
        Executor::Threaded(threads) | Executor::SparseThreaded(threads) => {
            assert!(threads > 0, "need at least one thread");
            let shards = shard_bounds(pool, threads).len();
            (shards > 1).then(|| WorkerPool::new(shards))
        }
        _ => None,
    };
    // An open system starts all-parked (zero unsatisfied), so the index is
    // built upfront — there is no crowded warm-up phase to skip.
    let mut index = use_sparse.then(|| ActiveIndex::new(&inst, &state));
    // Dense pooled runs decide against the SoA round view; churn
    // reassignments are mirrored into it so it always reflects the state
    // the next round decides from. (Parked users' bits stay 0 — the
    // parking resource's infinite capacity always satisfies — so the
    // kernel's bitmap pass filters them out at streaming speed.)
    let mut dense_view: Option<ViewShards> = match (&wpool, use_sparse) {
        (Some(wp), false) => Some(ViewShards::new(&inst, &state, wp.threads())),
        _ => None,
    };

    // Parked users as a LIFO stack; active set as a boolean map.
    let mut parked: Vec<UserId> = inst.users().collect();
    let mut active = vec![false; pool];
    let mut active_count = 0u64;

    let mut driver_rng = SplitMix64::new(qlb_rng::mix64_pair(cfg.seed, OPEN_SALT));
    let mut arrival_credit = 0.0f64;
    let mut moves: Vec<Move> = Vec::new();
    let mut scratch: Vec<UserId> = Vec::new();
    let mut changes: Vec<(UserId, ResourceId)> = Vec::new();
    let mut series = Vec::with_capacity(cfg.rounds as usize);

    for round in 0..cfg.rounds {
        // Arrivals.
        arrival_credit += cfg.arrivals_per_round;
        let mut arrived = 0u64;
        changes.clear();
        while arrival_credit >= 1.0 {
            arrival_credit -= 1.0;
            let Some(u) = parked.pop() else { break };
            active[u.index()] = true;
            let r = ResourceId(driver_rng.uniform_usize(m) as u32);
            match index.as_mut() {
                Some(_) => changes.push((u, r)),
                None => {
                    state.reassign(u, r);
                    if let Some(vs) = dense_view.as_mut() {
                        vs.view.reassign(&inst, u, r);
                    }
                }
            }
            arrived += 1;
        }
        if let Some(index) = index.as_mut() {
            index.apply_reassignments(&inst, &mut state, &changes, Some(parking));
        }
        active_count += arrived;
        // Departures. The flag scan visits every pool slot, but the
        // bernoulli draw is consumed only for active users, so the driver
        // stream is independent of the pool layout.
        let mut departed = 0u64;
        changes.clear();
        for (idx, is_active) in active.iter_mut().enumerate() {
            if *is_active && driver_rng.bernoulli(cfg.departure_prob) {
                let u = UserId(idx as u32);
                *is_active = false;
                match index.as_mut() {
                    Some(_) => changes.push((u, parking)),
                    None => {
                        state.reassign(u, parking);
                        if let Some(vs) = dense_view.as_mut() {
                            vs.view.reassign(&inst, u, parking);
                        }
                    }
                }
                parked.push(u);
                departed += 1;
            }
        }
        if let Some(index) = index.as_mut() {
            index.apply_reassignments(&inst, &mut state, &changes, Some(parking));
        }
        active_count -= departed;
        if S::ENABLED {
            if arrived > 0 {
                sink.add(Counter::Arrivals, arrived);
                sink.event(Event::Arrivals {
                    round,
                    count: arrived,
                });
            }
            if departed > 0 {
                sink.add(Counter::Departures, departed);
                sink.event(Event::Departures {
                    round,
                    count: departed,
                });
            }
        }
        if S::ENABLED {
            sink.event(Event::RoundStart {
                round,
                active: match index.as_ref() {
                    Some(index) => index.num_active() as u64,
                    None => state.num_unsatisfied(&inst) as u64,
                },
            });
        }
        // One protocol round (parked users are satisfied and never act).
        match index.as_ref() {
            Some(index) => {
                let t0 = S::ENABLED.then(Instant::now);
                match wpool.as_ref() {
                    Some(wpool) if index.num_active() >= SPARSE_POOL_MIN_ACTIVE => {
                        index.sorted_active_into(&mut scratch);
                        let len = scratch.len();
                        let chunk = shard_chunk(len, wpool.threads());
                        let (state_ref, scratch_ref) = (&state, &scratch);
                        // wake only the shards the batch fills
                        wpool.decide_round_observed_on(
                            |shard, out| {
                                let lo = (shard * chunk).min(len);
                                let hi = ((shard + 1) * chunk).min(len);
                                if lo < hi {
                                    decide_users_into(
                                        &inst,
                                        state_ref,
                                        &scratch_ref[lo..hi],
                                        proto,
                                        cfg.seed,
                                        round,
                                        out,
                                    );
                                }
                            },
                            &mut moves,
                            sink,
                            cfg.shard_timing,
                            shards_for(len, wpool.threads()),
                        );
                    }
                    _ => {
                        decide_active_into(
                            &inst,
                            &state,
                            index,
                            proto,
                            cfg.seed,
                            round,
                            &mut moves,
                            &mut scratch,
                        );
                        if let Some(t0) = t0 {
                            sink.time(Phase::Decide, t0.elapsed().as_nanos() as u64);
                        }
                    }
                }
                if S::ENABLED {
                    sink.add(Counter::SparseRounds, 1);
                }
            }
            None => {
                match wpool.as_ref() {
                    Some(wpool) => {
                        let vs = dense_view
                            .as_mut()
                            .expect("view built for dense pooled run");
                        if cfg!(debug_assertions) {
                            vs.view.assert_synced(&inst, &state);
                        }
                        vs.decide_round(
                            &inst,
                            proto,
                            cfg.seed,
                            round,
                            wpool,
                            &mut moves,
                            sink,
                            cfg.shard_timing,
                        );
                    }
                    None => {
                        timed(sink, Phase::Decide, || {
                            decide_round_into(&inst, &state, proto, cfg.seed, round, &mut moves)
                        });
                    }
                }
                if S::ENABLED {
                    sink.add(Counter::DenseRounds, 1);
                }
            }
        }
        debug_assert!(moves.iter().all(|mv| mv.from != parking));
        match index.as_mut() {
            Some(index) => {
                // Protocol migrations are reassignment deltas too; the
                // parking exemption keeps a stray move *into* parking from
                // triggering an O(parked) occupant recheck.
                changes.clear();
                changes.extend(moves.iter().map(|mv| (mv.user, mv.to)));
                timed(sink, Phase::Apply, || {
                    index.apply_reassignments(&inst, &mut state, &changes, Some(parking))
                });
            }
            None => {
                timed(sink, Phase::Apply, || state.apply_moves(&inst, &moves));
            }
        }

        let unsatisfied = match index.as_ref() {
            Some(index) => index.num_active() as u64,
            None => state.num_unsatisfied(&inst) as u64,
        };
        if S::ENABLED {
            sink.add(Counter::Rounds, 1);
            sink.add(Counter::Migrations, moves.len() as u64);
            sink.set(Gauge::ActiveUsers, active_count);
            sink.set(Gauge::Unsatisfied, unsatisfied);
            if let Some(index) = index.as_ref() {
                sink.set(Gauge::ActiveSetSize, index.num_active() as u64);
            }
            sink.event(Event::RoundEnd {
                round,
                migrations: moves.len() as u64,
                unsatisfied,
                overload: None,
            });
            if cfg.topk_resources > 0 {
                // Slice off the parking resource (index m): its load is the
                // parked population and would swamp any congestion sample.
                let loads = &state.loads()[..m];
                sink.topk(round, &qlb_obs::top_k_entries(loads, cfg.topk_resources));
            }
        }
        series.push(OpenRoundStats {
            round,
            active: active_count,
            unsatisfied,
        });
    }

    // Steady-state statistics.
    let post: Vec<&OpenRoundStats> = series.iter().filter(|s| s.round >= cfg.warmup).collect();
    let frac = |s: &OpenRoundStats| {
        if s.active == 0 {
            0.0
        } else {
            s.unsatisfied as f64 / s.active as f64
        }
    };
    let mean_unsatisfied_frac = if post.is_empty() {
        0.0
    } else {
        post.iter().map(|s| frac(s)).sum::<f64>() / post.len() as f64
    };
    let max_unsatisfied_frac = post.iter().map(|s| frac(s)).fold(0.0, f64::max);
    let mean_active = if post.is_empty() {
        0.0
    } else {
        post.iter().map(|s| s.active as f64).sum::<f64>() / post.len() as f64
    };

    OpenOutcome {
        series,
        mean_unsatisfied_frac,
        max_unsatisfied_frac,
        mean_active,
    }
}

/// Salt separating the arrival/departure driver stream from protocol
/// streams: changing the churn pattern never perturbs protocol coins.
const OPEN_SALT: u64 = 0x4f50_454e; // "OPEN"

#[cfg(test)]
mod tests {
    use super::*;
    use qlb_core::SlackDamped;

    fn cfg(rounds: u64, lambda: f64, mu: f64) -> OpenConfig {
        OpenConfig::new(11, rounds, lambda, mu).with_warmup(rounds / 4)
    }

    #[test]
    fn topk_samples_exclude_parking_resource() {
        use qlb_obs::Recorder;
        let caps = [4u32; 16];
        let mut rec = Recorder::default();
        let _ = run_open_system_observed(
            &caps,
            200,
            &SlackDamped::default(),
            cfg(60, 4.0, 0.05).with_topk_resources(3),
            &mut rec,
        );
        let samples = rec.topk_series().samples();
        assert!(!samples.is_empty(), "no top-k samples retained");
        for (_, entries) in samples {
            assert!(!entries.is_empty() && entries.len() <= 3);
            for e in entries {
                // the parking resource (index m = caps.len()) must never
                // appear in a congestion sample
                assert!((e.resource as usize) < caps.len(), "parking sampled");
            }
        }
    }

    #[test]
    fn underloaded_system_stays_mostly_satisfied() {
        // capacity 64 × 10 = 640; steady-state active ≈ λ/μ = 8/0.05 = 160
        let out = run_open_system(
            &[10u32; 64],
            1000,
            &SlackDamped::default(),
            cfg(400, 8.0, 0.05),
        );
        assert!(out.mean_active > 100.0, "mean active {}", out.mean_active);
        assert!(
            out.mean_unsatisfied_frac < 0.05,
            "unsatisfied fraction {}",
            out.mean_unsatisfied_frac
        );
    }

    #[test]
    fn zero_arrivals_is_empty_and_satisfied() {
        let out = run_open_system(&[5u32; 4], 10, &SlackDamped::default(), cfg(50, 0.0, 0.1));
        assert_eq!(out.mean_active, 0.0);
        assert_eq!(out.mean_unsatisfied_frac, 0.0);
        assert!(out.series.iter().all(|s| s.unsatisfied == 0));
    }

    #[test]
    fn pool_exhaustion_caps_arrivals() {
        let out = run_open_system(&[100u32; 4], 8, &SlackDamped::default(), cfg(100, 5.0, 0.0));
        // no departures: active saturates at the pool size
        assert!(out.series.last().unwrap().active == 8);
    }

    #[test]
    fn fractional_rates_accumulate() {
        let out = run_open_system(
            &[100u32; 4],
            100,
            &SlackDamped::default(),
            cfg(10, 0.5, 0.0),
        );
        // 10 rounds × 0.5 → 5 arrivals
        assert_eq!(out.series.last().unwrap().active, 5);
    }

    #[test]
    fn deterministic_runs() {
        let a = run_open_system(&[10u32; 8], 100, &SlackDamped::default(), cfg(60, 2.0, 0.1));
        let b = run_open_system(&[10u32; 8], 100, &SlackDamped::default(), cfg(60, 2.0, 0.1));
        assert_eq!(a.series, b.series);
    }

    #[test]
    fn every_executor_produces_identical_series() {
        // churn-heavy: high arrival rate against a modest system, so rounds
        // mix large arrival batches, departures, and protocol migrations
        let base = cfg(150, 6.0, 0.08);
        let caps = [8u32; 24];
        let dense = run_open_system(&caps, 400, &SlackDamped::default(), base);
        for exec in [
            Executor::Sparse,
            Executor::Threaded(4),
            Executor::SparseThreaded(3),
        ] {
            let other = run_open_system(
                &caps,
                400,
                &SlackDamped::default(),
                base.with_executor(exec),
            );
            assert_eq!(dense.series, other.series, "{exec:?}");
        }
    }

    #[test]
    fn sparse_falls_back_for_acts_when_satisfied() {
        // a protocol that acts while satisfied makes the active set
        // unsound; the driver must fall back to dense and still match
        let protos = qlb_core::registry(&Instance::with_capacities(4, vec![8; 8]).unwrap());
        let Some(proto) = protos.iter().find(|p| p.acts_when_satisfied()) else {
            return; // registry has no such protocol on this instance shape
        };
        let base = cfg(80, 3.0, 0.1);
        let caps = [8u32; 8];
        let dense = run_open_system(&caps, 100, proto.as_ref(), base);
        let sparse = run_open_system(
            &caps,
            100,
            proto.as_ref(),
            base.with_executor(Executor::Sparse),
        );
        assert_eq!(dense.series, sparse.series);
    }

    #[test]
    #[should_panic(expected = "departure probability")]
    fn bad_departure_prob_rejected() {
        let _ = run_open_system(&[1u32], 1, &SlackDamped::default(), cfg(1, 0.0, 1.5));
    }
}
