//! Open system: users arrive and depart while the protocol runs.
//!
//! The paper's model is closed (`n` fixed); the natural open-system
//! question is whether the protocol keeps *almost everyone* satisfied under
//! continuous arrivals and departures, as long as the offered load stays
//! below capacity. We model it with the **parking trick**: the instance is
//! augmented with one virtual resource of effectively infinite capacity
//! where inactive users "live". Parked users are always satisfied, so they
//! never act; arrivals are reassignments out of parking onto a uniformly
//! random real resource, departures are reassignments back. The protocol
//! itself is unchanged and unaware of the driver — exactly how churn would
//! hit a deployed system.

use qlb_core::step::decide_round_into;
use qlb_core::{Instance, Move, Protocol, ResourceId, State, UserId};
use qlb_obs::{timed, Counter, Event, Gauge, NoopSink, Phase, Sink};
use qlb_rng::{Rng64, SplitMix64};

/// Configuration of an open-system run.
#[derive(Debug, Clone, Copy)]
pub struct OpenConfig {
    /// Seed for the driver (arrivals/departures) and the protocol.
    pub seed: u64,
    /// Rounds to simulate.
    pub rounds: u64,
    /// Arrivals injected per round (deterministic rate; fractional rates
    /// accumulate, e.g. `1.5` injects 1 and 2 on alternating rounds).
    pub arrivals_per_round: f64,
    /// Per-round departure probability of each active user.
    pub departure_prob: f64,
    /// Rounds to discard before computing steady-state statistics.
    pub warmup: u64,
}

/// Per-round observation of an open-system run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenRoundStats {
    /// Round index.
    pub round: u64,
    /// Active (non-parked) users after arrivals/departures.
    pub active: u64,
    /// Unsatisfied users after the protocol round.
    pub unsatisfied: u64,
}

/// Result of an open-system run.
#[derive(Debug, Clone)]
pub struct OpenOutcome {
    /// Per-round series.
    pub series: Vec<OpenRoundStats>,
    /// Mean unsatisfied fraction among active users over the post-warmup
    /// rounds (0 when no users were active).
    pub mean_unsatisfied_frac: f64,
    /// Worst post-warmup unsatisfied fraction.
    pub max_unsatisfied_frac: f64,
    /// Mean active population post-warmup.
    pub mean_active: f64,
}

/// Run an open system over `base_caps` real resources with a user pool of
/// `pool` users (the maximum concurrently active population; arrivals stall
/// when the pool is exhausted).
///
/// # Panics
/// Panics on nonsensical rates (negative arrivals, departure probability
/// outside `[0, 1]`).
pub fn run_open_system<P: Protocol + ?Sized>(
    base_caps: &[u32],
    pool: usize,
    proto: &P,
    cfg: OpenConfig,
) -> OpenOutcome {
    run_open_system_observed(base_caps, pool, proto, cfg, &mut NoopSink)
}

/// [`run_open_system`] with an observability sink attached: per-round
/// arrival/departure events and counters, the active-population gauge, and
/// decide/apply phase timings. Derived data only — the trajectory is
/// bit-identical to the unobserved driver.
///
/// # Panics
/// Panics on nonsensical rates, as [`run_open_system`].
pub fn run_open_system_observed<P: Protocol + ?Sized, S: Sink>(
    base_caps: &[u32],
    pool: usize,
    proto: &P,
    cfg: OpenConfig,
    sink: &mut S,
) -> OpenOutcome {
    assert!(cfg.arrivals_per_round >= 0.0, "negative arrival rate");
    assert!(
        (0.0..=1.0).contains(&cfg.departure_prob),
        "departure probability out of range"
    );
    let m = base_caps.len();
    // Parking resource: effectively infinite capacity.
    let mut caps = base_caps.to_vec();
    caps.push(u32::MAX);
    let parking = ResourceId(m as u32);
    let inst = Instance::with_capacities(pool, caps).expect("non-empty capacities");
    let mut state = State::all_on(&inst, parking);

    // Parked users as a LIFO stack; active set as a boolean map.
    let mut parked: Vec<UserId> = inst.users().collect();
    let mut active = vec![false; pool];

    let mut driver_rng = SplitMix64::new(qlb_rng::mix64_pair(cfg.seed, OPEN_SALT));
    let mut arrival_credit = 0.0f64;
    let mut moves: Vec<Move> = Vec::new();
    let mut series = Vec::with_capacity(cfg.rounds as usize);

    for round in 0..cfg.rounds {
        // Arrivals.
        arrival_credit += cfg.arrivals_per_round;
        let mut arrived = 0u64;
        while arrival_credit >= 1.0 {
            arrival_credit -= 1.0;
            let Some(u) = parked.pop() else { break };
            active[u.index()] = true;
            let r = ResourceId(driver_rng.uniform_usize(m) as u32);
            state.reassign(u, r);
            arrived += 1;
        }
        // Departures.
        let mut departed = 0u64;
        for (idx, is_active) in active.iter_mut().enumerate() {
            if *is_active && driver_rng.bernoulli(cfg.departure_prob) {
                let u = UserId(idx as u32);
                *is_active = false;
                state.reassign(u, parking);
                parked.push(u);
                departed += 1;
            }
        }
        if S::ENABLED {
            if arrived > 0 {
                sink.add(Counter::Arrivals, arrived);
                sink.event(Event::Arrivals {
                    round,
                    count: arrived,
                });
            }
            if departed > 0 {
                sink.add(Counter::Departures, departed);
                sink.event(Event::Departures {
                    round,
                    count: departed,
                });
            }
        }
        if S::ENABLED {
            sink.event(Event::RoundStart {
                round,
                active: state.num_unsatisfied(&inst) as u64,
            });
        }
        // One protocol round (parked users are satisfied and never act).
        timed(sink, Phase::Decide, || {
            decide_round_into(&inst, &state, proto, cfg.seed, round, &mut moves)
        });
        debug_assert!(moves.iter().all(|mv| mv.from != parking));
        timed(sink, Phase::Apply, || state.apply_moves(&inst, &moves));

        let active_count = active.iter().filter(|&&a| a).count() as u64;
        let unsatisfied = state.num_unsatisfied(&inst) as u64;
        if S::ENABLED {
            sink.add(Counter::Rounds, 1);
            sink.add(Counter::Migrations, moves.len() as u64);
            sink.set(Gauge::ActiveUsers, active_count);
            sink.set(Gauge::Unsatisfied, unsatisfied);
            sink.event(Event::RoundEnd {
                round,
                migrations: moves.len() as u64,
                unsatisfied,
                overload: None,
            });
        }
        series.push(OpenRoundStats {
            round,
            active: active_count,
            unsatisfied,
        });
    }

    // Steady-state statistics.
    let post: Vec<&OpenRoundStats> = series.iter().filter(|s| s.round >= cfg.warmup).collect();
    let frac = |s: &OpenRoundStats| {
        if s.active == 0 {
            0.0
        } else {
            s.unsatisfied as f64 / s.active as f64
        }
    };
    let mean_unsatisfied_frac = if post.is_empty() {
        0.0
    } else {
        post.iter().map(|s| frac(s)).sum::<f64>() / post.len() as f64
    };
    let max_unsatisfied_frac = post.iter().map(|s| frac(s)).fold(0.0, f64::max);
    let mean_active = if post.is_empty() {
        0.0
    } else {
        post.iter().map(|s| s.active as f64).sum::<f64>() / post.len() as f64
    };

    OpenOutcome {
        series,
        mean_unsatisfied_frac,
        max_unsatisfied_frac,
        mean_active,
    }
}

/// Salt separating the arrival/departure driver stream from protocol
/// streams: changing the churn pattern never perturbs protocol coins.
const OPEN_SALT: u64 = 0x4f50_454e; // "OPEN"

#[cfg(test)]
mod tests {
    use super::*;
    use qlb_core::SlackDamped;

    fn cfg(rounds: u64, lambda: f64, mu: f64) -> OpenConfig {
        OpenConfig {
            seed: 11,
            rounds,
            arrivals_per_round: lambda,
            departure_prob: mu,
            warmup: rounds / 4,
        }
    }

    #[test]
    fn underloaded_system_stays_mostly_satisfied() {
        // capacity 64 × 10 = 640; steady-state active ≈ λ/μ = 8/0.05 = 160
        let out = run_open_system(
            &[10u32; 64],
            1000,
            &SlackDamped::default(),
            cfg(400, 8.0, 0.05),
        );
        assert!(out.mean_active > 100.0, "mean active {}", out.mean_active);
        assert!(
            out.mean_unsatisfied_frac < 0.05,
            "unsatisfied fraction {}",
            out.mean_unsatisfied_frac
        );
    }

    #[test]
    fn zero_arrivals_is_empty_and_satisfied() {
        let out = run_open_system(&[5u32; 4], 10, &SlackDamped::default(), cfg(50, 0.0, 0.1));
        assert_eq!(out.mean_active, 0.0);
        assert_eq!(out.mean_unsatisfied_frac, 0.0);
        assert!(out.series.iter().all(|s| s.unsatisfied == 0));
    }

    #[test]
    fn pool_exhaustion_caps_arrivals() {
        let out = run_open_system(&[100u32; 4], 8, &SlackDamped::default(), cfg(100, 5.0, 0.0));
        // no departures: active saturates at the pool size
        assert!(out.series.last().unwrap().active == 8);
    }

    #[test]
    fn fractional_rates_accumulate() {
        let out = run_open_system(
            &[100u32; 4],
            100,
            &SlackDamped::default(),
            cfg(10, 0.5, 0.0),
        );
        // 10 rounds × 0.5 → 5 arrivals
        assert_eq!(out.series.last().unwrap().active, 5);
    }

    #[test]
    fn deterministic_runs() {
        let a = run_open_system(&[10u32; 8], 100, &SlackDamped::default(), cfg(60, 2.0, 0.1));
        let b = run_open_system(&[10u32; 8], 100, &SlackDamped::default(), cfg(60, 2.0, 0.1));
        assert_eq!(a.series, b.series);
    }

    #[test]
    #[should_panic(expected = "departure probability")]
    fn bad_departure_prob_rejected() {
        let _ = run_open_system(&[1u32], 1, &SlackDamped::default(), cfg(1, 0.0, 1.5));
    }
}
