//! Round loop for the weighted model.
//!
//! Mirrors the unit model's executor family ([`crate::run`]): a dense
//! reference loop, a sparse active-set loop over
//! [`WeightedActiveIndex`], and pooled variants of both sharded over the
//! persistent [`WorkerPool`]. All four produce bit-identical trajectories;
//! the weighted model has no `acts_when_satisfied` escape hatch, so the
//! sparse executors are sound for **every** weighted protocol and need no
//! dense fallback.

use crate::pool::{shard_bounds, shard_chunk, shards_for, WorkerPool};
use crate::run::Executor;
use qlb_core::weighted::{
    decide_weighted_round_into, decide_weighted_users_into, WeightedActiveIndex, WeightedInstance,
    WeightedProtocol, WeightedRoundView, WeightedState,
};
use qlb_core::{Move, ShardDeltas, ShardScratch, UserId};
use qlb_obs::{timed, Counter, Event, Gauge, NoopSink, Phase, Sink};
use std::sync::Mutex;
use std::time::Instant;

/// Below this many active users a pooled weighted round decides
/// sequentially (same rationale as the unit model's threshold).
const SPARSE_POOL_MIN_ACTIVE: usize = 1024;

/// The weighted pooled dense decide path's owned state: the SoA
/// [`WeightedRoundView`] plus one `(deltas, scratch)` slot per shard —
/// the weighted mirror of the unit model's `ViewShards` in [`crate::run`].
struct WeightedViewShards {
    view: WeightedRoundView,
    slots: Vec<Mutex<(ShardDeltas, ShardScratch)>>,
}

impl WeightedViewShards {
    fn new(inst: &WeightedInstance, state: &WeightedState, shards: usize) -> Self {
        Self {
            view: WeightedRoundView::new(inst, state),
            slots: (0..shards)
                .map(|_| Mutex::new((ShardDeltas::new(inst.num_resources()), ShardScratch::new())))
                .collect(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn decide_round<P: WeightedProtocol + ?Sized, S: Sink>(
        &mut self,
        inst: &WeightedInstance,
        proto: &P,
        seed: u64,
        round: u64,
        pool: &WorkerPool,
        buf: &mut Vec<Move>,
        sink: &mut S,
        shard_timing: bool,
    ) {
        let n = inst.num_users();
        let chunk = shard_chunk(n, pool.threads());
        let (view, slots) = (&self.view, &self.slots);
        pool.decide_round_observed_on(
            |shard, out| {
                let lo = (shard * chunk).min(n);
                let hi = ((shard + 1) * chunk).min(n);
                if lo < hi {
                    let mut slot = slots[shard].lock().unwrap();
                    let (deltas, scratch) = &mut *slot;
                    view.decide_shard_into(inst, proto, seed, round, lo, hi, out, scratch, deltas);
                }
            },
            buf,
            sink,
            shard_timing,
            shards_for(n, pool.threads()),
        );
        timed(sink, Phase::Apply, || {
            for slot in &self.slots {
                self.view.merge_loads(&slot.lock().unwrap().0);
            }
            self.view.apply_assignments(buf);
            for slot in &self.slots {
                self.view.repair_touched(inst, &mut slot.lock().unwrap().0);
            }
        });
    }
}

/// Configuration of one weighted run.
#[derive(Debug, Clone, Copy)]
pub struct WeightedConfig {
    /// Seed of the run; all randomness is derived from it.
    pub seed: u64,
    /// Round budget; the run stops unconverged when exhausted.
    pub max_rounds: u64,
    /// Round-execution strategy (default [`Executor::Dense`]).
    pub executor: Executor,
    /// Sample the `k` hottest resources (by weighted load) at each observed
    /// round end (0 = off).
    pub topk_resources: usize,
    /// Record per-shard compute/wake profiles on observed pooled rounds
    /// (default on).
    pub shard_timing: bool,
}

impl WeightedConfig {
    /// Plain config: given seed and round budget, dense executor.
    pub fn new(seed: u64, max_rounds: u64) -> Self {
        Self {
            seed,
            max_rounds,
            executor: Executor::Dense,
            topk_resources: 0,
            shard_timing: true,
        }
    }

    /// Select the round-execution strategy.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Sample the `k` hottest resources at each observed round end
    /// (0 disables).
    pub fn with_topk_resources(mut self, k: usize) -> Self {
        self.topk_resources = k;
        self
    }

    /// Toggle per-shard compute/wake profiling of observed pooled rounds.
    pub fn with_shard_timing(mut self, on: bool) -> Self {
        self.shard_timing = on;
        self
    }

    /// Shorthand for [`Executor::Sparse`].
    pub fn sparse(self) -> Self {
        self.with_executor(Executor::Sparse)
    }

    /// Shorthand for [`Executor::Threaded`].
    pub fn threaded(self, threads: usize) -> Self {
        self.with_executor(Executor::Threaded(threads))
    }

    /// Shorthand for [`Executor::SparseThreaded`].
    pub fn sparse_threaded(self, threads: usize) -> Self {
        self.with_executor(Executor::SparseThreaded(threads))
    }
}

/// Result of a weighted run.
#[derive(Debug, Clone)]
pub struct WeightedOutcome {
    /// True iff a legal state was reached within the budget.
    pub converged: bool,
    /// Rounds executed.
    pub rounds: u64,
    /// Total migrations.
    pub migrations: u64,
    /// Total *weight* moved (`Σ` over migrations of the mover's demand) —
    /// the transfer-cost metric of the weighted model.
    pub weight_moved: u64,
    /// Final state.
    pub state: WeightedState,
}

/// Run a weighted protocol until legal or out of rounds with the dense
/// sequential executor (the decisions are order-independent exactly as in
/// the unit model, so every other executor produces the same trajectory —
/// select one via [`run_weighted_cfg`]).
pub fn run_weighted<P: WeightedProtocol + ?Sized>(
    inst: &WeightedInstance,
    state: WeightedState,
    proto: &P,
    seed: u64,
    max_rounds: u64,
) -> WeightedOutcome {
    run_weighted_cfg(inst, state, proto, WeightedConfig::new(seed, max_rounds))
}

/// [`run_weighted`] with an observability sink attached: per-round events,
/// the weight-moved counter, and decide/apply/convergence phase timings.
/// Derived data only — trajectories are bit-identical to [`run_weighted`].
pub fn run_weighted_observed<P: WeightedProtocol + ?Sized, S: Sink>(
    inst: &WeightedInstance,
    state: WeightedState,
    proto: &P,
    seed: u64,
    max_rounds: u64,
    sink: &mut S,
) -> WeightedOutcome {
    run_weighted_cfg_observed(
        inst,
        state,
        proto,
        WeightedConfig::new(seed, max_rounds),
        sink,
    )
}

/// Run a weighted protocol with the executor selected by
/// [`WeightedConfig::executor`]. All executors are bit-identical; sparse
/// rounds cost `O(active)` instead of `O(n)` (with the same dense warm-up /
/// batch-size switch rule as the unit model), and the threaded variants
/// shard rounds over a persistent [`WorkerPool`].
pub fn run_weighted_cfg<P: WeightedProtocol + ?Sized>(
    inst: &WeightedInstance,
    state: WeightedState,
    proto: &P,
    config: WeightedConfig,
) -> WeightedOutcome {
    run_weighted_cfg_observed(inst, state, proto, config, &mut NoopSink)
}

/// [`run_weighted_cfg`] with an observability sink attached. Pooled rounds
/// split the decide phase into [`Phase::Compute`] and [`Phase::ForkJoin`].
///
/// # Panics
/// Panics if the executor is threaded with zero threads.
pub fn run_weighted_cfg_observed<P: WeightedProtocol + ?Sized, S: Sink>(
    inst: &WeightedInstance,
    state: WeightedState,
    proto: &P,
    config: WeightedConfig,
    sink: &mut S,
) -> WeightedOutcome {
    match config.executor {
        Executor::Dense => run_weighted_core(inst, state, proto, config, sink, None, false),
        Executor::Sparse => run_weighted_core(inst, state, proto, config, sink, None, true),
        Executor::Threaded(threads) | Executor::SparseThreaded(threads) => {
            assert!(threads > 0, "need at least one thread");
            let sparse = matches!(config.executor, Executor::SparseThreaded(_));
            let shards = shard_bounds(inst.num_users(), threads).len();
            if shards <= 1 {
                return run_weighted_core(inst, state, proto, config, sink, None, sparse);
            }
            let pool = WorkerPool::new(shards);
            run_weighted_core(inst, state, proto, config, sink, Some(&pool), sparse)
        }
    }
}

fn run_weighted_core<P: WeightedProtocol + ?Sized, S: Sink>(
    inst: &WeightedInstance,
    mut state: WeightedState,
    proto: &P,
    config: WeightedConfig,
    sink: &mut S,
    pool: Option<&WorkerPool>,
    use_sparse: bool,
) -> WeightedOutcome {
    let n = inst.num_users().max(1);
    let unsat0 = state.num_unsatisfied(inst);
    // sparse regime from the start ⇒ build the index immediately; otherwise
    // warm up dense and switch when batches shrink (identical decisions
    // either way, so the trajectory is unaffected)
    let mut active: Option<WeightedActiveIndex> =
        (use_sparse && unsat0 * 8 < n).then(|| WeightedActiveIndex::new(inst, &state));
    if S::ENABLED && active.is_some() {
        sink.add(Counter::ExecutorSwitches, 1);
        sink.event(Event::ExecutorSwitch {
            round: 0,
            sparse: true,
        });
    }
    let mut moves: Vec<Move> = Vec::new();
    let mut scratch: Vec<UserId> = Vec::new();
    // SoA view of the dense pooled rounds; dropped at the switch to the
    // sparse index
    let mut warmup_view: Option<WeightedViewShards> = None;
    let mut rounds = 0u64;
    let mut migrations = 0u64;
    let mut weight_moved = 0u64;
    let mut converged = unsat0 == 0;
    // carried from round end to the next round start: one unsatisfied scan
    // per round, not two
    let mut entering = unsat0 as u64;

    while !converged && rounds < config.max_rounds {
        if S::ENABLED {
            sink.event(Event::RoundStart {
                round: rounds,
                active: entering,
            });
        }
        match active.as_ref() {
            Some(index) => {
                let t0 = S::ENABLED.then(Instant::now);
                index.sorted_active_into(&mut scratch);
                let len = scratch.len();
                match pool {
                    Some(pool) if len >= SPARSE_POOL_MIN_ACTIVE => {
                        let chunk = shard_chunk(len, pool.threads());
                        let (state_ref, scratch_ref) = (&state, &scratch);
                        // wake only the shards the batch fills
                        pool.decide_round_observed_on(
                            |shard, out| {
                                let lo = (shard * chunk).min(len);
                                let hi = ((shard + 1) * chunk).min(len);
                                if lo < hi {
                                    decide_weighted_users_into(
                                        inst,
                                        state_ref,
                                        &scratch_ref[lo..hi],
                                        proto,
                                        config.seed,
                                        rounds,
                                        out,
                                    );
                                }
                            },
                            &mut moves,
                            sink,
                            config.shard_timing,
                            shards_for(len, pool.threads()),
                        );
                    }
                    _ => {
                        moves.clear();
                        decide_weighted_users_into(
                            inst,
                            &state,
                            &scratch,
                            proto,
                            config.seed,
                            rounds,
                            &mut moves,
                        );
                        if let Some(t0) = t0 {
                            sink.time(Phase::Decide, t0.elapsed().as_nanos() as u64);
                        }
                    }
                }
                if S::ENABLED {
                    sink.add(Counter::SparseRounds, 1);
                }
            }
            None => {
                match pool {
                    Some(pool) => {
                        let vs = warmup_view.get_or_insert_with(|| {
                            WeightedViewShards::new(inst, &state, pool.threads())
                        });
                        if cfg!(debug_assertions) {
                            vs.view.assert_synced(inst, &state);
                        }
                        vs.decide_round(
                            inst,
                            proto,
                            config.seed,
                            rounds,
                            pool,
                            &mut moves,
                            sink,
                            config.shard_timing,
                        );
                    }
                    None => {
                        timed(sink, Phase::Decide, || {
                            decide_weighted_round_into(
                                inst,
                                &state,
                                proto,
                                config.seed,
                                rounds,
                                &mut moves,
                            )
                        });
                    }
                }
                if S::ENABLED {
                    sink.add(Counter::DenseRounds, 1);
                }
            }
        }
        if S::ENABLED {
            sink.event(Event::MigrationBatch {
                round: rounds,
                size: moves.len() as u64,
            });
        }
        let batch_weight = moves.iter().map(|mv| inst.weight(mv.user)).sum::<u64>();
        weight_moved += batch_weight;
        match active.as_mut() {
            Some(index) => timed(sink, Phase::Apply, || {
                index.apply_moves(inst, &mut state, &moves)
            }),
            None => {
                timed(sink, Phase::Apply, || state.apply_moves(inst, &moves));
                // batch size tracks the active count for the damped
                // kernels; once it shrinks, the index starts paying off
                if use_sparse && moves.len() * 8 < n {
                    active = Some(WeightedActiveIndex::new(inst, &state));
                    warmup_view = None;
                    if S::ENABLED {
                        sink.add(Counter::ExecutorSwitches, 1);
                        sink.event(Event::ExecutorSwitch {
                            round: rounds + 1,
                            sparse: true,
                        });
                    }
                }
            }
        }
        migrations += moves.len() as u64;
        rounds += 1;
        converged = timed(sink, Phase::Convergence, || match active.as_ref() {
            Some(index) => index.is_empty(),
            None => state.is_legal(inst),
        });
        if S::ENABLED {
            let unsatisfied = match active.as_ref() {
                Some(index) => index.num_active() as u64,
                None if converged => 0,
                None => state.num_unsatisfied(inst) as u64,
            };
            sink.add(Counter::Rounds, 1);
            sink.add(Counter::Migrations, moves.len() as u64);
            sink.add(Counter::WeightMoved, batch_weight);
            sink.set(Gauge::Unsatisfied, unsatisfied);
            if let Some(index) = active.as_ref() {
                sink.set(Gauge::ActiveSetSize, index.num_active() as u64);
            }
            sink.event(Event::RoundEnd {
                round: rounds - 1,
                migrations: moves.len() as u64,
                unsatisfied,
                overload: None,
            });
            if config.topk_resources > 0 {
                let entries = qlb_obs::top_k_entries(state.loads(), config.topk_resources);
                sink.topk(rounds - 1, &entries);
            }
            entering = unsatisfied;
        }
    }
    debug_assert_eq!(converged, state.is_legal(inst));
    WeightedOutcome {
        converged,
        rounds,
        migrations,
        weight_moved,
        state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlb_core::weighted::{WeightedConditional, WeightedSlackDamped};
    use qlb_core::ResourceId;

    #[test]
    fn weighted_crowd_converges() {
        // 96 users of weight 2, caps 6 × 64 resources → γ = 2
        let inst = WeightedInstance::new(vec![6; 64], vec![2; 96]).unwrap();
        let state = WeightedState::all_on(&inst, ResourceId(0));
        let out = run_weighted(&inst, state, &WeightedSlackDamped::default(), 3, 10_000);
        assert!(out.converged, "took {} rounds", out.rounds);
        assert!(out.state.is_legal(&inst));
        assert_eq!(out.weight_moved, out.migrations * 2);
    }

    #[test]
    fn mixed_weights_converge_with_slack() {
        let mut weights = vec![1u32; 120];
        weights.extend(vec![4u32; 30]); // total 240
        let inst = WeightedInstance::new(vec![10; 36], weights).unwrap(); // cap 360
        let state = WeightedState::all_on(&inst, ResourceId(0));
        let out = run_weighted(&inst, state, &WeightedSlackDamped::default(), 5, 100_000);
        assert!(out.converged, "took {} rounds", out.rounds);
    }

    #[test]
    fn already_legal_is_zero_rounds() {
        let inst = WeightedInstance::new(vec![10, 10], vec![5, 5]).unwrap();
        let state = WeightedState::new(&inst, vec![ResourceId(0), ResourceId(1)]).unwrap();
        let out = run_weighted(&inst, state, &WeightedConditional, 1, 100);
        assert!(out.converged);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.weight_moved, 0);
    }

    #[test]
    fn budget_respected() {
        let inst = WeightedInstance::new(vec![4; 16], vec![2; 24]).unwrap();
        let state = WeightedState::all_on(&inst, ResourceId(0));
        let out = run_weighted(&inst, state, &WeightedSlackDamped::default(), 1, 1);
        assert_eq!(out.rounds, 1);
        assert!(!out.converged);
    }

    #[test]
    fn deterministic() {
        let inst = WeightedInstance::new(vec![8; 32], vec![3; 48]).unwrap();
        let s = WeightedState::all_on(&inst, ResourceId(0));
        let a = run_weighted(&inst, s.clone(), &WeightedSlackDamped::default(), 9, 10_000);
        let b = run_weighted(&inst, s, &WeightedSlackDamped::default(), 9, 10_000);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.state, b.state);
    }

    #[test]
    fn unit_weights_reproduce_unit_model_run() {
        use qlb_core::{Instance, SlackDamped, State};
        let n = 128;
        let m = 16;
        let cap = 10;
        let wi = WeightedInstance::unit(n, m, cap as u64).unwrap();
        let ui = Instance::uniform(n, m, cap).unwrap();
        let w_out = run_weighted(
            &wi,
            WeightedState::all_on(&wi, ResourceId(0)),
            &WeightedSlackDamped::default(),
            7,
            10_000,
        );
        let u_out = crate::run(
            &ui,
            State::all_on(&ui, ResourceId(0)),
            &SlackDamped::default(),
            crate::RunConfig::new(7, 10_000),
        );
        assert_eq!(w_out.rounds, u_out.rounds);
        assert_eq!(w_out.migrations, u_out.migrations);
        let unit_loads: Vec<u64> = u_out.state.loads().iter().map(|&x| x as u64).collect();
        assert_eq!(w_out.state.loads(), &unit_loads[..]);
    }

    #[test]
    fn every_executor_matches_dense_exactly() {
        let mut weights = vec![1u32; 80];
        weights.extend(vec![4u32; 20]);
        let inst = WeightedInstance::new(vec![8; 24], weights).unwrap();
        let s = WeightedState::all_on(&inst, ResourceId(0));
        let protos: [&dyn WeightedProtocol; 2] =
            [&WeightedSlackDamped::default(), &WeightedConditional];
        for proto in protos {
            let dense = run_weighted_cfg(&inst, s.clone(), proto, WeightedConfig::new(11, 10_000));
            for exec in [
                Executor::Sparse,
                Executor::Threaded(3),
                Executor::SparseThreaded(4),
            ] {
                let other = run_weighted_cfg(
                    &inst,
                    s.clone(),
                    proto,
                    WeightedConfig::new(11, 10_000).with_executor(exec),
                );
                let name = proto.name();
                assert_eq!(dense.converged, other.converged, "{name} {exec:?}");
                assert_eq!(dense.rounds, other.rounds, "{name} {exec:?}");
                assert_eq!(dense.migrations, other.migrations, "{name} {exec:?}");
                assert_eq!(dense.weight_moved, other.weight_moved, "{name} {exec:?}");
                assert_eq!(dense.state, other.state, "{name} {exec:?}");
            }
        }
    }

    #[test]
    fn observed_run_samples_topk_and_shard_profile() {
        use qlb_obs::Recorder;
        let inst = WeightedInstance::new(vec![8; 32], vec![3; 48]).unwrap();
        let state = WeightedState::all_on(&inst, ResourceId(0));
        let mut rec = Recorder::default();
        let out = run_weighted_cfg_observed(
            &inst,
            state,
            &WeightedSlackDamped::default(),
            WeightedConfig::new(9, 10_000)
                .threaded(3)
                .with_topk_resources(4),
            &mut rec,
        );
        assert!(out.converged);
        let samples = rec.topk_series().samples();
        assert!(!samples.is_empty(), "no top-k samples retained");
        // samples are taken at round end: descending by load, ≤ k entries
        let (round0, entries0) = &samples[0];
        assert_eq!(*round0, 0);
        assert!(!entries0.is_empty() && entries0.len() <= 4);
        assert!(entries0.windows(2).all(|w| w[0].load >= w[1].load));
        // dense pooled rounds were profiled per shard
        let st = rec.shard_timers();
        assert!(!st.is_empty(), "no shard profile recorded");
        assert_eq!(st.num_shards(), 3);
    }

    #[test]
    fn sparse_observed_counts_round_split() {
        use qlb_obs::Recorder;
        // endgame-shaped start: 3 weight-2 users on each of 64 cap-8
        // resources (satisfied), plus 2 extra crowding resource 0 — only
        // r0's 5 occupants are unsatisfied, so the run starts sparse
        let inst = WeightedInstance::new(vec![8; 64], vec![2; 194]).unwrap();
        let mut assignment: Vec<ResourceId> = (0..192).map(|i| ResourceId(i / 3)).collect();
        assignment.extend([ResourceId(0), ResourceId(0)]);
        let state = WeightedState::new(&inst, assignment).unwrap();
        let mut rec = Recorder::default();
        let out = run_weighted_cfg_observed(
            &inst,
            state,
            &WeightedSlackDamped::default(),
            WeightedConfig::new(3, 10_000).sparse(),
            &mut rec,
        );
        assert!(out.converged);
        assert_eq!(
            rec.counter(Counter::DenseRounds) + rec.counter(Counter::SparseRounds),
            out.rounds
        );
        assert!(rec.counter(Counter::SparseRounds) > 0, "never went sparse");
        assert_eq!(rec.counter(Counter::WeightMoved), out.weight_moved);
    }

    #[test]
    fn threads_beyond_users_collapse_to_sequential() {
        let inst = WeightedInstance::new(vec![4; 4], vec![2; 6]).unwrap();
        let state = WeightedState::all_on(&inst, ResourceId(0));
        let out = run_weighted_cfg(
            &inst,
            state,
            &WeightedSlackDamped::default(),
            WeightedConfig::new(2, 10_000).threaded(64),
        );
        assert!(out.converged);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let inst = WeightedInstance::new(vec![4; 4], vec![2; 6]).unwrap();
        let state = WeightedState::all_on(&inst, ResourceId(0));
        let _ = run_weighted_cfg(
            &inst,
            state,
            &WeightedSlackDamped::default(),
            WeightedConfig::new(2, 10).threaded(0),
        );
    }
}
