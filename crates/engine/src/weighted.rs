//! Round loop for the weighted model.

use qlb_core::weighted::{
    decide_weighted_round_into, WeightedInstance, WeightedProtocol, WeightedState,
};
use qlb_core::Move;
use qlb_obs::{timed, Counter, Event, Gauge, NoopSink, Phase, Sink};

/// Result of a weighted run.
#[derive(Debug, Clone)]
pub struct WeightedOutcome {
    /// True iff a legal state was reached within the budget.
    pub converged: bool,
    /// Rounds executed.
    pub rounds: u64,
    /// Total migrations.
    pub migrations: u64,
    /// Total *weight* moved (`Σ` over migrations of the mover's demand) —
    /// the transfer-cost metric of the weighted model.
    pub weight_moved: u64,
    /// Final state.
    pub state: WeightedState,
}

/// Run a weighted protocol until legal or out of rounds (sequential; the
/// decisions are order-independent exactly as in the unit model, so a
/// sharded executor would produce the same trajectory).
pub fn run_weighted<P: WeightedProtocol + ?Sized>(
    inst: &WeightedInstance,
    state: WeightedState,
    proto: &P,
    seed: u64,
    max_rounds: u64,
) -> WeightedOutcome {
    run_weighted_observed(inst, state, proto, seed, max_rounds, &mut NoopSink)
}

/// [`run_weighted`] with an observability sink attached: per-round events,
/// the weight-moved counter, and decide/apply/convergence phase timings.
/// Derived data only — trajectories are bit-identical to [`run_weighted`].
pub fn run_weighted_observed<P: WeightedProtocol + ?Sized, S: Sink>(
    inst: &WeightedInstance,
    mut state: WeightedState,
    proto: &P,
    seed: u64,
    max_rounds: u64,
    sink: &mut S,
) -> WeightedOutcome {
    let mut moves: Vec<Move> = Vec::new();
    let mut rounds = 0u64;
    let mut migrations = 0u64;
    let mut weight_moved = 0u64;
    let mut converged = state.is_legal(inst);
    // carried from round end to the next round start: one unsatisfied scan
    // per round, not two
    let mut entering = if S::ENABLED && !converged {
        state.num_unsatisfied(inst) as u64
    } else {
        0
    };
    while !converged && rounds < max_rounds {
        if S::ENABLED {
            sink.event(Event::RoundStart {
                round: rounds,
                active: entering,
            });
        }
        timed(sink, Phase::Decide, || {
            decide_weighted_round_into(inst, &state, proto, seed, rounds, &mut moves)
        });
        let batch_weight = moves.iter().map(|mv| inst.weight(mv.user)).sum::<u64>();
        weight_moved += batch_weight;
        timed(sink, Phase::Apply, || state.apply_moves(inst, &moves));
        migrations += moves.len() as u64;
        rounds += 1;
        converged = timed(sink, Phase::Convergence, || state.is_legal(inst));
        if S::ENABLED {
            let unsatisfied = if converged {
                0
            } else {
                state.num_unsatisfied(inst) as u64
            };
            sink.add(Counter::Rounds, 1);
            sink.add(Counter::Migrations, moves.len() as u64);
            sink.add(Counter::WeightMoved, batch_weight);
            sink.set(Gauge::Unsatisfied, unsatisfied);
            sink.event(Event::RoundEnd {
                round: rounds - 1,
                migrations: moves.len() as u64,
                unsatisfied,
                overload: None,
            });
            entering = unsatisfied;
        }
    }
    WeightedOutcome {
        converged,
        rounds,
        migrations,
        weight_moved,
        state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlb_core::weighted::{WeightedConditional, WeightedSlackDamped};
    use qlb_core::ResourceId;

    #[test]
    fn weighted_crowd_converges() {
        // 96 users of weight 2, caps 6 × 64 resources → γ = 2
        let inst = WeightedInstance::new(vec![6; 64], vec![2; 96]).unwrap();
        let state = WeightedState::all_on(&inst, ResourceId(0));
        let out = run_weighted(&inst, state, &WeightedSlackDamped::default(), 3, 10_000);
        assert!(out.converged, "took {} rounds", out.rounds);
        assert!(out.state.is_legal(&inst));
        assert_eq!(out.weight_moved, out.migrations * 2);
    }

    #[test]
    fn mixed_weights_converge_with_slack() {
        let mut weights = vec![1u32; 120];
        weights.extend(vec![4u32; 30]); // total 240
        let inst = WeightedInstance::new(vec![10; 36], weights).unwrap(); // cap 360
        let state = WeightedState::all_on(&inst, ResourceId(0));
        let out = run_weighted(&inst, state, &WeightedSlackDamped::default(), 5, 100_000);
        assert!(out.converged, "took {} rounds", out.rounds);
    }

    #[test]
    fn already_legal_is_zero_rounds() {
        let inst = WeightedInstance::new(vec![10, 10], vec![5, 5]).unwrap();
        let state = WeightedState::new(&inst, vec![ResourceId(0), ResourceId(1)]).unwrap();
        let out = run_weighted(&inst, state, &WeightedConditional, 1, 100);
        assert!(out.converged);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.weight_moved, 0);
    }

    #[test]
    fn budget_respected() {
        let inst = WeightedInstance::new(vec![4; 16], vec![2; 24]).unwrap();
        let state = WeightedState::all_on(&inst, ResourceId(0));
        let out = run_weighted(&inst, state, &WeightedSlackDamped::default(), 1, 1);
        assert_eq!(out.rounds, 1);
        assert!(!out.converged);
    }

    #[test]
    fn deterministic() {
        let inst = WeightedInstance::new(vec![8; 32], vec![3; 48]).unwrap();
        let s = WeightedState::all_on(&inst, ResourceId(0));
        let a = run_weighted(&inst, s.clone(), &WeightedSlackDamped::default(), 9, 10_000);
        let b = run_weighted(&inst, s, &WeightedSlackDamped::default(), 9, 10_000);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.state, b.state);
    }

    #[test]
    fn unit_weights_reproduce_unit_model_run() {
        use qlb_core::{Instance, SlackDamped, State};
        let n = 128;
        let m = 16;
        let cap = 10;
        let wi = WeightedInstance::unit(n, m, cap as u64).unwrap();
        let ui = Instance::uniform(n, m, cap).unwrap();
        let w_out = run_weighted(
            &wi,
            WeightedState::all_on(&wi, ResourceId(0)),
            &WeightedSlackDamped::default(),
            7,
            10_000,
        );
        let u_out = crate::run(
            &ui,
            State::all_on(&ui, ResourceId(0)),
            &SlackDamped::default(),
            crate::RunConfig::new(7, 10_000),
        );
        assert_eq!(w_out.rounds, u_out.rounds);
        assert_eq!(w_out.migrations, u_out.migrations);
        let unit_loads: Vec<u64> = u_out.state.loads().iter().map(|&x| x as u64).collect();
        assert_eq!(w_out.state.loads(), &unit_loads[..]);
    }
}
