//! Huge-`n` executor over chunked, lazily-materialized assignments.
//!
//! The dense executors hold 4 bytes per user in the assignment array (and
//! the pooled ones a second copy in the round view); at `n = 10⁸` that is
//! closer to a gigabyte than to cache. This driver runs the same
//! synchronous rounds over a [`ChunkedAssign`]: chunks of users that have
//! never split off their start resource stay **uniform** (`O(1)` memory),
//! and with [`RunConfig::with_spill`] cold materialized chunks are parked
//! in a spill file so resident memory stays bounded by the touched set.
//!
//! Bit-identity with the dense reference executor rests on the same gate
//! as the sparse one: satisfied users return from the kernel **before
//! consuming any randomness**, so an entire uniform chunk on a satisfied
//! resource can be skipped in `O(1)` without perturbing any other user's
//! `(seed, user, round)` stream. The skip is taken only when that gate is
//! sound — single-class instances and protocols that do not act while
//! satisfied; otherwise every user is walked (identical output, higher
//! cost).

use crate::run::{RunConfig, RunOutcome};
use qlb_core::step::decide_user;
use qlb_core::{ChunkedAssign, ClassId, Instance, Move, Protocol, State, UserId};
use qlb_obs::{timed, Counter, Event, Gauge, NoopSink, Phase, Sink};

/// Materialized chunks kept resident between rounds when spilling is on:
/// 64 chunks × 256 KiB = 16 MiB of hot assignment data.
const SPILL_RESIDENT_CHUNKS: usize = 64;

/// Run a protocol over a chunked assignment until legal or out of rounds
/// (sequential; see module docs for the memory model). Tracing is not
/// supported here — a per-round dense trace would defeat the point — so
/// [`RunConfig::record_trace`] is ignored and the outcome carries no
/// trace.
pub fn run_chunked<P: Protocol + ?Sized>(
    inst: &Instance,
    assign: ChunkedAssign,
    proto: &P,
    config: RunConfig,
) -> (RunOutcome, ChunkedAssign) {
    run_chunked_observed(inst, assign, proto, config, &mut NoopSink)
}

/// [`run_chunked`] with an observability sink attached (same emission
/// contract as [`crate::run::run_observed`], minus per-shard timings —
/// this executor is sequential).
pub fn run_chunked_observed<P: Protocol + ?Sized, S: Sink>(
    inst: &Instance,
    mut assign: ChunkedAssign,
    proto: &P,
    config: RunConfig,
    sink: &mut S,
) -> (RunOutcome, ChunkedAssign) {
    let m = inst.num_resources();
    let n = inst.num_users();
    assert_eq!(
        assign.num_users(),
        n,
        "assignment does not cover the instance"
    );

    if config.spill && !assign.spill_enabled() {
        let dir = std::env::var_os("QLB_SPILL_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let path = dir.join(format!("qlb-spill-{}.bin", std::process::id()));
        assign
            .enable_spill(&path)
            .expect("cannot create spill file");
    }

    let mut loads = assign.count_loads(m);
    // The O(1) uniform-chunk skip is sound exactly when the satisfied gate
    // fires before any randomness: single-class capacities and a protocol
    // that never acts while satisfied.
    let can_skip = inst.num_classes() == 1 && !proto.acts_when_satisfied();
    let caps: Vec<u32> = (0..m)
        .map(|r| inst.cap(ClassId(0), qlb_core::ResourceId(r as u32)))
        .collect();

    let mut moves: Vec<Move> = Vec::new();
    let mut scratch: Vec<u32> = Vec::new();
    let mut rounds = 0u64;
    let mut migrations = 0u64;
    let mut converged = is_legal_chunked(inst, &mut assign, &loads, &caps);
    let mut entering = if S::ENABLED && !converged {
        count_unsatisfied(inst, &mut assign, &loads, &caps)
    } else {
        0
    };

    while !converged && rounds < config.max_rounds {
        if S::ENABLED {
            sink.event(Event::RoundStart {
                round: rounds,
                active: entering,
            });
        }
        timed(sink, Phase::Decide, || {
            moves.clear();
            for c in 0..assign.num_chunks() {
                if can_skip {
                    if let Some(r) = assign.uniform_of(c) {
                        let (cap, load) = (caps[r.index()], loads[r.index()]);
                        if cap > 0 && load <= cap {
                            continue; // whole chunk satisfied: no randomness consumed
                        }
                    }
                }
                let (lo, vals) = assign.read_chunk(c, &mut scratch);
                for (i, &own) in vals.iter().enumerate() {
                    let user = UserId((lo + i) as u32);
                    if let Some(mv) = decide_user(
                        inst,
                        &loads,
                        qlb_core::ResourceId(own),
                        user,
                        proto,
                        config.seed,
                        rounds,
                    ) {
                        moves.push(mv);
                    }
                }
            }
        });
        if S::ENABLED {
            sink.add(Counter::DenseRounds, 1);
            sink.event(Event::MigrationBatch {
                round: rounds,
                size: moves.len() as u64,
            });
        }
        timed(sink, Phase::Apply, || {
            for mv in &moves {
                assign.set(mv.user, mv.to);
                loads[mv.from.index()] -= 1;
                loads[mv.to.index()] += 1;
            }
        });
        migrations += moves.len() as u64;
        rounds += 1;
        if config.spill {
            assign.spill_over(SPILL_RESIDENT_CHUNKS);
        }
        converged = timed(sink, Phase::Convergence, || {
            is_legal_chunked(inst, &mut assign, &loads, &caps)
        });
        if S::ENABLED {
            let unsatisfied = if converged {
                0
            } else {
                count_unsatisfied(inst, &mut assign, &loads, &caps)
            };
            sink.add(Counter::Rounds, 1);
            sink.add(Counter::Migrations, moves.len() as u64);
            sink.set(Gauge::Unsatisfied, unsatisfied);
            sink.event(Event::RoundEnd {
                round: rounds - 1,
                migrations: moves.len() as u64,
                unsatisfied,
                overload: (inst.num_classes() == 1)
                    .then(|| qlb_core::overload_potential_loads(inst, &loads)),
            });
            sink.event(Event::ConvergenceCheck {
                round: rounds - 1,
                converged,
            });
            if config.topk_resources > 0 {
                sink.topk(
                    rounds - 1,
                    &qlb_obs::top_k_entries(&loads, config.topk_resources),
                );
            }
            entering = unsatisfied;
        }
    }

    let state = assign
        .to_state(inst)
        .expect("chunked executor invariant: assignment stays valid");
    debug_assert_eq!(state.loads(), &loads[..]);
    (
        RunOutcome {
            converged,
            rounds,
            migrations,
            state,
            trace: None,
        },
        assign,
    )
}

/// Legality over loads alone for single-class instances (`O(m)`); the
/// multi-class check probes every user through the chunked array.
fn is_legal_chunked(
    inst: &Instance,
    assign: &mut ChunkedAssign,
    loads: &[u32],
    caps: &[u32],
) -> bool {
    if inst.num_classes() == 1 {
        // a resource is fine iff it is empty or within its (positive) cap
        return loads
            .iter()
            .zip(caps)
            .all(|(&x, &c)| x == 0 || (c > 0 && x <= c));
    }
    count_unsatisfied(inst, assign, loads, caps) == 0
}

fn count_unsatisfied(
    inst: &Instance,
    assign: &mut ChunkedAssign,
    loads: &[u32],
    _caps: &[u32],
) -> u64 {
    let mut scratch = Vec::new();
    let mut count = 0u64;
    for c in 0..assign.num_chunks() {
        let (lo, vals) = assign.read_chunk(c, &mut scratch);
        for (i, &own) in vals.iter().enumerate() {
            let user = UserId((lo + i) as u32);
            let cap = inst.cap(inst.class_of(user), qlb_core::ResourceId(own));
            if !(cap > 0 && loads[own as usize] <= cap) {
                count += 1;
            }
        }
    }
    count
}

/// Convenience: start every user on one resource (the adversarial hotspot
/// start of the paper's experiments) without materializing a dense state.
pub fn hotspot_chunked(inst: &Instance, r: qlb_core::ResourceId) -> ChunkedAssign {
    ChunkedAssign::uniform(inst.num_users(), r)
}

/// Convenience: build a chunked assignment from a dense [`State`].
pub fn chunked_from_state(state: &State) -> ChunkedAssign {
    ChunkedAssign::from_state(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run, RunConfig};
    use qlb_core::{ResourceId, SlackDamped};

    #[test]
    fn chunked_matches_dense_exactly_across_registry() {
        let inst = Instance::uniform(500, 16, 40).unwrap();
        let start = State::all_on(&inst, ResourceId(0));
        for proto in qlb_core::registry(&inst) {
            let dense = run(
                &inst,
                start.clone(),
                proto.as_ref(),
                RunConfig::new(11, 2_000),
            );
            let (chunked, _) = run_chunked(
                &inst,
                ChunkedAssign::from_state(&start),
                proto.as_ref(),
                RunConfig::new(11, 2_000),
            );
            let name = proto.name();
            assert_eq!(dense.converged, chunked.converged, "{name}");
            assert_eq!(dense.rounds, chunked.rounds, "{name}");
            assert_eq!(dense.migrations, chunked.migrations, "{name}");
            assert_eq!(dense.state, chunked.state, "{name}");
        }
    }

    #[test]
    fn chunked_uniform_start_matches_dense() {
        let inst = Instance::uniform(300, 8, 50).unwrap();
        let dense = run(
            &inst,
            State::all_on(&inst, ResourceId(2)),
            &SlackDamped::default(),
            RunConfig::new(5, 2_000),
        );
        let (chunked, assign) = run_chunked(
            &inst,
            hotspot_chunked(&inst, ResourceId(2)),
            &SlackDamped::default(),
            RunConfig::new(5, 2_000),
        );
        assert_eq!(dense.state, chunked.state);
        assert_eq!(assign.count_loads(8), dense.state.loads());
    }

    #[test]
    fn chunked_with_spill_matches_dense() {
        let inst = Instance::uniform(400, 16, 30).unwrap();
        let start = State::all_on(&inst, ResourceId(0));
        let dense = run(
            &inst,
            start.clone(),
            &SlackDamped::default(),
            RunConfig::new(9, 2_000),
        );
        let (chunked, _) = run_chunked(
            &inst,
            ChunkedAssign::from_state(&start),
            &SlackDamped::default(),
            RunConfig::new(9, 2_000).with_spill(true),
        );
        assert_eq!(dense.state, chunked.state);
        assert_eq!(dense.rounds, chunked.rounds);
    }

    #[test]
    fn chunked_multi_class_matches_dense() {
        use qlb_core::InstanceBuilder;
        let inst = InstanceBuilder::new()
            .speeds(vec![4.0, 4.0, 4.0, 4.0])
            .latency_class(1.0, 6)
            .latency_class(2.0, 6)
            .build()
            .unwrap();
        let start = State::all_on(&inst, ResourceId(0));
        let dense = run(
            &inst,
            start.clone(),
            &SlackDamped::default(),
            RunConfig::new(3, 2_000),
        );
        let (chunked, _) = run_chunked(
            &inst,
            ChunkedAssign::from_state(&start),
            &SlackDamped::default(),
            RunConfig::new(3, 2_000),
        );
        assert_eq!(dense.converged, chunked.converged);
        assert_eq!(dense.state, chunked.state);
    }
}
