//! End-to-end equivalence of the SoA pooled decide path.
//!
//! The struct-of-arrays round view (`qlb_core::view`) re-implements the
//! dense decide kernel with a bitmap pre-filter, batched RNG draws, and
//! per-shard delta merging. These tests pin the contract that makes it
//! shippable: **every executor produces the byte-identical trajectory**,
//! across the full protocol registry, thread counts {1, 2, 3, 8}, and all
//! three drivers (closed, open-with-churn, weighted). Debug builds
//! additionally run the drivers' internal `assert_synced` checks every
//! pooled round, so a drifting view fails loudly here.

use qlb_core::weighted::{
    WeightedConditional, WeightedInstance, WeightedProtocol, WeightedSlackDamped, WeightedState,
};
use qlb_core::{Instance, InstanceBuilder, ResourceId, State};
use qlb_engine::{
    run, run_open_system, run_weighted_cfg, Executor, OpenConfig, RunConfig, WeightedConfig,
};

const THREADS: [usize; 4] = [1, 2, 3, 8];

#[test]
fn closed_registry_matches_dense_across_thread_counts() {
    // large enough that the pooled branches actually shard (8 threads ⇒
    // 208-user shards) and the sparse-threaded run crosses the 1024-active
    // pooled threshold during warm-up
    let inst = Instance::uniform(1600, 32, 120).unwrap();
    let state = State::all_on(&inst, ResourceId(0));
    for proto in qlb_core::registry(&inst) {
        let name = proto.name();
        let dense = run(
            &inst,
            state.clone(),
            proto.as_ref(),
            RunConfig::new(13, 400),
        );
        for threads in THREADS {
            for exec in [
                Executor::Threaded(threads),
                Executor::SparseThreaded(threads),
            ] {
                let pooled = run(
                    &inst,
                    state.clone(),
                    proto.as_ref(),
                    RunConfig::new(13, 400).with_executor(exec),
                );
                assert_eq!(dense.converged, pooled.converged, "{name} {exec:?}");
                assert_eq!(dense.rounds, pooled.rounds, "{name} {exec:?}");
                assert_eq!(dense.migrations, pooled.migrations, "{name} {exec:?}");
                assert_eq!(dense.state, pooled.state, "{name} {exec:?}");
            }
        }
    }
}

#[test]
fn multi_class_registry_matches_dense_across_thread_counts() {
    // two QoS classes over shared channels: the kernel's per-class bitmap
    // indexing (class_ids array) is live on this shape
    let inst = InstanceBuilder::new()
        .speeds(vec![12.0; 24])
        .latency_class(0.5, 400) // strict: cap 6 per channel
        .latency_class(1.0, 500) // lenient: cap 12 per channel
        .build()
        .unwrap();
    let state = State::all_on(&inst, ResourceId(0));
    for proto in qlb_core::registry(&inst) {
        let name = proto.name();
        let dense = run(
            &inst,
            state.clone(),
            proto.as_ref(),
            RunConfig::new(29, 200),
        );
        for threads in THREADS {
            for exec in [
                Executor::Threaded(threads),
                Executor::SparseThreaded(threads),
            ] {
                let pooled = run(
                    &inst,
                    state.clone(),
                    proto.as_ref(),
                    RunConfig::new(29, 200).with_executor(exec),
                );
                assert_eq!(dense.rounds, pooled.rounds, "{name} {exec:?}");
                assert_eq!(dense.migrations, pooled.migrations, "{name} {exec:?}");
                assert_eq!(dense.state, pooled.state, "{name} {exec:?}");
            }
        }
    }
}

#[test]
fn open_churn_matches_dense_across_thread_counts() {
    // heavy churn against a saturated system: arrivals/departures mutate
    // the assignment between every round, exercising the view's
    // reassignment mirroring, and the active population (≈ 2000 beyond
    // round 50) crosses the sparse pooled threshold
    let caps = [8u32; 32];
    let cfg = OpenConfig::new(17, 120, 40.0, 0.02).with_warmup(30);
    for proto in qlb_core::registry(&Instance::with_capacities(4, caps.to_vec()).unwrap()) {
        let name = proto.name();
        let dense = run_open_system(&caps, 3000, proto.as_ref(), cfg);
        for threads in THREADS {
            for exec in [
                Executor::Threaded(threads),
                Executor::SparseThreaded(threads),
            ] {
                let pooled = run_open_system(&caps, 3000, proto.as_ref(), cfg.with_executor(exec));
                assert_eq!(dense.series, pooled.series, "{name} {exec:?}");
            }
        }
    }
}

#[test]
fn weighted_matches_dense_across_thread_counts() {
    let mut weights = vec![1u32; 1200];
    weights.extend(vec![4u32; 300]); // total 2400
    let inst = WeightedInstance::new(vec![60; 48], weights).unwrap(); // cap 2880
    let state = WeightedState::all_on(&inst, ResourceId(0));
    let protos: [&dyn WeightedProtocol; 2] =
        [&WeightedSlackDamped::default(), &WeightedConditional];
    for proto in protos {
        let name = proto.name();
        let dense = run_weighted_cfg(&inst, state.clone(), proto, WeightedConfig::new(23, 600));
        for threads in THREADS {
            for exec in [
                Executor::Threaded(threads),
                Executor::SparseThreaded(threads),
            ] {
                let pooled = run_weighted_cfg(
                    &inst,
                    state.clone(),
                    proto,
                    WeightedConfig::new(23, 600).with_executor(exec),
                );
                assert_eq!(dense.converged, pooled.converged, "{name} {exec:?}");
                assert_eq!(dense.rounds, pooled.rounds, "{name} {exec:?}");
                assert_eq!(dense.migrations, pooled.migrations, "{name} {exec:?}");
                assert_eq!(dense.weight_moved, pooled.weight_moved, "{name} {exec:?}");
                assert_eq!(dense.state, pooled.state, "{name} {exec:?}");
            }
        }
    }
}
