//! Delta-compressed snapshots against live runs.
//!
//! `qlb_core::StateDelta` is the wire format the actor runtime's recovery
//! path, the obs trailer checkpoint, and `ServeCore::state` export all
//! ride on, so its contract is pinned end to end here: a **chain of
//! per-round deltas** (each encoded old → new and serialized through the
//! byte format) applied to the initial assignment must reproduce the dense
//! final `State` bit-identically — across the full protocol registry, and
//! through churn episodes that displace users outside any protocol round
//! and force an `ActiveIndex` repair.
//!
//! The `large_n` test at the bottom is the nightly memory-scale smoke: a
//! pooled shard-owned run plus a whole-run delta round-trip at n = 10⁷
//! (ignored by default; CI's nightly job runs `-- --ignored large_n`).

use qlb_core::{ActiveIndex, Instance, ResourceId, State, StateDelta};
use qlb_engine::{perturb_uniform, run, Executor, RunConfig};

/// Encode one generation step and push the round-tripped bytes — every
/// delta in a chain crosses the serialized form, like the runtime's and
/// the trailer's do.
fn encode_step(chain: &mut Vec<StateDelta>, old: &[u32], new: &[u32]) {
    let gen = chain.len() as u64;
    let d = StateDelta::encode(old, new, gen, gen + 1);
    let d = StateDelta::from_bytes(&d.to_bytes()).expect("wire round trip");
    assert_eq!(d.base_gen(), gen);
    chain.push(d);
}

/// Apply a chain in order to `start` and return the replayed assignment.
fn replay(chain: &[StateDelta], start: &[u32]) -> Vec<u32> {
    let mut assign = start.to_vec();
    for (g, d) in chain.iter().enumerate() {
        d.apply(&mut assign, g as u64)
            .expect("chain applies in order");
    }
    assign
}

fn assignment_u32(state: &State) -> Vec<u32> {
    state.assignment().iter().map(|r| r.0).collect()
}

#[test]
fn delta_chain_reproduces_every_registry_protocol() {
    let inst = Instance::uniform(1600, 32, 120).unwrap();
    let start = State::all_on(&inst, ResourceId(0));
    for proto in qlb_core::registry(&inst) {
        let name = proto.name();
        let mut state = start.clone();
        let mut chain = Vec::new();
        let mut moves = Vec::new();
        for round in 0..400u64 {
            let before = assignment_u32(&state);
            qlb_core::step::decide_round_into(&inst, &state, proto.as_ref(), 13, round, &mut moves);
            state.apply_moves(&inst, &moves);
            encode_step(&mut chain, &before, &assignment_u32(&state));
            if moves.is_empty() && state.is_legal(&inst) {
                break;
            }
        }
        // the chain replay matches the dense trajectory's end state…
        let replayed = replay(&chain, &assignment_u32(&start));
        assert_eq!(replayed, assignment_u32(&state), "{name}: chain diverged");
        // …and so does applying the chain to a dense State clone
        let mut replica = start.clone();
        for (g, d) in chain.iter().enumerate() {
            d.apply_to_state(&mut replica, g as u64)
                .expect("state replay applies");
        }
        assert_eq!(replica, state, "{name}: State replay diverged");
        // a single whole-run delta says the same thing more compactly
        let whole = StateDelta::encode_states(&start, &state, 0, chain.len() as u64);
        let mut assign = assignment_u32(&start);
        whole
            .apply(&mut assign, 0)
            .expect("whole-run delta applies");
        assert_eq!(assign, assignment_u32(&state), "{name}: whole-run delta");
    }
}

#[test]
fn delta_chain_survives_churn_episodes_and_index_repair() {
    let inst = Instance::uniform(1200, 24, 80).unwrap();
    let start = State::all_on(&inst, ResourceId(0));
    let proto = qlb_core::SlackDamped::default();
    let mut state = start.clone();
    let mut index = ActiveIndex::new(&inst, &state);
    let mut chain = Vec::new();
    let mut moves = Vec::new();
    let mut scratch = Vec::new();
    for round in 0..300u64 {
        let before = assignment_u32(&state);
        // churn episode every 40 rounds: displace users outside any
        // protocol round, then repair the sparse executor's index — the
        // delta must capture these moves exactly like protocol moves
        if round > 0 && round % 40 == 0 {
            let displaced = perturb_uniform(&inst, &mut state, 0.10, 99 + round);
            assert!(displaced > 0, "churn fraction never displaced anyone");
            index = ActiveIndex::new(&inst, &state);
        }
        qlb_core::step::decide_active_into(
            &inst,
            &state,
            &index,
            &proto,
            31,
            round,
            &mut moves,
            &mut scratch,
        );
        index.apply_moves(&inst, &mut state, &moves);
        encode_step(&mut chain, &before, &assignment_u32(&state));
    }
    index.assert_consistent(&inst, &state);
    let replayed = replay(&chain, &assignment_u32(&start));
    assert_eq!(replayed, assignment_u32(&state), "churned chain diverged");
    // stale or out-of-order application is rejected, not silently wrong
    let mut assign = assignment_u32(&start);
    assert!(chain[1].apply(&mut assign, 0).is_err(), "gen gap accepted");
}

/// Nightly memory-scale smoke (run with `cargo test --release -- --ignored
/// large_n`): the shard-owned pooled executor converges a 10⁷-user
/// hotspot run, and one whole-run delta reproduces its final assignment.
#[test]
#[ignore = "nightly large-n smoke: ~10^7 users, release build recommended"]
fn large_n_pooled_run_and_delta_round_trip() {
    let n = 10_000_000;
    let inst = Instance::uniform(n, n / 8, 10).unwrap();
    let start = State::all_on(&inst, ResourceId(0));
    let proto = qlb_core::SlackDamped::default();
    let out = run(
        &inst,
        start.clone(),
        &proto,
        RunConfig::new(7, 10_000).with_executor(Executor::Threaded(8)),
    );
    assert!(out.converged, "large-n pooled run must converge");
    let d = StateDelta::encode_states(&start, &out.state, 0, out.rounds);
    let d = StateDelta::from_bytes(&d.to_bytes()).expect("wire round trip");
    let mut assign = assignment_u32(&start);
    d.apply(&mut assign, 0).expect("whole-run delta applies");
    assert_eq!(assign, assignment_u32(&out.state), "large-n delta diverged");
}
