//! One Criterion group per paper table/figure: times the core measurement
//! loop of every experiment (quick scale). `bench_eN_*` regenerates the
//! numbers behind table/figure N's rows; wall-clock regressions here mean
//! the corresponding experiment path got slower.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qlb_bench::{standard_pair, standard_scenario};
use qlb_core::{
    best_response_run, BlindUniform, ConditionalUniform, ResourceId, SlackDamped,
    SlackDampedCapacitySampling, State, ThresholdLevels,
};
use qlb_engine::{perturb_uniform, run, run_threaded, RunConfig};
use qlb_runtime::{run_distributed, RuntimeConfig};
use qlb_workload::{CapacityDist, ClassSpec, Placement, Scenario};
use std::hint::black_box;

const N: usize = 1 << 10;

fn bench_e1_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_scaling");
    for e in [8u32, 10, 12] {
        let n = 1usize << e;
        let (inst, state) = standard_pair(n, 1);
        g.bench_function(format!("n{n}"), |b| {
            b.iter_batched(
                || state.clone(),
                |s| {
                    black_box(run(
                        &inst,
                        s,
                        &SlackDamped::default(),
                        RunConfig::new(1, 100_000),
                    ))
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_e2_slack(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_slack");
    for gamma in [1.05f64, 1.25, 2.0] {
        let sc = Scenario::single_class(
            "e2",
            N,
            N / 8,
            CapacityDist::Constant { cap: 8 },
            gamma,
            Placement::Hotspot,
        );
        let (inst, state) = sc.build(1).unwrap();
        g.bench_function(format!("gamma{gamma}"), |b| {
            b.iter_batched(
                || state.clone(),
                |s| {
                    black_box(run(
                        &inst,
                        s,
                        &SlackDamped::default(),
                        RunConfig::new(1, 1_000_000),
                    ))
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_e3_potential(c: &mut Criterion) {
    let (inst, state) = standard_pair(N, 1);
    c.bench_function("e3_potential_trace", |b| {
        b.iter_batched(
            || state.clone(),
            |s| {
                black_box(run(
                    &inst,
                    s,
                    &SlackDamped::default(),
                    RunConfig::new(1, 100_000).with_trace(),
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_e4_herding(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_herding");
    let n = 1 << 9;
    let sc = Scenario::single_class(
        "e4",
        n,
        (n as f64 * 1.05 / 2.0).ceil() as usize,
        CapacityDist::Constant { cap: 2 },
        1.05,
        Placement::Hotspot,
    );
    let (inst, state) = sc.build(0).unwrap();
    g.bench_function("blind", |b| {
        b.iter_batched(
            || state.clone(),
            |s| black_box(run(&inst, s, &BlindUniform, RunConfig::new(0, 500))),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("conditional", |b| {
        b.iter_batched(
            || state.clone(),
            |s| black_box(run(&inst, s, &ConditionalUniform, RunConfig::new(0, 500))),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("damped", |b| {
        b.iter_batched(
            || state.clone(),
            |s| {
                black_box(run(
                    &inst,
                    s,
                    &SlackDamped::default(),
                    RunConfig::new(0, 500),
                ))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_e5_skew(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_skew");
    let sc = Scenario::single_class(
        "e5",
        N,
        N / 8,
        CapacityDist::Zipf {
            alpha: 1.0,
            max_cap: (N / 4) as u32,
        },
        1.25,
        Placement::Hotspot,
    );
    let (inst, state) = sc.build(1).unwrap();
    g.bench_function("uniform_sampling", |b| {
        b.iter_batched(
            || state.clone(),
            |s| {
                black_box(run(
                    &inst,
                    s,
                    &SlackDamped::default(),
                    RunConfig::new(1, 1_000_000),
                ))
            },
            BatchSize::SmallInput,
        )
    });
    let prop = SlackDampedCapacitySampling::new(&inst);
    g.bench_function("capacity_sampling", |b| {
        b.iter_batched(
            || state.clone(),
            |s| black_box(run(&inst, s, &prop, RunConfig::new(1, 1_000_000))),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_e6_churn(c: &mut Criterion) {
    let (inst, _) = standard_pair(N, 1);
    let legal = qlb_core::greedy_assign(&inst).unwrap();
    c.bench_function("e6_churn_episode", |b| {
        b.iter_batched(
            || legal.clone(),
            |mut s| {
                perturb_uniform(&inst, &mut s, 0.1, 7);
                black_box(run(
                    &inst,
                    s,
                    &SlackDamped::default(),
                    RunConfig::new(7, 100_000),
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_e7_async(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_async");
    g.sample_size(10);
    let n = 1 << 9;
    let (inst, state) = standard_pair(n, 1);
    for d in [0u64, 4] {
        g.bench_function(format!("delay{d}"), |b| {
            b.iter_batched(
                || state.clone(),
                |s| {
                    black_box(run_distributed(
                        &inst,
                        s,
                        &SlackDamped::default(),
                        RuntimeConfig::new(1, 200_000)
                            .with_shards(4, 2)
                            .with_max_delay(d),
                    ))
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_e8_classes(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_classes");
    for k in [2usize, 4] {
        let n = 1 << 9;
        let sc = Scenario {
            name: format!("e8-k{k}"),
            n: 0,
            m: n / 4,
            capacity: CapacityDist::Constant { cap: 16 },
            slack_factor: None,
            placement: Placement::Hotspot,
            classes: (0..k)
                .map(|i| ClassSpec::Latency {
                    threshold: (i as f64 + 1.0) / 2.0,
                    count: n / k,
                })
                .collect(),
        };
        let (inst, state) = sc.build(1).unwrap();
        let proto = ThresholdLevels::new(k as u32);
        g.bench_function(format!("levels_k{k}"), |b| {
            b.iter_batched(
                || state.clone(),
                |s| black_box(run(&inst, s, &proto, RunConfig::new(1, 1_000_000))),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_e9_migrations(c: &mut Criterion) {
    let (inst, state) = standard_pair(N, 1);
    c.bench_function("e9_best_response", |b| {
        b.iter_batched(
            || state.clone(),
            |s| black_box(best_response_run(&inst, s, (N as u64) * 4)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_e10_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_threads");
    g.sample_size(10);
    let n = 1 << 14;
    let (inst, state) = standard_pair(n, 1);
    for threads in [1usize, 2, 4] {
        g.bench_function(format!("threads{threads}"), |b| {
            b.iter_batched(
                || state.clone(),
                |s| {
                    black_box(run_threaded(
                        &inst,
                        s,
                        &SlackDamped::default(),
                        RunConfig::new(1, 100_000),
                        threads,
                    ))
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_e11_flow(c: &mut Criterion) {
    // feasibility oracle on a moderately sized eligibility instance
    let kk = 4usize;
    let m = 256usize;
    let mut tbl = vec![0u32; kk * m];
    let mut seedgen = 0xE11u64;
    for r in 0..m {
        let cap = 1 + (qlb_rng::mix64(seedgen) % 16) as u32;
        seedgen = seedgen.wrapping_add(1);
        for k in 0..kk {
            if qlb_rng::mix64(seedgen ^ (k as u64)) % 10 < 7 {
                tbl[k * m + r] = cap;
            }
        }
    }
    let sizes = vec![200usize; kk];
    c.bench_function("e11_flow_oracle", |b| {
        b.iter(|| black_box(qlb_flow::flow_feasible(&sizes, &tbl, m)))
    });
}

fn bench_e12_fairness(c: &mut Criterion) {
    let (inst, state) = standard_pair(N, 1);
    c.bench_function("e12_user_times", |b| {
        b.iter_batched(
            || state.clone(),
            |s| {
                black_box(run(
                    &inst,
                    s,
                    &SlackDamped::default(),
                    RunConfig::new(1, 100_000).with_user_times(),
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_scenario_build(c: &mut Criterion) {
    let sc = standard_scenario(N);
    c.bench_function("scenario_build", |b| {
        b.iter(|| black_box(sc.build(3).unwrap()))
    });
    let _ = State::all_on(&standard_pair(64, 0).0, ResourceId(0)); // keep imports honest
}

fn bench_e13_weighted(c: &mut Criterion) {
    use qlb_core::weighted::{WeightedInstance, WeightedSlackDamped, WeightedState};
    let inst = WeightedInstance::new(vec![10; 128], vec![2; 512]).unwrap(); // γ = 1.25
    let state = WeightedState::all_on(&inst, ResourceId(0));
    c.bench_function("e13_weighted_run", |b| {
        b.iter_batched(
            || state.clone(),
            |s| {
                black_box(qlb_engine::run_weighted(
                    &inst,
                    s,
                    &WeightedSlackDamped::default(),
                    1,
                    100_000,
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_e14_open(c: &mut Criterion) {
    use qlb_engine::{run_open_system, OpenConfig};
    let caps = vec![10u32; 64];
    c.bench_function("e14_open_system_200_rounds", |b| {
        b.iter(|| {
            black_box(run_open_system(
                &caps,
                1024,
                &SlackDamped::default(),
                OpenConfig::new(1, 200, 8.0, 0.05).with_warmup(50),
            ))
        })
    });
}

fn bench_e15_damping(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_damping");
    let (inst, state) = standard_pair(N, 1);
    for beta in [0.5f64, 1.0, 2.0] {
        let proto = SlackDamped::with_damping(beta);
        g.bench_function(format!("beta{beta}"), |b| {
            b.iter_batched(
                || state.clone(),
                |s| black_box(run(&inst, s, &proto, RunConfig::new(1, 100_000))),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_e16_loss(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16_loss");
    g.sample_size(10);
    let n = 1 << 9;
    let (inst, state) = standard_pair(n, 1);
    for p in [0.0f64, 0.5] {
        g.bench_function(format!("loss{p}"), |b| {
            b.iter_batched(
                || state.clone(),
                |s| {
                    black_box(run_distributed(
                        &inst,
                        s,
                        &SlackDamped::default(),
                        RuntimeConfig::new(1, 200_000)
                            .with_shards(4, 2)
                            .with_stale_prob(p),
                    ))
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_e17_topology(c: &mut Criterion) {
    use qlb_topo::{Graph, GraphDiffusion};
    let mut g = c.benchmark_group("e17_topology");
    g.sample_size(10);
    let m = 64usize;
    let n = m * 8;
    let inst = qlb_core::Instance::uniform(n, m, 10).unwrap();
    let state = State::all_on(&inst, ResourceId(0));
    for (name, graph) in [("ring", Graph::ring(m)), ("torus", Graph::torus(8, 8))] {
        let proto = GraphDiffusion::new(graph);
        g.bench_function(name, |b| {
            b.iter_batched(
                || state.clone(),
                |s| black_box(run(&inst, s, &proto, RunConfig::new(1, 1_000_000))),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_e18_exact(c: &mut Criterion) {
    c.bench_function("e18_exact_chain_3x4_n7", |b| {
        b.iter(|| black_box(qlb_analysis::exact_expected_rounds(vec![4, 4, 4], 7)))
    });
}

fn bench_e19_participation(c: &mut Criterion) {
    use qlb_core::PartialParticipation;
    let (inst, state) = standard_pair(N, 1);
    let proto = PartialParticipation::new(SlackDamped::default(), 0.25);
    c.bench_function("e19_participation_quarter", |b| {
        b.iter_batched(
            || state.clone(),
            |s| black_box(run(&inst, s, &proto, RunConfig::new(1, 1_000_000))),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    tables,
    bench_e1_scaling,
    bench_e2_slack,
    bench_e3_potential,
    bench_e4_herding,
    bench_e5_skew,
    bench_e6_churn,
    bench_e7_async,
    bench_e8_classes,
    bench_e9_migrations,
    bench_e10_threads,
    bench_e11_flow,
    bench_e12_fairness,
    bench_e13_weighted,
    bench_e14_open,
    bench_e15_damping,
    bench_e16_loss,
    bench_e17_topology,
    bench_e18_exact,
    bench_e19_participation,
    bench_scenario_build,
);
criterion_main!(tables);
