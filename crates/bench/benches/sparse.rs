//! **Dense vs. sparse round cost in the endgame.**
//!
//! The sparse active-set executor exists for one regime: late in a run,
//! when almost every user is satisfied, a dense round still pays `O(n)` to
//! discover that almost nobody acts, while a sparse round pays
//! `O(unsatisfied)`. This bench pins states at ≤ 1 % active for
//! n ∈ {10⁴, 10⁵, 10⁶} and times one decision round under each executor,
//! plus a full run-to-convergence from the same snapshot.
//!
//! The measurement lives in [`qlb_bench::checks::measure_sparse`] so this
//! bench and the `qlb-bench-check` regression gate time exactly the same
//! thing. Besides the usual criterion report lines it writes a
//! machine-readable before/after summary to `BENCH_sparse.json` at the
//! repository root (referenced from `CHANGES.md`).

use criterion::{Criterion, Throughput};
use qlb_bench::checks::{measure_sparse, SparseRow, ACTIVE_FRAC, BENCH_SEED as SEED};
use qlb_bench::endgame_pair;
use qlb_core::step::{decide_active_into, decide_round_into};
use qlb_core::{ActiveIndex, SlackDamped};
use std::hint::black_box;

const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];

fn criterion_report(n: usize, c: &mut Criterion) {
    let (inst, state) = endgame_pair(n, SEED, ACTIVE_FRAC);
    let proto = SlackDamped::default();
    let index = ActiveIndex::new(&inst, &state);

    let mut g = c.benchmark_group(format!("endgame_round/n{n}"));
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("dense", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            decide_round_into(&inst, &state, &proto, SEED, 9, &mut buf);
            black_box(buf.len())
        })
    });
    g.bench_function("sparse", |b| {
        let (mut buf, mut tmp) = (Vec::new(), Vec::new());
        b.iter(|| {
            decide_active_into(&inst, &state, &index, &proto, SEED, 9, &mut buf, &mut tmp);
            black_box(buf.len())
        })
    });
    g.finish();
}

fn write_summary(rows: &[SparseRow]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sparse.json");
    let mut entries = Vec::new();
    for r in rows {
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"unsatisfied\": {},\n",
                "      \"dense_round_ns\": {:.0},\n",
                "      \"sparse_round_ns\": {:.0},\n",
                "      \"dense_rounds_per_sec\": {:.1},\n",
                "      \"sparse_rounds_per_sec\": {:.1},\n",
                "      \"round_speedup\": {:.1},\n",
                "      \"dense_full_run_ms\": {:.2},\n",
                "      \"sparse_full_run_ms\": {:.2},\n",
                "      \"tight_slack_rounds\": {},\n",
                "      \"tight_slack_dense_ms\": {:.2},\n",
                "      \"tight_slack_sparse_ms\": {:.2},\n",
                "      \"tight_slack_speedup\": {:.1}\n",
                "    }}"
            ),
            r.n,
            r.active,
            r.dense_round_ns,
            r.sparse_round_ns,
            r.dense_rounds_per_sec(),
            r.sparse_rounds_per_sec(),
            r.speedup(),
            r.dense_run_ms,
            r.sparse_run_ms,
            r.tight_rounds,
            r.tight_dense_ms,
            r.tight_sparse_ms,
            r.tight_speedup(),
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"dense vs sparse active-set executor, endgame rounds\",\n",
            "  \"scenario\": {{\n",
            "    \"placement\": \"hotspot\",\n",
            "    \"gamma\": 1.25,\n",
            "    \"capacity\": 10,\n",
            "    \"resources\": \"n / 8\",\n",
            "    \"max_active_fraction\": {},\n",
            "    \"seed\": {}\n",
            "  }},\n",
            "  \"tight_slack_scenario\": \"as above but gamma = 1.001 (0.1% free slots), \
             full run from the hotspot start\",\n",
            "  \"protocol\": \"slack-damped\",\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        ACTIVE_FRAC,
        SEED,
        entries.join(",\n")
    );
    std::fs::write(path, json).expect("write BENCH_sparse.json");
    println!("wrote {path}");
}

fn main() {
    let mut c = Criterion::default();
    let mut rows = Vec::new();
    for n in SIZES {
        criterion_report(n, &mut c);
        let row = measure_sparse(n, 120);
        println!(
            "n = {:>7}: {:>5} unsatisfied | dense {:>12.0} ns/round, sparse {:>9.0} ns/round \
             ({:.1}x) | full run: dense {:.1} ms, sparse {:.1} ms | tight slack \
             ({} rounds): dense {:.0} ms, sparse {:.0} ms ({:.1}x)",
            row.n,
            row.active,
            row.dense_round_ns,
            row.sparse_round_ns,
            row.speedup(),
            row.dense_run_ms,
            row.sparse_run_ms,
            row.tight_rounds,
            row.tight_dense_ms,
            row.tight_sparse_ms,
            row.tight_speedup(),
        );
        rows.push(row);
    }
    write_summary(&rows);
}
