//! **Dense vs. sparse round cost in the endgame.**
//!
//! The sparse active-set executor exists for one regime: late in a run,
//! when almost every user is satisfied, a dense round still pays `O(n)` to
//! discover that almost nobody acts, while a sparse round pays
//! `O(unsatisfied)`. This bench pins states at ≤ 1 % active for
//! n ∈ {10⁴, 10⁵, 10⁶} and times one decision round under each executor,
//! plus a full run-to-convergence from the same snapshot.
//!
//! Besides the usual criterion report lines it writes a machine-readable
//! before/after summary to `BENCH_sparse.json` at the repository root
//! (referenced from `CHANGES.md`).

use criterion::{Criterion, Throughput};
use qlb_bench::endgame_pair;
use qlb_core::step::{decide_active_into, decide_round_into};
use qlb_core::{ActiveIndex, SlackDamped, State};
use qlb_engine::{run, run_sparse, RunConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

const SEED: u64 = 7;
const ACTIVE_FRAC: f64 = 0.01;
const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];

/// Mean ns per call of `f`, measured over a small wall-clock budget
/// (mirrors the criterion loop but hands the number back for the JSON
/// summary).
fn ns_per_call<F: FnMut()>(mut f: F, budget_ms: u64) -> f64 {
    f(); // warm-up
    let budget = Duration::from_millis(budget_ms);
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    let mut batch = 1u64;
    while total < budget {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        total += start.elapsed();
        iters += batch;
        batch = batch.saturating_mul(2).min(1 << 16);
    }
    total.as_nanos() as f64 / iters as f64
}

struct Row {
    n: usize,
    active: usize,
    dense_round_ns: f64,
    sparse_round_ns: f64,
    dense_run_ms: f64,
    sparse_run_ms: f64,
    tight_rounds: u64,
    tight_dense_ms: f64,
    tight_sparse_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.dense_round_ns / self.sparse_round_ns
    }
    fn dense_rounds_per_sec(&self) -> f64 {
        1e9 / self.dense_round_ns
    }
    fn sparse_rounds_per_sec(&self) -> f64 {
        1e9 / self.sparse_round_ns
    }
}

fn measure(n: usize, c: &mut Criterion) -> Row {
    let (inst, state) = endgame_pair(n, SEED, ACTIVE_FRAC);
    let active = state.num_unsatisfied(&inst);
    let proto = SlackDamped::default();
    let index = ActiveIndex::new(&inst, &state);
    let mut moves = Vec::new();
    let mut scratch = Vec::new();

    // criterion report lines (human-readable side of the story)
    let mut g = c.benchmark_group(format!("endgame_round/n{n}"));
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("dense", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            decide_round_into(&inst, &state, &proto, SEED, 9, &mut buf);
            black_box(buf.len())
        })
    });
    g.bench_function("sparse", |b| {
        let (mut buf, mut tmp) = (Vec::new(), Vec::new());
        b.iter(|| {
            decide_active_into(&inst, &state, &index, &proto, SEED, 9, &mut buf, &mut tmp);
            black_box(buf.len())
        })
    });
    g.finish();

    // the same two measurements, captured for the JSON summary
    let dense_round_ns = ns_per_call(
        || {
            decide_round_into(&inst, &state, &proto, SEED, 9, &mut moves);
            black_box(moves.len());
        },
        120,
    );
    let sparse_round_ns = ns_per_call(
        || {
            decide_active_into(
                &inst,
                &state,
                &index,
                &proto,
                SEED,
                9,
                &mut moves,
                &mut scratch,
            );
            black_box(moves.len());
        },
        120,
    );

    // full run to convergence from the hotspot start (amortizes the
    // sparse executor's one-time O(n + m) index build over every round)
    let (dense_run_ms, sparse_run_ms) = run_to_convergence(n);

    // the sparse executor's home turf: tight slack (γ = 1.001 ⇒ ~0.1 % free
    // slots) stretches the convergence tail to 1000+ nearly-empty rounds
    let (tight_rounds, tight_dense_ms, tight_sparse_ms) = tight_run_to_convergence(n);

    Row {
        n,
        active,
        dense_round_ns,
        sparse_round_ns,
        dense_run_ms,
        sparse_run_ms,
        tight_rounds,
        tight_dense_ms,
        tight_sparse_ms,
    }
}

fn run_to_convergence(n: usize) -> (f64, f64) {
    let (inst, start) = qlb_bench::standard_pair(n, SEED);
    let proto = SlackDamped::default();
    let cfg = RunConfig::new(SEED, 1_000_000);
    let mut dense_ms = f64::INFINITY;
    let mut sparse_ms = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        let dense = run(&inst, start.clone(), &proto, cfg);
        dense_ms = dense_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let sparse = run_sparse(&inst, start.clone(), &proto, cfg);
        sparse_ms = sparse_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert!(dense.converged && sparse.converged);
        assert_eq!(dense.state, sparse.state, "executors diverged");
    }
    (dense_ms, sparse_ms)
}

fn tight_run_to_convergence(n: usize) -> (u64, f64, f64) {
    let sc = qlb_workload::Scenario::single_class(
        "bench-tight",
        n,
        (n / 8).max(1),
        qlb_workload::CapacityDist::Constant { cap: 10 },
        1.001,
        qlb_workload::Placement::Hotspot,
    );
    let (inst, _) = sc.build(SEED).expect("feasible");
    let start = State::all_on(&inst, qlb_core::ResourceId(0));
    let proto = SlackDamped::default();
    let cfg = RunConfig::new(SEED, 1_000_000);
    let t0 = Instant::now();
    let dense = run(&inst, start.clone(), &proto, cfg);
    let dense_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let sparse = run_sparse(&inst, start, &proto, cfg);
    let sparse_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(dense.converged && sparse.converged);
    assert_eq!(dense.state, sparse.state, "executors diverged");
    assert_eq!(dense.rounds, sparse.rounds);
    (dense.rounds, dense_ms, sparse_ms)
}

fn write_summary(rows: &[Row]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sparse.json");
    let mut entries = Vec::new();
    for r in rows {
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"unsatisfied\": {},\n",
                "      \"dense_round_ns\": {:.0},\n",
                "      \"sparse_round_ns\": {:.0},\n",
                "      \"dense_rounds_per_sec\": {:.1},\n",
                "      \"sparse_rounds_per_sec\": {:.1},\n",
                "      \"round_speedup\": {:.1},\n",
                "      \"dense_full_run_ms\": {:.2},\n",
                "      \"sparse_full_run_ms\": {:.2},\n",
                "      \"tight_slack_rounds\": {},\n",
                "      \"tight_slack_dense_ms\": {:.2},\n",
                "      \"tight_slack_sparse_ms\": {:.2},\n",
                "      \"tight_slack_speedup\": {:.1}\n",
                "    }}"
            ),
            r.n,
            r.active,
            r.dense_round_ns,
            r.sparse_round_ns,
            r.dense_rounds_per_sec(),
            r.sparse_rounds_per_sec(),
            r.speedup(),
            r.dense_run_ms,
            r.sparse_run_ms,
            r.tight_rounds,
            r.tight_dense_ms,
            r.tight_sparse_ms,
            r.tight_dense_ms / r.tight_sparse_ms,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"dense vs sparse active-set executor, endgame rounds\",\n",
            "  \"scenario\": {{\n",
            "    \"placement\": \"hotspot\",\n",
            "    \"gamma\": 1.25,\n",
            "    \"capacity\": 10,\n",
            "    \"resources\": \"n / 8\",\n",
            "    \"max_active_fraction\": {},\n",
            "    \"seed\": {}\n",
            "  }},\n",
            "  \"tight_slack_scenario\": \"as above but gamma = 1.001 (0.1% free slots), \
             full run from the hotspot start\",\n",
            "  \"protocol\": \"slack-damped\",\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        ACTIVE_FRAC,
        SEED,
        entries.join(",\n")
    );
    std::fs::write(path, json).expect("write BENCH_sparse.json");
    println!("wrote {path}");
}

fn main() {
    let mut c = Criterion::default();
    let mut rows = Vec::new();
    for n in SIZES {
        let row = measure(n, &mut c);
        println!(
            "n = {:>7}: {:>5} unsatisfied | dense {:>12.0} ns/round, sparse {:>9.0} ns/round \
             ({:.1}x) | full run: dense {:.1} ms, sparse {:.1} ms | tight slack \
             ({} rounds): dense {:.0} ms, sparse {:.0} ms ({:.1}x)",
            row.n,
            row.active,
            row.dense_round_ns,
            row.sparse_round_ns,
            row.speedup(),
            row.dense_run_ms,
            row.sparse_run_ms,
            row.tight_rounds,
            row.tight_dense_ms,
            row.tight_sparse_ms,
            row.tight_dense_ms / row.tight_sparse_ms,
        );
        rows.push(row);
    }
    write_summary(&rows);
}
