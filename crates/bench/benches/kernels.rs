//! Micro-benchmarks of the hot path: per-round decision kernels, batch
//! application, and satisfaction checks. These dominate every experiment's
//! runtime, so their throughput is the number to watch.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use qlb_bench::half_converged;
use qlb_core::step::{decide_round, decide_round_into};
use qlb_core::{BlindUniform, ConditionalUniform, SlackDamped, SlackDampedCapacitySampling};
use std::hint::black_box;

const N: usize = 1 << 14;

fn bench_decide_round(c: &mut Criterion) {
    let (inst, state) = half_converged(N, 1);
    let mut g = c.benchmark_group("decide_round");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("blind", |b| {
        b.iter(|| black_box(decide_round(&inst, &state, &BlindUniform, 1, 5)))
    });
    g.bench_function("conditional", |b| {
        b.iter(|| black_box(decide_round(&inst, &state, &ConditionalUniform, 1, 5)))
    });
    g.bench_function("slack_damped", |b| {
        b.iter(|| black_box(decide_round(&inst, &state, &SlackDamped::default(), 1, 5)))
    });
    let prop = SlackDampedCapacitySampling::new(&inst);
    g.bench_function("capacity_sampling", |b| {
        b.iter(|| black_box(decide_round(&inst, &state, &prop, 1, 5)))
    });
    g.finish();
}

fn bench_decide_round_reused_buffer(c: &mut Criterion) {
    let (inst, state) = half_converged(N, 1);
    let mut buf = Vec::new();
    c.bench_function("decide_round_into_reused", |b| {
        b.iter(|| {
            decide_round_into(&inst, &state, &SlackDamped::default(), 1, 5, &mut buf);
            black_box(buf.len())
        })
    });
}

fn bench_apply_moves(c: &mut Criterion) {
    let (inst, state) = half_converged(N, 1);
    let moves = decide_round(&inst, &state, &SlackDamped::default(), 1, 5);
    let mut g = c.benchmark_group("apply_moves");
    g.throughput(Throughput::Elements(moves.len().max(1) as u64));
    g.bench_function("batch", |b| {
        b.iter_batched(
            || state.clone(),
            |mut s| {
                s.apply_moves(&inst, &moves);
                black_box(s)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_legality(c: &mut Criterion) {
    let (inst, state) = half_converged(N, 1);
    let mut g = c.benchmark_group("legality");
    g.bench_function("is_legal_fastpath", |b| {
        b.iter(|| black_box(state.is_legal(&inst)))
    });
    g.bench_function("num_unsatisfied", |b| {
        b.iter(|| black_box(state.num_unsatisfied(&inst)))
    });
    g.bench_function("overload_potential", |b| {
        b.iter(|| black_box(qlb_core::overload_potential(&inst, &state)))
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_decide_round,
    bench_decide_round_reused_buffer,
    bench_apply_moves,
    bench_legality,
);
criterion_main!(kernels);
