//! Benchmarks of the supporting substrates: RNG streams, max-flow,
//! matching, greedy assignment, and the runtime's message round-trip.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use qlb_bench::standard_pair;
use qlb_core::{greedy_assign, SlackDamped};
use qlb_flow::{bipartite_matching, FlowNetwork};
use qlb_rng::{Rng64, RoundStream, SplitMix64, Xoshiro256pp};
use qlb_runtime::{run_distributed, RuntimeConfig};
use std::hint::black_box;

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1));
    g.bench_function("splitmix64_next", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    g.bench_function("xoshiro_next", |b| {
        let mut rng = Xoshiro256pp::new(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    g.bench_function("round_stream_create_and_draw", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut s = RoundStream::new(7, i, 3);
            black_box(s.next_u64())
        })
    });
    g.bench_function("uniform_lemire", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| black_box(rng.uniform(12345)))
    });
    g.finish();
}

fn bench_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow");
    g.sample_size(20);
    // layered random graph
    g.bench_function("dinic_layered_1k_edges", |b| {
        b.iter_batched(
            || {
                let mut net = FlowNetwork::new(102);
                let mut x = 1u64;
                for u in 1..=50 {
                    net.add_edge(0, u, 10);
                    for v in 51..=100 {
                        x = qlb_rng::mix64(x);
                        if x.is_multiple_of(5) {
                            net.add_edge(u, v, 1 + x % 7);
                        }
                    }
                }
                for v in 51..=100 {
                    net.add_edge(v, 101, 10);
                }
                net
            },
            |mut net| black_box(net.max_flow(0, 101)),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("matching_200x200", |b| {
        let mut edges = Vec::new();
        let mut x = 9u64;
        for l in 0..200 {
            for r in 0..200 {
                x = qlb_rng::mix64(x);
                if x.is_multiple_of(20) {
                    edges.push((l, r));
                }
            }
        }
        b.iter(|| black_box(bipartite_matching(200, 200, &edges)))
    });
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let (inst, _) = standard_pair(1 << 14, 1);
    c.bench_function("greedy_assign_16k", |b| {
        b.iter(|| black_box(greedy_assign(&inst).unwrap()))
    });
}

fn bench_runtime_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime");
    g.sample_size(10);
    let (inst, state) = standard_pair(1 << 10, 1);
    g.bench_function("distributed_full_run_1k", |b| {
        b.iter_batched(
            || state.clone(),
            |s| {
                black_box(run_distributed(
                    &inst,
                    s,
                    &SlackDamped::default(),
                    RuntimeConfig::new(1, 100_000).with_shards(4, 2),
                ))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_topo(c: &mut Criterion) {
    use qlb_topo::Graph;
    let mut g = c.benchmark_group("topo");
    g.bench_function("torus_32x32_build", |b| {
        b.iter(|| black_box(Graph::torus(32, 32)))
    });
    let torus = Graph::torus(32, 32);
    g.bench_function("torus_32x32_diameter", |b| {
        b.iter(|| black_box(torus.diameter()))
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    use qlb_analysis::{solve_linear, ProfileChain};
    let mut g = c.benchmark_group("analysis");
    g.sample_size(20);
    g.bench_function("chain_expected_rounds_45_states", |b| {
        b.iter(|| {
            let chain = ProfileChain::new(vec![4, 4, 4], 8, 1.0);
            black_box(chain.expected_rounds_from(&[8, 0, 0]))
        })
    });
    g.bench_function("gauss_solve_64", |b| {
        let n = 64;
        let a: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        if i == j {
                            8.0
                        } else {
                            qlb_rng::mix64((i * n + j) as u64) as f64 / u64::MAX as f64
                        }
                    })
                    .collect()
            })
            .collect();
        let bvec = vec![1.0; n];
        b.iter(|| black_box(solve_linear(a.clone(), bvec.clone())))
    });
    g.finish();
}

criterion_group!(
    substrates,
    bench_rng,
    bench_flow,
    bench_baselines,
    bench_runtime_roundtrip,
    bench_topo,
    bench_analysis,
);
criterion_main!(substrates);
