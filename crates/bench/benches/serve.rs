//! **Serving throughput: steady-state placements/sec and placement
//! latency of the `qlb-serve` stack.**
//!
//! Drives the in-process serving stack (wire-protocol parse → admission →
//! placement → reply, via `qlb_serve::handle_line`) at steady state: every
//! iteration departs the oldest ticket and places a replacement, with the
//! background rebalancer ticking under synthetic backlog every batch — the
//! same loop `qlb-serve`'s daemon executes per request batch, minus the
//! socket syscalls. The measurement lives in [`qlb_bench::checks`] so this
//! bench and the `qlb-bench-check` regression gate time exactly the same
//! thing. Writes a machine-readable summary to `BENCH_serve.json` at the
//! repository root (referenced from `CHANGES.md`).
//!
//! The PR acceptance floor — ≥ 50k placements/sec at n = 10⁶ steady state
//! with bounded p95 — is recorded in the JSON (`floor_places_per_sec`) and
//! enforced by `qlb-bench-check`, including `--quick`.

use qlb_bench::checks::{measure_serve, ServeRow, BENCH_SEED as SEED};

/// Committed sizes: the quick-gate size and the acceptance-criterion size.
const SIZES: &[(usize, u64)] = &[(65_536, 60_000), (1_000_000, 120_000)];

/// The PR's hard throughput floor at n = 10⁶.
const FLOOR_PLACES_PER_SEC: f64 = 50_000.0;

fn write_summary(rows: &[ServeRow]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let mut out = Vec::new();
    for r in rows {
        out.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"m\": {},\n",
                "      \"requests\": {},\n",
                "      \"elapsed_ms\": {:.1},\n",
                "      \"places_per_sec\": {:.0},\n",
                "      \"place_p50_us\": {:.2},\n",
                "      \"place_p95_us\": {:.2},\n",
                "      \"place_max_us\": {:.2},\n",
                "      \"ticks\": {},\n",
                "      \"rebalance_rounds\": {},\n",
                "      \"starved_ticks\": {}\n",
                "    }}"
            ),
            r.n,
            r.m,
            r.requests,
            r.elapsed_ms,
            r.places_per_sec(),
            r.place_p50_ns as f64 / 1e3,
            r.place_p95_ns as f64 / 1e3,
            r.place_max_ns as f64 / 1e3,
            r.ticks,
            r.rebalance_rounds,
            r.starved_ticks,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"steady-state serving throughput of the qlb-serve stack \
             (depart + place per iteration, rebalancer ticking under synthetic backlog)\",\n",
            "  \"seed\": {},\n",
            "  \"floor_places_per_sec\": {:.0},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SEED,
        FLOOR_PLACES_PER_SEC,
        out.join(",\n"),
    );
    std::fs::write(path, json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let mut rows = Vec::new();
    let sizes: &[(usize, u64)] = if smoke { &[(8_192, 4_000)] } else { SIZES };
    for &(n, requests) in sizes {
        let row = measure_serve(n, requests);
        println!(
            "serve n = {:>8} (m = {:>6}): {:>9.0} places/sec | p50 {:>7.2} µs | p95 {:>7.2} µs \
             | max {:>8.2} µs | {} ticks, {} rounds, {} starved",
            row.n,
            row.m,
            row.places_per_sec(),
            row.place_p50_ns as f64 / 1e3,
            row.place_p95_ns as f64 / 1e3,
            row.place_max_ns as f64 / 1e3,
            row.ticks,
            row.rebalance_rounds,
            row.starved_ticks,
        );
        assert_eq!(
            row.starved_ticks, 0,
            "rebalancer starved under backlog — the budget floor is broken"
        );
        rows.push(row);
    }
    if smoke {
        println!("smoke mode (--test): BENCH_serve.json not rewritten");
        return;
    }
    write_summary(&rows);
}
