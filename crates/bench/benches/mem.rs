//! **Memory-scale gate: bytes per user and steady-state allocation.**
//!
//! PR 9's tentpole claims the shard-owned pooled round is zero-copy and
//! zero-alloc in steady state, and that the chunked executor's lazy
//! materialization makes huge-`n` runs affordable. This bench measures
//! both under the counting global allocator ([`qlb_obs::mem`]) instead of
//! asserting them from the source:
//!
//! * **`dense-seq`** — working set of one dense `State`; 32 warm decision
//!   rounds (alloc-free by buffer reuse);
//! * **`pooled-soa`** — working set of the `RoundView` + shard slots +
//!   pool; 32 full steady-state rounds (decide → merge → apply → repair)
//!   which must allocate **nothing**, so their peak is 0 bytes — the
//!   committed ≤ 12 bytes/user acceptance gate at n = 10⁶;
//! * **`chunked`** — resident bytes of the uniform hotspot start (~0) and
//!   the whole-run peak to convergence including the final dense
//!   materialization, the capacity-planning number for n = 10⁸.
//!
//! The measurements live in [`qlb_bench::checks`] so this bench and the
//! `qlb-bench-check` regression gate count exactly the same allocations.
//! Writes `BENCH_mem.json` at the repository root.

use qlb_bench::checks::{measure_mem_chunked, measure_mem_dense, measure_mem_pooled, MemRow};

#[global_allocator]
static GLOBAL: qlb_obs::CountingAlloc = qlb_obs::CountingAlloc;

/// Hard acceptance gate: steady-state pooled round peak, bytes/user.
const POOLED_ROUND_PEAK_PER_USER_MAX: f64 = 12.0;

fn row_json(r: &MemRow) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"executor\": \"{}\",\n",
            "      \"n\": {},\n",
            "      \"threads\": {},\n",
            "      \"working_set_bytes\": {},\n",
            "      \"working_set_bytes_per_user\": {:.3},\n",
            "      \"round_peak_bytes\": {},\n",
            "      \"round_peak_bytes_per_user\": {:.3},\n",
            "      \"steady_allocs\": {}\n",
            "    }}"
        ),
        r.executor,
        r.n,
        r.threads,
        r.working_set_bytes,
        r.working_set_bytes_per_user(),
        r.round_peak_bytes,
        r.round_peak_bytes_per_user(),
        r.steady_allocs,
    )
}

fn write_summary(rows: &[MemRow]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mem.json");
    let body: Vec<String> = rows.iter().map(row_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"memory footprint and steady-state allocation per executor\",\n",
            "  \"seed\": {},\n",
            "  \"comment\": \"counting-allocator high-water marks; round executors measure 32 \
             steady-state rounds after warm-up, chunked measures a whole hotspot run to \
             convergence\",\n",
            "  \"gates\": {{\n",
            "    \"pooled_round_peak_bytes_per_user_max\": {:.1},\n",
            "    \"pooled_steady_allocs_max\": 0\n",
            "  }},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        qlb_bench::checks::BENCH_SEED,
        POOLED_ROUND_PEAK_PER_USER_MAX,
        body.join(",\n"),
    );
    std::fs::write(path, json).expect("write BENCH_mem.json");
    println!("wrote {path}");
}

fn main() {
    let n = 1_000_000;
    let mut rows = Vec::new();
    for row in [
        measure_mem_dense(n),
        measure_mem_pooled(n, 8),
        measure_mem_chunked(n),
    ] {
        println!(
            "{:>10} n = {:>8}, {} threads: working set {:>7.2} B/user | region peak \
             {:>7.2} B/user ({} allocs)",
            row.executor,
            row.n,
            row.threads,
            row.working_set_bytes_per_user(),
            row.round_peak_bytes_per_user(),
            row.steady_allocs,
        );
        rows.push(row);
    }

    let pooled = rows
        .iter()
        .find(|r| r.executor == "pooled-soa")
        .expect("pooled row measured");
    assert_eq!(
        pooled.steady_allocs, 0,
        "shard-owned pooled rounds allocated in steady state"
    );
    assert!(
        pooled.round_peak_bytes_per_user() <= POOLED_ROUND_PEAK_PER_USER_MAX,
        "steady-state pooled round peaked at {:.2} B/user (gate {POOLED_ROUND_PEAK_PER_USER_MAX})",
        pooled.round_peak_bytes_per_user()
    );
    println!(
        "gate: steady-state pooled round peak {:.2} B/user <= {POOLED_ROUND_PEAK_PER_USER_MAX}, \
         0 allocations",
        pooled.round_peak_bytes_per_user()
    );

    write_summary(&rows);
}
