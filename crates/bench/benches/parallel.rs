//! **Persistent worker-pool executor: dispatch overhead and sparse drivers.**
//!
//! The pre-pool threaded executor paid a full `std::thread` spawn + join
//! and a fresh `Vec<Vec<Move>>` per round. The [`WorkerPool`] replaces
//! that with long-lived workers woken over a condvar and per-shard move
//! buffers that persist across rounds, so steady-state rounds perform
//! **zero allocations** — asserted below with a counting global allocator,
//! not just claimed. The other two sections time the sparse active-set
//! paths this PR extends to the open-system and weighted drivers, on the
//! endgame-heavy workloads they exist for.
//!
//! The measurements live in [`qlb_bench::checks`] so this bench and the
//! `qlb-bench-check` regression gate time exactly the same thing. Writes a
//! machine-readable summary to `BENCH_parallel.json` at the repository
//! root (referenced from `CHANGES.md`).

use qlb_bench::checks::{
    measure_dispatch, measure_open_sparse, measure_pool_round, measure_weighted_sparse,
    DispatchRow, OpenSparseRow, PoolRoundRow, WeightedSparseRow, ACTIVE_FRAC, BENCH_SEED as SEED,
};
use qlb_bench::endgame_pair;
use qlb_core::step::decide_range_into;
use qlb_core::{Move, SlackDamped};
use qlb_engine::WorkerPool;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation so the steady-state no-alloc claim of the
/// pooled round is checkable, not aspirational.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Steady-state pooled rounds must not touch the allocator: warm the pool
/// buffers up, then run 32 more rounds and demand the global allocation
/// counter stands still. (The scoped-spawn baseline allocates every round
/// by construction — thread stacks and fresh buffers.)
fn assert_no_alloc_per_round(n: usize, threads: usize) {
    let (inst, state) = endgame_pair(n, SEED, ACTIVE_FRAC);
    let proto = SlackDamped::default();
    let pool = WorkerPool::new(threads);
    let chunk = n.div_ceil(threads).max(1);
    let fill = |shard: usize, buf: &mut Vec<Move>| {
        let lo = (shard * chunk).min(n);
        let hi = (lo + chunk).min(n);
        decide_range_into(&inst, &state, &proto, SEED, 9, lo, hi, buf);
    };
    let mut out = Vec::new();
    for _ in 0..8 {
        pool.decide_round(fill, &mut out, false); // warm-up: buffers grow once
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..32 {
        pool.decide_round(fill, &mut out, false);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "pooled rounds allocated {} times in steady state",
        after - before
    );
    println!("no-alloc check: 32 pooled rounds (n = {n}, {threads} threads), 0 allocations");
}

fn write_summary(
    dispatch: &DispatchRow,
    rounds: &[PoolRoundRow],
    open: &OpenSparseRow,
    weighted: &WeightedSparseRow,
) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    let mut latency = Vec::new();
    for r in rounds {
        latency.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"threads\": {},\n",
                "      \"seq_round_ns\": {:.0},\n",
                "      \"scoped_spawn_round_ns\": {:.0},\n",
                "      \"pooled_round_ns\": {:.0}\n",
                "    }}"
            ),
            r.n, r.threads, r.seq_round_ns, r.scoped_round_ns, r.pooled_round_ns,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"persistent worker-pool executor and sparse open/weighted drivers\",\n",
            "  \"seed\": {},\n",
            "  \"dispatch_overhead\": {{\n",
            "    \"comment\": \"no-op round: pure executor overhead, scoped spawn vs pool\",\n",
            "    \"threads\": {},\n",
            "    \"scoped_spawn_ns\": {:.0},\n",
            "    \"pool_ns\": {:.0},\n",
            "    \"reduction\": {:.1}\n",
            "  }},\n",
            "  \"round_latency\": [\n{}\n  ],\n",
            "  \"open_sparse\": {{\n",
            "    \"comment\": \"open system at rho = 0.3, pool 4x capacity (mostly parked)\",\n",
            "    \"m\": {},\n",
            "    \"pool\": {},\n",
            "    \"rounds\": {},\n",
            "    \"mean_active\": {:.1},\n",
            "    \"dense_ms\": {:.2},\n",
            "    \"sparse_ms\": {:.2},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"weighted_sparse\": {{\n",
            "    \"comment\": \"tight-slack weighted run (gamma = 1.005, hotspot start)\",\n",
            "    \"n\": {},\n",
            "    \"rounds\": {},\n",
            "    \"dense_ms\": {:.2},\n",
            "    \"sparse_ms\": {:.2},\n",
            "    \"speedup\": {:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        SEED,
        dispatch.threads,
        dispatch.scoped_spawn_ns,
        dispatch.pool_ns,
        dispatch.reduction(),
        latency.join(",\n"),
        open.m,
        open.pool,
        open.rounds,
        open.mean_active,
        open.dense_ms,
        open.sparse_ms,
        open.speedup(),
        weighted.n,
        weighted.rounds,
        weighted.dense_ms,
        weighted.sparse_ms,
        weighted.speedup(),
    );
    std::fs::write(path, json).expect("write BENCH_parallel.json");
    println!("wrote {path}");
}

fn main() {
    assert_no_alloc_per_round(100_000, 8);

    let dispatch = measure_dispatch(8, 200);
    println!(
        "dispatch (8 threads, no-op round): scoped spawn {:>9.0} ns, pool {:>7.0} ns ({:.1}x)",
        dispatch.scoped_spawn_ns,
        dispatch.pool_ns,
        dispatch.reduction()
    );

    let mut rounds = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let row = measure_pool_round(1_000_000, threads, 120);
        println!(
            "endgame round n = {:>7}, {} threads: seq {:>10.0} ns | scoped {:>10.0} ns | \
             pooled {:>10.0} ns",
            row.n, row.threads, row.seq_round_ns, row.scoped_round_ns, row.pooled_round_ns,
        );
        rounds.push(row);
    }

    let open = measure_open_sparse(256, 2_000);
    println!(
        "open system (m = {}, pool = {}, {} rounds, mean active {:.0}): dense {:.1} ms, \
         sparse {:.1} ms ({:.1}x)",
        open.m,
        open.pool,
        open.rounds,
        open.mean_active,
        open.dense_ms,
        open.sparse_ms,
        open.speedup()
    );

    let weighted = measure_weighted_sparse(100_000);
    println!(
        "weighted tight slack (n = {}, {} rounds): dense {:.1} ms, sparse {:.1} ms ({:.1}x)",
        weighted.n,
        weighted.rounds,
        weighted.dense_ms,
        weighted.sparse_ms,
        weighted.speedup()
    );

    write_summary(&dispatch, &rounds, &open, &weighted);
}
