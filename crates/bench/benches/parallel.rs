//! **Persistent worker-pool executor: dispatch overhead, SoA round
//! scaling, and sparse drivers.**
//!
//! The pre-pool threaded executor paid a full `std::thread` spawn + join
//! and a fresh `Vec<Vec<Move>>` per round. The [`WorkerPool`] replaces
//! that with long-lived parked workers (one epoch bump + `unpark` per
//! non-empty shard) and per-shard move buffers that persist across rounds,
//! so steady-state rounds perform **zero allocations** — asserted below
//! with a counting global allocator, not just claimed, for both the
//! `State`-walking fill and the struct-of-arrays [`RoundView`] kernel. The
//! `scaling` section times the SoA two-pass kernel (bitmap filter, batched
//! RNG, per-shard deltas) against the dense sequential reference at 1–8
//! threads; the remaining sections time the sparse active-set paths of the
//! open-system and weighted drivers on the endgame-heavy workloads they
//! exist for.
//!
//! The measurements live in [`qlb_bench::checks`] so this bench and the
//! `qlb-bench-check` regression gate time exactly the same thing. Writes a
//! machine-readable summary to `BENCH_parallel.json` at the repository
//! root (referenced from `CHANGES.md`).

use qlb_bench::checks::{
    measure_dispatch, measure_open_sparse, measure_pool_round, measure_scaling,
    measure_weighted_sparse, DispatchRow, OpenSparseRow, PoolRoundRow, ScalingRow,
    WeightedSparseRow, ACTIVE_FRAC, BENCH_SEED as SEED,
};
use qlb_bench::endgame_pair;
use qlb_core::step::decide_range_into;
use qlb_core::{Move, RoundView, ShardDeltas, ShardScratch, SlackDamped};
use qlb_engine::{shard_chunk, shards_for, WorkerPool};
use std::sync::Mutex;

// The shared counting allocator behind all memory gates (`qlb_obs::mem`)
// makes the steady-state no-alloc claim of the pooled round checkable,
// not aspirational.
#[global_allocator]
static GLOBAL: qlb_obs::CountingAlloc = qlb_obs::CountingAlloc;

/// Steady-state pooled rounds must not touch the allocator: warm the pool
/// buffers up, then run 32 more rounds and demand the global allocation
/// counter stands still. (The scoped-spawn baseline allocates every round
/// by construction — thread stacks and fresh buffers.)
fn assert_no_alloc_per_round(n: usize, threads: usize) {
    let (inst, state) = endgame_pair(n, SEED, ACTIVE_FRAC);
    let proto = SlackDamped::default();
    let pool = WorkerPool::new(threads);
    let chunk = n.div_ceil(threads).max(1);
    let fill = |shard: usize, buf: &mut Vec<Move>| {
        let lo = (shard * chunk).min(n);
        let hi = (lo + chunk).min(n);
        decide_range_into(&inst, &state, &proto, SEED, 9, lo, hi, buf);
    };
    let mut out = Vec::new();
    for _ in 0..8 {
        pool.decide_round(fill, &mut out, false); // warm-up: buffers grow once
    }
    let before = qlb_obs::mem::total_allocs();
    for _ in 0..32 {
        pool.decide_round(fill, &mut out, false);
    }
    let after = qlb_obs::mem::total_allocs();
    assert_eq!(
        after - before,
        0,
        "pooled rounds allocated {} times in steady state",
        after - before
    );
    println!("no-alloc check: 32 pooled rounds (n = {n}, {threads} threads), 0 allocations");
}

/// Same steady-state discipline for the SoA view kernel: after warm-up the
/// bitmap filter, batched RNG buffer, active-index scratch, and per-shard
/// delta lists must all reuse their capacity.
fn assert_no_alloc_view_round(n: usize, threads: usize) {
    let (inst, state) = endgame_pair(n, SEED, ACTIVE_FRAC);
    let proto = SlackDamped::default();
    let active = shards_for(n, threads);
    let chunk = shard_chunk(n, threads);
    let pool = WorkerPool::new(active);
    let view = RoundView::new(&inst, &state);
    let slots: Vec<Mutex<(ShardDeltas, ShardScratch)>> = (0..active)
        .map(|_| Mutex::new((ShardDeltas::new(inst.num_resources()), ShardScratch::new())))
        .collect();
    let slots_ref = &slots;
    let view_ref = &view;
    let inst_ref = &inst;
    let fill = move |shard: usize, buf: &mut Vec<Move>| {
        let lo = (shard * chunk).min(n);
        let hi = ((shard + 1) * chunk).min(n);
        if lo < hi {
            let mut slot = slots_ref[shard].lock().unwrap();
            let (deltas, scratch) = &mut *slot;
            view_ref.decide_shard_into(inst_ref, &proto, SEED, 9, lo, hi, buf, scratch, deltas);
        }
    };
    let mut out = Vec::new();
    let round = |out: &mut Vec<Move>| {
        pool.decide_round_on(fill, out, false, active);
        for slot in slots_ref {
            slot.lock().unwrap().0.advance();
        }
    };
    for _ in 0..8 {
        round(&mut out); // warm-up: scratch and delta buffers grow once
    }
    let before = qlb_obs::mem::total_allocs();
    for _ in 0..32 {
        round(&mut out);
    }
    let after = qlb_obs::mem::total_allocs();
    assert_eq!(
        after - before,
        0,
        "SoA view rounds allocated {} times in steady state",
        after - before
    );
    println!("no-alloc check: 32 SoA view rounds (n = {n}, {threads} threads), 0 allocations");
}

fn write_summary(
    dispatch: &DispatchRow,
    rounds: &[PoolRoundRow],
    scaling: &[ScalingRow],
    open: &OpenSparseRow,
    weighted: &WeightedSparseRow,
) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    let mut scaling_rows = Vec::new();
    for r in scaling {
        scaling_rows.push(format!(
            concat!(
                "      {{\n",
                "        \"n\": {},\n",
                "        \"threads\": {},\n",
                "        \"seq_round_ns\": {:.0},\n",
                "        \"pooled_round_ns\": {:.0},\n",
                "        \"speedup\": {:.2}\n",
                "      }}"
            ),
            r.n,
            r.threads,
            r.seq_round_ns,
            r.pooled_round_ns,
            r.speedup(),
        ));
    }
    let mut latency = Vec::new();
    for r in rounds {
        latency.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"threads\": {},\n",
                "      \"seq_round_ns\": {:.0},\n",
                "      \"scoped_spawn_round_ns\": {:.0},\n",
                "      \"pooled_round_ns\": {:.0}\n",
                "    }}"
            ),
            r.n, r.threads, r.seq_round_ns, r.scoped_round_ns, r.pooled_round_ns,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"persistent worker-pool executor, SoA round scaling, and sparse \
             open/weighted drivers\",\n",
            "  \"seed\": {},\n",
            "  \"dispatch_overhead\": {{\n",
            "    \"comment\": \"no-op round: pure executor overhead, scoped spawn vs pool\",\n",
            "    \"threads\": {},\n",
            "    \"scoped_spawn_ns\": {:.0},\n",
            "    \"pool_ns\": {:.0},\n",
            "    \"reduction\": {:.1}\n",
            "  }},\n",
            "  \"round_latency\": [\n{}\n  ],\n",
            "  \"scaling\": {{\n",
            "    \"comment\": \"SoA RoundView kernel (bitmap filter + batched RNG + per-shard \
             deltas) vs dense sequential decide on the same endgame round\",\n",
            "    \"rows\": [\n{}\n    ]\n",
            "  }},\n",
            "  \"open_sparse\": {{\n",
            "    \"comment\": \"open system at rho = 0.3, pool 4x capacity (mostly parked)\",\n",
            "    \"m\": {},\n",
            "    \"pool\": {},\n",
            "    \"rounds\": {},\n",
            "    \"mean_active\": {:.1},\n",
            "    \"dense_ms\": {:.2},\n",
            "    \"sparse_ms\": {:.2},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"weighted_sparse\": {{\n",
            "    \"comment\": \"tight-slack weighted run (gamma = 1.005, hotspot start)\",\n",
            "    \"n\": {},\n",
            "    \"rounds\": {},\n",
            "    \"dense_ms\": {:.2},\n",
            "    \"sparse_ms\": {:.2},\n",
            "    \"speedup\": {:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        SEED,
        dispatch.threads,
        dispatch.scoped_spawn_ns,
        dispatch.pool_ns,
        dispatch.reduction(),
        latency.join(",\n"),
        scaling_rows.join(",\n"),
        open.m,
        open.pool,
        open.rounds,
        open.mean_active,
        open.dense_ms,
        open.sparse_ms,
        open.speedup(),
        weighted.n,
        weighted.rounds,
        weighted.dense_ms,
        weighted.sparse_ms,
        weighted.speedup(),
    );
    std::fs::write(path, json).expect("write BENCH_parallel.json");
    println!("wrote {path}");
}

fn main() {
    assert_no_alloc_per_round(100_000, 8);
    assert_no_alloc_view_round(100_000, 8);

    let dispatch = measure_dispatch(8, 200);
    println!(
        "dispatch (8 threads, no-op round): scoped spawn {:>9.0} ns, pool {:>7.0} ns ({:.1}x)",
        dispatch.scoped_spawn_ns,
        dispatch.pool_ns,
        dispatch.reduction()
    );

    let mut rounds = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let row = measure_pool_round(1_000_000, threads, 120);
        println!(
            "endgame round n = {:>7}, {} threads: seq {:>10.0} ns | scoped {:>10.0} ns | \
             pooled {:>10.0} ns",
            row.n, row.threads, row.seq_round_ns, row.scoped_round_ns, row.pooled_round_ns,
        );
        rounds.push(row);
    }

    let scaling = measure_scaling(1_000_000, &[1, 2, 4, 8], 120);
    for row in &scaling {
        println!(
            "SoA scaling n = {:>7}, {} threads: seq {:>10.0} ns | pooled {:>10.0} ns ({:.2}x)",
            row.n,
            row.threads,
            row.seq_round_ns,
            row.pooled_round_ns,
            row.speedup(),
        );
    }

    let open = measure_open_sparse(256, 2_000);
    println!(
        "open system (m = {}, pool = {}, {} rounds, mean active {:.0}): dense {:.1} ms, \
         sparse {:.1} ms ({:.1}x)",
        open.m,
        open.pool,
        open.rounds,
        open.mean_active,
        open.dense_ms,
        open.sparse_ms,
        open.speedup()
    );

    let weighted = measure_weighted_sparse(100_000);
    println!(
        "weighted tight slack (n = {}, {} rounds): dense {:.1} ms, sparse {:.1} ms ({:.1}x)",
        weighted.n,
        weighted.rounds,
        weighted.dense_ms,
        weighted.sparse_ms,
        weighted.speedup()
    );

    write_summary(&dispatch, &rounds, &scaling, &open, &weighted);
}
