//! **Observability overhead on the E1 convergence kernel.**
//!
//! The `qlb-obs` sink is monomorphized into the round loop; with the
//! default [`qlb_obs::NoopSink`] every emission site must constant-fold
//! away, so an unobserved `run_observed` call is the same machine code as
//! `run`. This bench checks that claim empirically: it times the E1 kernel
//! (slack-damped, γ = 1.25, m = n/8, hotspot start, run to convergence)
//! three ways — plain `run`, `run_observed(&mut NoopSink)`, and
//! `run_observed(&mut Recorder)` — and reports the disabled-sink and
//! recording overheads. The acceptance budgets are **< 2 %** for the
//! disabled sink and **< 10 %** for the full recorder.
//!
//! The measurement itself lives in [`qlb_bench::checks::measure_obs`] so
//! this bench and the `qlb-bench-check` regression gate time exactly the
//! same thing. Besides the criterion report lines it writes a
//! machine-readable summary to `BENCH_obs.json` at the repository root.
//! Run with `--test` for a smoke pass (tiny sizes, no JSON written) —
//! used by CI.
//!
//! Three marginal-cost sections ride along: the pooled per-shard profiling
//! overhead (`shard_timing`, recorder on vs off, **< 2 %**), the live
//! telemetry plane's windowed aggregation on the steady-state serving loop
//! (`windowed`, [`qlb_bench::checks::measure_window`], **< 2 %**), and the
//! causal span layer on the same loop (`spans`,
//! [`qlb_bench::checks::measure_spans`]: every-request tracing, the
//! daemon's default `--span-sample 64` — gated at **< 2 %** — and the
//! disabled branch, which must sit at ≈ 0).

use criterion::Criterion;
use qlb_bench::checks::{
    measure_obs, measure_shard_timing, measure_spans, measure_window, ObsRow, ShardTimingRow,
    SpansRow, WindowRow, BENCH_SEED as SEED,
};
use qlb_core::SlackDamped;
use qlb_engine::{run, run_observed, Executor, RunConfig};
use qlb_obs::{NoopSink, Recorder};

/// Committed budget for the disabled-sink overhead, percent.
const NOOP_BUDGET_PCT: f64 = 2.0;
/// Committed budget for the full-recorder overhead, percent.
const RECORDER_BUDGET_PCT: f64 = 10.0;
/// Committed budget for the marginal per-shard profiling overhead on a
/// pooled run (recorder with shard timing on vs off), percent.
const SHARD_TIMING_BUDGET_PCT: f64 = 2.0;
/// Pooled-run shape of the shard-timing overhead measurement.
const SHARD_TIMING_N: usize = 65_536;
const SHARD_TIMING_THREADS: usize = 8;
/// Committed budget for the windowed-telemetry marginal overhead on the
/// steady-state serving loop, percent.
const WINDOW_BUDGET_PCT: f64 = 2.0;
/// Serving-loop shape of the windowed-telemetry overhead measurement.
const WINDOW_N: usize = 65_536;
const WINDOW_REQUESTS: u64 = 16_384;
/// Committed budget for the span layer's marginal overhead at the
/// daemon's default head-sampling rate (`--span-sample 64`), percent —
/// the PR's serving-loop acceptance criterion.
const SPANS_BUDGET_PCT: f64 = 2.0;

fn criterion_report(n: usize, c: &mut Criterion) {
    let (inst, start) = qlb_bench::standard_pair(n, SEED);
    let proto = SlackDamped::default();
    let cfg = RunConfig::new(SEED, 1_000_000);
    let mut g = c.benchmark_group(format!("obs_overhead/n{n}"));
    g.bench_function("plain", |b| {
        b.iter(|| run(&inst, start.clone(), &proto, cfg).rounds)
    });
    g.bench_function("noop_sink", |b| {
        b.iter(|| run_observed(&inst, start.clone(), &proto, cfg, &mut NoopSink).rounds)
    });
    g.bench_function("recorder", |b| {
        b.iter(|| {
            let mut rec = Recorder::default();
            run_observed(&inst, start.clone(), &proto, cfg, &mut rec).rounds
        })
    });
    g.finish();
}

fn criterion_shard_timing_report(n: usize, threads: usize, c: &mut Criterion) {
    let (inst, start) = qlb_bench::standard_pair(n, SEED);
    let proto = SlackDamped::default();
    let cfg = RunConfig::new(SEED, 1_000_000).with_executor(Executor::Threaded(threads));
    let mut g = c.benchmark_group(format!("shard_timing/n{n}_t{threads}"));
    g.bench_function("plain", |b| {
        b.iter(|| run(&inst, start.clone(), &proto, cfg).rounds)
    });
    g.bench_function("noop_sink", |b| {
        b.iter(|| run_observed(&inst, start.clone(), &proto, cfg, &mut NoopSink).rounds)
    });
    g.bench_function("recorder_timing_off", |b| {
        b.iter(|| {
            let mut rec = Recorder::default();
            run_observed(
                &inst,
                start.clone(),
                &proto,
                cfg.with_shard_timing(false),
                &mut rec,
            )
            .rounds
        })
    });
    g.bench_function("recorder_timing_on", |b| {
        b.iter(|| {
            let mut rec = Recorder::default();
            run_observed(&inst, start.clone(), &proto, cfg, &mut rec).rounds
        })
    });
    g.finish();
}

fn write_summary(rows: &[ObsRow], shard: &ShardTimingRow, window: &WindowRow, spans: &SpansRow) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let mut entries = Vec::new();
    for r in rows {
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"rounds\": {},\n",
                "      \"plain_run_ms\": {:.3},\n",
                "      \"noop_sink_run_ms\": {:.3},\n",
                "      \"recorder_run_ms\": {:.3},\n",
                "      \"noop_overhead_pct\": {:.2},\n",
                "      \"recorder_overhead_pct\": {:.2},\n",
                "      \"events_recorded\": {}\n",
                "    }}"
            ),
            r.n,
            r.rounds,
            r.plain_ms,
            r.noop_ms,
            r.recorder_ms,
            r.noop_overhead_pct,
            r.recorder_overhead_pct,
            r.events_recorded,
        ));
    }
    let worst_noop = rows
        .iter()
        .map(|r| r.noop_overhead_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    let worst_recorder = rows
        .iter()
        .map(|r| r.recorder_overhead_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    let shard_entry = format!(
        concat!(
            "  \"shard_timing\": {{\n",
            "    \"n\": {},\n",
            "    \"threads\": {},\n",
            "    \"rounds\": {},\n",
            "    \"plain_run_ms\": {:.3},\n",
            "    \"noop_sink_run_ms\": {:.3},\n",
            "    \"recorder_timing_off_ms\": {:.3},\n",
            "    \"recorder_timing_on_ms\": {:.3},\n",
            "    \"noop_overhead_pct\": {:.2},\n",
            "    \"timing_overhead_pct\": {:.2},\n",
            "    \"timing_overhead_budget_pct\": {:.1}\n",
            "  }},"
        ),
        shard.n,
        shard.threads,
        shard.rounds,
        shard.plain_ms,
        shard.noop_ms,
        shard.recorder_off_ms,
        shard.recorder_on_ms,
        shard.noop_overhead_pct,
        shard.timing_overhead_pct,
        SHARD_TIMING_BUDGET_PCT,
    );
    let window_entry = format!(
        concat!(
            "  \"windowed\": {{\n",
            "    \"n\": {},\n",
            "    \"requests_per_rep\": {},\n",
            "    \"base_serve_ms\": {:.3},\n",
            "    \"telemetry_serve_ms\": {:.3},\n",
            "    \"window_overhead_pct\": {:.2},\n",
            "    \"snapshots\": {},\n",
            "    \"window_overhead_budget_pct\": {:.1}\n",
            "  }},"
        ),
        window.n,
        window.requests,
        window.base_ms,
        window.telemetry_ms,
        window.window_overhead_pct,
        window.snapshots,
        WINDOW_BUDGET_PCT,
    );
    let spans_entry = format!(
        concat!(
            "  \"spans\": {{\n",
            "    \"n\": {},\n",
            "    \"requests_per_rep\": {},\n",
            "    \"base_serve_ms\": {:.3},\n",
            "    \"sample1_serve_ms\": {:.3},\n",
            "    \"sample64_serve_ms\": {:.3},\n",
            "    \"disabled_serve_ms\": {:.3},\n",
            "    \"sample1_overhead_pct\": {:.2},\n",
            "    \"sample64_overhead_pct\": {:.2},\n",
            "    \"disabled_overhead_pct\": {:.2},\n",
            "    \"spans_built\": {},\n",
            "    \"sample64_overhead_budget_pct\": {:.1}\n",
            "  }},"
        ),
        spans.n,
        spans.requests,
        spans.base_ms,
        spans.sample1_ms,
        spans.sample64_ms,
        spans.disabled_ms,
        spans.sample1_overhead_pct,
        spans.sample64_overhead_pct,
        spans.disabled_overhead_pct,
        spans.spans_built,
        SPANS_BUDGET_PCT,
    );
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"qlb-obs sink overhead on the E1 convergence kernel\",\n",
            "  \"scenario\": \"slack-damped, gamma = 1.25, capacity 10, m = n/8, \
             hotspot start, run to convergence, seed {}\",\n",
            "  \"budget\": \"disabled (NoopSink) overhead < {}%, recorder overhead < {}%, \
             per-shard profiling (pooled, on vs off) < {}%, \
             windowed telemetry on the serving loop < {}%, \
             causal spans at --span-sample 64 < {}%\",\n",
            "  \"noop_overhead_budget_pct\": {:.1},\n",
            "  \"recorder_overhead_budget_pct\": {:.1},\n",
            "  \"worst_noop_overhead_pct\": {:.2},\n",
            "  \"worst_recorder_overhead_pct\": {:.2},\n",
            "  \"budget_met\": {},\n",
            "{}\n",
            "{}\n",
            "{}\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SEED,
        NOOP_BUDGET_PCT,
        RECORDER_BUDGET_PCT,
        SHARD_TIMING_BUDGET_PCT,
        WINDOW_BUDGET_PCT,
        SPANS_BUDGET_PCT,
        NOOP_BUDGET_PCT,
        RECORDER_BUDGET_PCT,
        worst_noop,
        worst_recorder,
        worst_noop < NOOP_BUDGET_PCT
            && worst_recorder < RECORDER_BUDGET_PCT
            && shard.timing_overhead_pct < SHARD_TIMING_BUDGET_PCT
            && window.window_overhead_pct < WINDOW_BUDGET_PCT
            && spans.sample64_overhead_pct < SPANS_BUDGET_PCT,
        shard_entry,
        window_entry,
        spans_entry,
        entries.join(",\n")
    );
    std::fs::write(path, json).expect("write BENCH_obs.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (sizes, reps): (&[usize], usize) = if smoke {
        (&[4_096], 2)
    } else {
        (&[65_536, 262_144], 15)
    };
    let mut c = Criterion::default();
    let mut rows = Vec::new();
    for &n in sizes {
        criterion_report(n, &mut c);
        let row = measure_obs(n, reps);
        println!(
            "n = {:>7} ({} rounds): plain {:>8.2} ms | noop {:>8.2} ms ({:+.2}%) | \
             recorder {:>8.2} ms ({:+.2}%, {} events)",
            row.n,
            row.rounds,
            row.plain_ms,
            row.noop_ms,
            row.noop_overhead_pct,
            row.recorder_ms,
            row.recorder_overhead_pct,
            row.events_recorded,
        );
        rows.push(row);
    }
    let (shard_n, shard_threads, shard_reps) = if smoke {
        (4_096, 3, 2)
    } else {
        (SHARD_TIMING_N, SHARD_TIMING_THREADS, reps)
    };
    criterion_shard_timing_report(shard_n, shard_threads, &mut c);
    let shard = measure_shard_timing(shard_n, shard_threads, shard_reps);
    println!(
        "shard timing n = {:>7}, t = {} ({} rounds): plain {:>8.2} ms | noop {:>8.2} ms \
         ({:+.2}%) | recorder off {:>8.2} ms | on {:>8.2} ms ({:+.2}% marginal)",
        shard.n,
        shard.threads,
        shard.rounds,
        shard.plain_ms,
        shard.noop_ms,
        shard.noop_overhead_pct,
        shard.recorder_off_ms,
        shard.recorder_on_ms,
        shard.timing_overhead_pct,
    );
    let (window_n, window_requests, window_reps) = if smoke {
        (4_096, 2_048, 2)
    } else {
        (WINDOW_N, WINDOW_REQUESTS, reps)
    };
    let window = measure_window(window_n, window_requests, window_reps);
    println!(
        "windowed telemetry n = {:>7} ({} req/rep): base {:>8.2} ms | telemetry {:>8.2} ms \
         ({:+.2}% marginal, {} snapshots)",
        window.n,
        window.requests,
        window.base_ms,
        window.telemetry_ms,
        window.window_overhead_pct,
        window.snapshots,
    );
    let spans = measure_spans(window_n, window_requests, window_reps);
    println!(
        "causal spans n = {:>7} ({} req/rep): base {:>8.2} ms | sample=1 {:>8.2} ms ({:+.2}%) | \
         sample=64 {:>8.2} ms ({:+.2}%) | disabled {:>8.2} ms ({:+.2}%) | {} spans",
        spans.n,
        spans.requests,
        spans.base_ms,
        spans.sample1_ms,
        spans.sample1_overhead_pct,
        spans.sample64_ms,
        spans.sample64_overhead_pct,
        spans.disabled_ms,
        spans.disabled_overhead_pct,
        spans.spans_built,
    );
    if smoke {
        // CI smoke: exercise every path but leave the committed numbers
        // (from a full local run) alone
        println!("smoke mode (--test): BENCH_obs.json not rewritten");
        return;
    }
    write_summary(&rows, &shard, &window, &spans);
}
