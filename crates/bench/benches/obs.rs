//! **Observability overhead on the E1 convergence kernel.**
//!
//! The `qlb-obs` sink is monomorphized into the round loop; with the
//! default [`qlb_obs::NoopSink`] every emission site must constant-fold
//! away, so an unobserved `run_observed` call is the same machine code as
//! `run`. This bench checks that claim empirically: it times the E1 kernel
//! (slack-damped, γ = 1.25, m = n/8, hotspot start, run to convergence)
//! three ways — plain `run`, `run_observed(&mut NoopSink)`, and
//! `run_observed(&mut Recorder)` — and reports the disabled-sink and
//! recording overheads. The acceptance budget for the disabled sink is
//! **< 2 %**.
//!
//! Besides the criterion report lines it writes a machine-readable summary
//! to `BENCH_obs.json` at the repository root. Run with `--test` for a
//! smoke pass (tiny sizes, no JSON written) — used by CI.

use criterion::Criterion;
use qlb_core::SlackDamped;
use qlb_engine::{run, run_observed, RunConfig};
use qlb_obs::{NoopSink, Recorder};
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 7;

struct Row {
    n: usize,
    rounds: u64,
    plain_ms: f64,
    noop_ms: f64,
    recorder_ms: f64,
    noop_overhead_pct: f64,
    recorder_overhead_pct: f64,
    events_recorded: u64,
}

/// One timed call, in ms.
fn once_ms<F: FnMut() -> u64>(f: &mut F) -> f64 {
    let t0 = Instant::now();
    black_box(f());
    t0.elapsed().as_secs_f64() * 1e3
}

/// Median of a sample set (destructive).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

fn measure(n: usize, reps: usize, c: &mut Criterion) -> Row {
    let (inst, start) = qlb_bench::standard_pair(n, SEED);
    let proto = SlackDamped::default();
    let cfg = RunConfig::new(SEED, 1_000_000);

    // criterion report lines
    let mut g = c.benchmark_group(format!("obs_overhead/n{n}"));
    g.bench_function("plain", |b| {
        b.iter(|| run(&inst, start.clone(), &proto, cfg).rounds)
    });
    g.bench_function("noop_sink", |b| {
        b.iter(|| run_observed(&inst, start.clone(), &proto, cfg, &mut NoopSink).rounds)
    });
    g.bench_function("recorder", |b| {
        b.iter(|| {
            let mut rec = Recorder::default();
            run_observed(&inst, start.clone(), &proto, cfg, &mut rec).rounds
        })
    });
    g.finish();

    // The same comparison, captured for the JSON summary. The variants are
    // *interleaved* per repetition so slow thermal / frequency / cache
    // drift hits all of them equally, and the overhead is the **median of
    // per-repetition paired ratios** — pairing cancels the drift, the
    // median cancels scheduler outliers. (A best-of-N minimum is noisy at
    // the ±2–3 % level for a few-ms kernel: one lucky sample on either
    // side swings the sign.)
    let mut plain = || run(&inst, start.clone(), &proto, cfg).rounds;
    let mut noop = || run_observed(&inst, start.clone(), &proto, cfg, &mut NoopSink).rounds;
    let mut events_recorded = 0u64;
    let mut recorder = || {
        let mut rec = Recorder::default();
        let out = run_observed(&inst, start.clone(), &proto, cfg, &mut rec);
        events_recorded = rec.events().total_recorded();
        out.rounds
    };
    // warm-up pass of each variant before any timed sample
    black_box((plain(), noop(), recorder()));
    let (mut noop_ratio, mut rec_ratio) = (Vec::new(), Vec::new());
    let (mut plain_ms, mut noop_ms, mut recorder_ms) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let p = once_ms(&mut plain);
        let s = once_ms(&mut noop);
        let r = once_ms(&mut recorder);
        noop_ratio.push(s / p);
        rec_ratio.push(r / p);
        plain_ms = plain_ms.min(p);
        noop_ms = noop_ms.min(s);
        recorder_ms = recorder_ms.min(r);
    }

    let rounds = run(&inst, start, &proto, cfg).rounds;
    Row {
        n,
        rounds,
        plain_ms,
        noop_ms,
        recorder_ms,
        noop_overhead_pct: 100.0 * (median(&mut noop_ratio) - 1.0),
        recorder_overhead_pct: 100.0 * (median(&mut rec_ratio) - 1.0),
        events_recorded,
    }
}

fn write_summary(rows: &[Row]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let mut entries = Vec::new();
    for r in rows {
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"rounds\": {},\n",
                "      \"plain_run_ms\": {:.3},\n",
                "      \"noop_sink_run_ms\": {:.3},\n",
                "      \"recorder_run_ms\": {:.3},\n",
                "      \"noop_overhead_pct\": {:.2},\n",
                "      \"recorder_overhead_pct\": {:.2},\n",
                "      \"events_recorded\": {}\n",
                "    }}"
            ),
            r.n,
            r.rounds,
            r.plain_ms,
            r.noop_ms,
            r.recorder_ms,
            r.noop_overhead_pct,
            r.recorder_overhead_pct,
            r.events_recorded,
        ));
    }
    let worst = rows
        .iter()
        .map(|r| r.noop_overhead_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"qlb-obs sink overhead on the E1 convergence kernel\",\n",
            "  \"scenario\": \"slack-damped, gamma = 1.25, capacity 10, m = n/8, \
             hotspot start, run to convergence, seed {}\",\n",
            "  \"budget\": \"disabled (NoopSink) overhead < 2%\",\n",
            "  \"worst_noop_overhead_pct\": {:.2},\n",
            "  \"budget_met\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SEED,
        worst,
        worst < 2.0,
        entries.join(",\n")
    );
    std::fs::write(path, json).expect("write BENCH_obs.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (sizes, reps): (&[usize], usize) = if smoke {
        (&[4_096], 2)
    } else {
        (&[65_536, 262_144], 15)
    };
    let mut c = Criterion::default();
    let mut rows = Vec::new();
    for &n in sizes {
        let row = measure(n, reps, &mut c);
        println!(
            "n = {:>7} ({} rounds): plain {:>8.2} ms | noop {:>8.2} ms ({:+.2}%) | \
             recorder {:>8.2} ms ({:+.2}%, {} events)",
            row.n,
            row.rounds,
            row.plain_ms,
            row.noop_ms,
            row.noop_overhead_pct,
            row.recorder_ms,
            row.recorder_overhead_pct,
            row.events_recorded,
        );
        rows.push(row);
    }
    if smoke {
        // CI smoke: exercise every path but leave the committed numbers
        // (from a full local run) alone
        println!("smoke mode (--test): BENCH_obs.json not rewritten");
        return;
    }
    write_summary(&rows);
}
