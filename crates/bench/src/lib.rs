//! # qlb-bench — Criterion benchmarks
//!
//! Three bench binaries (see `benches/`):
//!
//! * `tables` — one Criterion group per paper table/figure (E1–E12), each
//!   timing the experiment's core measurement loop at quick scale so
//!   regressions in any experiment path are caught;
//! * `kernels` — micro-benchmarks of the hot protocol kernels (decision
//!   rounds, sampling, state application);
//! * `substrates` — the supporting machinery (RNG streams, max-flow,
//!   greedy/best-response baselines, runtime round-trip).
//!
//! Shared scenario builders live here so benches and (future) profiling
//! binaries agree on what "the standard workload" is. The [`checks`]
//! module holds the measurement kernels shared between the `sparse`/`obs`
//! benches and the `qlb-bench-check` regression gate.

pub mod checks;

use qlb_core::{Instance, State};
use qlb_workload::{CapacityDist, Placement, Scenario};

/// The standard single-class benchmark workload: `γ = 1.25`, capacity-10
/// resources, hotspot start.
pub fn standard_scenario(n: usize) -> Scenario {
    Scenario::single_class(
        format!("bench-n{n}"),
        n,
        (n / 8).max(1),
        CapacityDist::Constant { cap: 10 },
        1.25,
        Placement::Hotspot,
    )
}

/// Build the standard instance/state pair for benches.
pub fn standard_pair(n: usize, seed: u64) -> (Instance, State) {
    standard_scenario(n).build(seed).expect("feasible")
}

/// A mid-run, half-converged state: more representative of steady-state
/// kernel cost than the degenerate all-on-one start.
pub fn half_converged(n: usize, seed: u64) -> (Instance, State) {
    let (inst, state) = standard_pair(n, seed);
    let out = qlb_engine::run(
        &inst,
        state,
        &qlb_core::SlackDamped::default(),
        qlb_engine::RunConfig::new(seed, 3),
    );
    (inst, out.state)
}

/// An **endgame** state: run the slack-damped protocol from the hotspot
/// start until at most `max_active_frac · n` users remain unsatisfied
/// (but the state is still illegal unless `max_active_frac == 0`). This
/// is the regime where dense `O(n)` rounds waste almost all their work and
/// the sparse active-set executor should shine.
pub fn endgame_pair(n: usize, seed: u64, max_active_frac: f64) -> (Instance, State) {
    let (inst, mut state) = standard_pair(n, seed);
    let proto = qlb_core::SlackDamped::default();
    let target = ((n as f64) * max_active_frac).ceil() as usize;
    let mut moves = Vec::new();
    let mut round = 0u64;
    while state.num_unsatisfied(&inst) > target {
        qlb_core::step::decide_round_into(&inst, &state, &proto, seed, round, &mut moves);
        state.apply_moves(&inst, &moves);
        round += 1;
        assert!(round < 1_000_000, "endgame never reached at n = {n}");
    }
    (inst, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlb_core::ResourceId;

    #[test]
    fn standard_pair_is_hotspot() {
        let (inst, state) = standard_pair(256, 1);
        assert_eq!(state.load(ResourceId(0)) as usize, 256);
        assert_eq!(inst.total_capacity(), 320);
    }

    #[test]
    fn endgame_reaches_target_fraction() {
        let (inst, state) = endgame_pair(512, 1, 0.01);
        assert!(state.num_unsatisfied(&inst) <= 6);
        state.debug_assert_invariants();
    }

    #[test]
    fn half_converged_made_progress() {
        let (inst, state) = half_converged(256, 1);
        assert!(state.load(ResourceId(0)) < 256);
        assert!(!state.is_legal(&inst) || state.is_legal(&inst)); // state is valid either way
        state.debug_assert_invariants();
    }
}
