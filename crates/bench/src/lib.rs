//! # qlb-bench — Criterion benchmarks
//!
//! Three bench binaries (see `benches/`):
//!
//! * `tables` — one Criterion group per paper table/figure (E1–E12), each
//!   timing the experiment's core measurement loop at quick scale so
//!   regressions in any experiment path are caught;
//! * `kernels` — micro-benchmarks of the hot protocol kernels (decision
//!   rounds, sampling, state application);
//! * `substrates` — the supporting machinery (RNG streams, max-flow,
//!   greedy/best-response baselines, runtime round-trip).
//!
//! Shared scenario builders live here so benches and (future) profiling
//! binaries agree on what "the standard workload" is.

use qlb_core::{Instance, State};
use qlb_workload::{CapacityDist, Placement, Scenario};

/// The standard single-class benchmark workload: `γ = 1.25`, capacity-10
/// resources, hotspot start.
pub fn standard_scenario(n: usize) -> Scenario {
    Scenario::single_class(
        format!("bench-n{n}"),
        n,
        (n / 8).max(1),
        CapacityDist::Constant { cap: 10 },
        1.25,
        Placement::Hotspot,
    )
}

/// Build the standard instance/state pair for benches.
pub fn standard_pair(n: usize, seed: u64) -> (Instance, State) {
    standard_scenario(n).build(seed).expect("feasible")
}

/// A mid-run, half-converged state: more representative of steady-state
/// kernel cost than the degenerate all-on-one start.
pub fn half_converged(n: usize, seed: u64) -> (Instance, State) {
    let (inst, state) = standard_pair(n, seed);
    let out = qlb_engine::run(
        &inst,
        state,
        &qlb_core::SlackDamped::default(),
        qlb_engine::RunConfig::new(seed, 3),
    );
    (inst, out.state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlb_core::ResourceId;

    #[test]
    fn standard_pair_is_hotspot() {
        let (inst, state) = standard_pair(256, 1);
        assert_eq!(state.load(ResourceId(0)) as usize, 256);
        assert_eq!(inst.total_capacity(), 320);
    }

    #[test]
    fn half_converged_made_progress() {
        let (inst, state) = half_converged(256, 1);
        assert!(state.load(ResourceId(0)) < 256);
        assert!(!state.is_legal(&inst) || state.is_legal(&inst)); // state is valid either way
        state.debug_assert_invariants();
    }
}
