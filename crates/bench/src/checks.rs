//! Shared measurement kernels for the performance regression gate.
//!
//! The `sparse` and `obs` benches and the `qlb-bench-check` binary must
//! agree on *what* is measured, or the committed `BENCH_sparse.json` /
//! `BENCH_obs.json` numbers and the gate comparing against them drift
//! apart. This module is that single definition: the benches call it to
//! capture their JSON summaries (keeping their criterion report groups
//! local), and `qlb-bench-check` calls it to re-measure and compare.

use qlb_core::step::{decide_active_into, decide_range_into, decide_round_into};
use qlb_core::weighted::{WeightedInstance, WeightedSlackDamped, WeightedState};
use qlb_core::{
    ActiveIndex, Move, ResourceId, RoundView, ShardDeltas, ShardScratch, SlackDamped, State,
};
use qlb_engine::{
    run, run_observed, run_open_system, run_sparse, run_weighted_cfg, shard_bounds, shard_chunk,
    shards_for, Executor, OpenConfig, RunConfig, WeightedConfig, WorkerPool,
};
use qlb_obs::{NoopSink, Recorder};
use std::hint::black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Seed every regression-gated measurement runs under (also baked into the
/// committed JSON).
pub const BENCH_SEED: u64 = 7;

/// Endgame active fraction pinned by the sparse bench scenario.
pub const ACTIVE_FRAC: f64 = 0.01;

/// Mean ns per call of `f`, measured over a small wall-clock budget
/// (mirrors the criterion loop but hands the number back for the JSON
/// summary).
pub fn ns_per_call<F: FnMut()>(mut f: F, budget_ms: u64) -> f64 {
    f(); // warm-up
    let budget = Duration::from_millis(budget_ms);
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    let mut batch = 1u64;
    while total < budget {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        total += start.elapsed();
        iters += batch;
        batch = batch.saturating_mul(2).min(1 << 16);
    }
    total.as_nanos() as f64 / iters as f64
}

/// One timed call, in ms.
pub fn once_ms<F: FnMut() -> u64>(f: &mut F) -> f64 {
    let t0 = Instant::now();
    black_box(f());
    t0.elapsed().as_secs_f64() * 1e3
}

/// Median of a sample set (destructive).
pub fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

// ---------------------------------------------------------------------
// sparse executor measurements (BENCH_sparse.json)
// ---------------------------------------------------------------------

/// One row of the sparse-executor comparison at size `n`.
#[derive(Debug, Clone)]
pub struct SparseRow {
    /// Users.
    pub n: usize,
    /// Unsatisfied users in the pinned endgame state.
    pub active: usize,
    /// Mean ns of one dense decision round over the endgame state.
    pub dense_round_ns: f64,
    /// Mean ns of one sparse (active-set) decision round, same state.
    pub sparse_round_ns: f64,
    /// Best-of-2 dense full run to convergence, ms.
    pub dense_run_ms: f64,
    /// Best-of-2 sparse full run to convergence, ms.
    pub sparse_run_ms: f64,
    /// Rounds of the tight-slack (γ = 1.001) run.
    pub tight_rounds: u64,
    /// Dense tight-slack run, ms.
    pub tight_dense_ms: f64,
    /// Sparse tight-slack run, ms.
    pub tight_sparse_ms: f64,
}

impl SparseRow {
    /// Dense/sparse per-round speedup in the endgame.
    pub fn speedup(&self) -> f64 {
        self.dense_round_ns / self.sparse_round_ns
    }
    /// Dense decision rounds per second.
    pub fn dense_rounds_per_sec(&self) -> f64 {
        1e9 / self.dense_round_ns
    }
    /// Sparse decision rounds per second.
    pub fn sparse_rounds_per_sec(&self) -> f64 {
        1e9 / self.sparse_round_ns
    }
    /// Dense/sparse full-run speedup under tight slack.
    pub fn tight_speedup(&self) -> f64 {
        self.tight_dense_ms / self.tight_sparse_ms
    }
}

/// Time one dense and one sparse decision round over the pinned endgame
/// state at size `n`, plus the two run-to-convergence comparisons. This is
/// the measurement committed to `BENCH_sparse.json`.
pub fn measure_sparse(n: usize, round_budget_ms: u64) -> SparseRow {
    let (inst, state) = crate::endgame_pair(n, BENCH_SEED, ACTIVE_FRAC);
    let active = state.num_unsatisfied(&inst);
    let proto = SlackDamped::default();
    let index = ActiveIndex::new(&inst, &state);
    let mut moves = Vec::new();
    let mut scratch = Vec::new();

    let dense_round_ns = ns_per_call(
        || {
            decide_round_into(&inst, &state, &proto, BENCH_SEED, 9, &mut moves);
            black_box(moves.len());
        },
        round_budget_ms,
    );
    let sparse_round_ns = ns_per_call(
        || {
            decide_active_into(
                &inst,
                &state,
                &index,
                &proto,
                BENCH_SEED,
                9,
                &mut moves,
                &mut scratch,
            );
            black_box(moves.len());
        },
        round_budget_ms,
    );

    let (dense_run_ms, sparse_run_ms) = sparse_run_to_convergence(n);
    let (tight_rounds, tight_dense_ms, tight_sparse_ms) = tight_run_to_convergence(n);

    SparseRow {
        n,
        active,
        dense_round_ns,
        sparse_round_ns,
        dense_run_ms,
        sparse_run_ms,
        tight_rounds,
        tight_dense_ms,
        tight_sparse_ms,
    }
}

/// Full dense vs. sparse run to convergence from the hotspot start
/// (amortizes the sparse executor's one-time O(n + m) index build over
/// every round). Best of 2, ms.
pub fn sparse_run_to_convergence(n: usize) -> (f64, f64) {
    let (inst, start) = crate::standard_pair(n, BENCH_SEED);
    let proto = SlackDamped::default();
    let cfg = RunConfig::new(BENCH_SEED, 1_000_000);
    let mut dense_ms = f64::INFINITY;
    let mut sparse_ms = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        let dense = run(&inst, start.clone(), &proto, cfg);
        dense_ms = dense_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let sparse = run_sparse(&inst, start.clone(), &proto, cfg);
        sparse_ms = sparse_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert!(dense.converged && sparse.converged);
        assert_eq!(dense.state, sparse.state, "executors diverged");
    }
    (dense_ms, sparse_ms)
}

/// The sparse executor's home turf: tight slack (γ = 1.001 ⇒ ~0.1 % free
/// slots) stretches the convergence tail to 1000+ nearly-empty rounds.
/// Returns (rounds, dense ms, sparse ms).
pub fn tight_run_to_convergence(n: usize) -> (u64, f64, f64) {
    let sc = qlb_workload::Scenario::single_class(
        "bench-tight",
        n,
        (n / 8).max(1),
        qlb_workload::CapacityDist::Constant { cap: 10 },
        1.001,
        qlb_workload::Placement::Hotspot,
    );
    let (inst, _) = sc.build(BENCH_SEED).expect("feasible");
    let start = State::all_on(&inst, qlb_core::ResourceId(0));
    let proto = SlackDamped::default();
    let cfg = RunConfig::new(BENCH_SEED, 1_000_000);
    let t0 = Instant::now();
    let dense = run(&inst, start.clone(), &proto, cfg);
    let dense_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let sparse = run_sparse(&inst, start, &proto, cfg);
    let sparse_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(dense.converged && sparse.converged);
    assert_eq!(dense.state, sparse.state, "executors diverged");
    assert_eq!(dense.rounds, sparse.rounds);
    (dense.rounds, dense_ms, sparse_ms)
}

// ---------------------------------------------------------------------
// persistent worker-pool measurements (BENCH_parallel.json)
// ---------------------------------------------------------------------

/// Per-round *dispatch* cost of the two parallel executors: the retired
/// scoped-spawn pattern (fresh OS threads + fresh move buffers every
/// round) vs. the persistent [`WorkerPool`] (condvar wake of long-lived
/// workers, reusable buffers). Both run a no-op round, so the number is
/// pure executor overhead, independent of instance size or core count.
#[derive(Debug, Clone)]
pub struct DispatchRow {
    /// Worker count.
    pub threads: usize,
    /// Mean ns of one no-op scoped-spawn round (the pre-pool executor).
    pub scoped_spawn_ns: f64,
    /// Mean ns of one no-op pooled round, same shard count.
    pub pool_ns: f64,
}

impl DispatchRow {
    /// How much cheaper pooled dispatch is (the regression-gated ratio).
    pub fn reduction(&self) -> f64 {
        self.scoped_spawn_ns / self.pool_ns
    }
}

/// The scoped-spawn round `run_threaded` used before the worker pool:
/// one fresh OS thread and one fresh move buffer per shard, every round.
/// Kept here (only) as the bench baseline the pool is compared against.
fn scoped_spawn_round<F: Fn(usize, &mut Vec<Move>) + Sync>(threads: usize, fill: &F) -> usize {
    let mut shards: Vec<Vec<Move>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|shard| {
                s.spawn(move || {
                    let mut buf = Vec::new();
                    fill(shard, &mut buf);
                    buf
                })
            })
            .collect();
        for h in handles {
            shards.push(h.join().expect("bench shard panicked"));
        }
    });
    shards.iter().map(Vec::len).sum()
}

/// Measure no-op round dispatch under both executors at `threads` shards.
pub fn measure_dispatch(threads: usize, budget_ms: u64) -> DispatchRow {
    let noop = |_shard: usize, _buf: &mut Vec<Move>| {};
    let scoped_spawn_ns = ns_per_call(
        || {
            black_box(scoped_spawn_round(threads, &noop));
        },
        budget_ms,
    );
    let pool = WorkerPool::new(threads);
    let mut out = Vec::new();
    let pool_ns = ns_per_call(
        || {
            pool.decide_round(noop, &mut out, false);
            black_box(out.len());
        },
        budget_ms,
    );
    DispatchRow {
        threads,
        scoped_spawn_ns,
        pool_ns,
    }
}

/// One row of the real-round latency table at size `n` (endgame state, the
/// regime where executor overhead is the largest share of a round).
#[derive(Debug, Clone)]
pub struct PoolRoundRow {
    /// Users.
    pub n: usize,
    /// Worker count.
    pub threads: usize,
    /// Mean ns of one sequential dense decision round.
    pub seq_round_ns: f64,
    /// Mean ns of the same round under the scoped-spawn executor.
    pub scoped_round_ns: f64,
    /// Mean ns of the same round under the persistent pool.
    pub pooled_round_ns: f64,
}

/// Time one dense decision round over the pinned endgame state three ways:
/// sequential, scoped-spawn sharded, pool sharded.
pub fn measure_pool_round(n: usize, threads: usize, budget_ms: u64) -> PoolRoundRow {
    let (inst, state) = crate::endgame_pair(n, BENCH_SEED, ACTIVE_FRAC);
    let proto = SlackDamped::default();
    let shards = shard_bounds(n, threads).len();
    let chunk = n.div_ceil(shards).max(1);
    let fill = |shard: usize, buf: &mut Vec<Move>| {
        let lo = (shard * chunk).min(n);
        let hi = (lo + chunk).min(n);
        decide_range_into(&inst, &state, &proto, BENCH_SEED, 9, lo, hi, buf);
    };

    let mut out = Vec::new();
    let seq_round_ns = ns_per_call(
        || {
            decide_round_into(&inst, &state, &proto, BENCH_SEED, 9, &mut out);
            black_box(out.len());
        },
        budget_ms,
    );
    let scoped_round_ns = ns_per_call(
        || {
            black_box(scoped_spawn_round(shards, &fill));
        },
        budget_ms,
    );
    let pool = WorkerPool::new(shards);
    let pooled_round_ns = ns_per_call(
        || {
            pool.decide_round(fill, &mut out, false);
            black_box(out.len());
        },
        budget_ms,
    );
    PoolRoundRow {
        n,
        threads: shards,
        seq_round_ns,
        scoped_round_ns,
        pooled_round_ns,
    }
}

/// One row of the SoA-kernel scaling table: sequential dense reference vs.
/// the pooled struct-of-arrays round at a given thread count.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Users.
    pub n: usize,
    /// Requested thread count (1 = the pool degenerates to the coordinator).
    pub threads: usize,
    /// Mean ns of one sequential dense reference round
    /// (`decide_round_into` over the `State`).
    pub seq_round_ns: f64,
    /// Mean ns of the same round decided through the pooled
    /// [`RoundView`] two-pass kernel.
    pub pooled_round_ns: f64,
}

impl ScalingRow {
    /// Sequential-reference / pooled-SoA round speedup (the regression-gated
    /// ratio at the highest thread count).
    pub fn speedup(&self) -> f64 {
        self.seq_round_ns / self.pooled_round_ns
    }
}

/// Measure the SoA round kernel's scaling over the pinned endgame state at
/// size `n`: one sequential dense reference, then the pooled
/// [`RoundView`] round at each requested thread count — the exact decide
/// path `run_threaded` executes per round (bitmap filter, batched RNG,
/// per-shard deltas), minus the coordinator merge (the round is re-decided
/// from the same state every iteration, so there is nothing to merge).
pub fn measure_scaling(n: usize, threads: &[usize], budget_ms: u64) -> Vec<ScalingRow> {
    let (inst, state) = crate::endgame_pair(n, BENCH_SEED, ACTIVE_FRAC);
    let proto = SlackDamped::default();
    let mut out = Vec::new();

    let seq_round_ns = ns_per_call(
        || {
            decide_round_into(&inst, &state, &proto, BENCH_SEED, 9, &mut out);
            black_box(out.len());
        },
        budget_ms,
    );

    let view = RoundView::new(&inst, &state);
    threads
        .iter()
        .map(|&t| {
            let active = shards_for(n, t);
            let chunk = shard_chunk(n, t);
            let pool = WorkerPool::new(active);
            let slots: Vec<Mutex<(ShardDeltas, ShardScratch)>> = (0..active)
                .map(|_| Mutex::new((ShardDeltas::new(inst.num_resources()), ShardScratch::new())))
                .collect();
            let view_ref = &view;
            let slots_ref = &slots;
            let inst_ref = &inst;
            let proto_ref = &proto;
            let pooled_round_ns = ns_per_call(
                || {
                    pool.decide_round_on(
                        |shard, buf| {
                            let lo = (shard * chunk).min(n);
                            let hi = ((shard + 1) * chunk).min(n);
                            if lo < hi {
                                let mut slot = slots_ref[shard].lock().unwrap();
                                let (deltas, scratch) = &mut *slot;
                                view_ref.decide_shard_into(
                                    inst_ref, proto_ref, BENCH_SEED, 9, lo, hi, buf, scratch,
                                    deltas,
                                );
                            }
                        },
                        &mut out,
                        false,
                        active,
                    );
                    // discard the deltas without merging: every iteration
                    // re-decides the same round from the same view
                    for slot in slots_ref {
                        slot.lock().unwrap().0.advance();
                    }
                    black_box(out.len());
                },
                budget_ms,
            );
            ScalingRow {
                n,
                threads: t,
                seq_round_ns,
                pooled_round_ns,
            }
        })
        .collect()
}

/// Dense vs. sparse open-system driver on an endgame-heavy workload.
#[derive(Debug, Clone)]
pub struct OpenSparseRow {
    /// Resources.
    pub m: usize,
    /// User-pool size (mostly parked — the regime the sparse path targets).
    pub pool: usize,
    /// Simulated rounds.
    pub rounds: u64,
    /// Mean active users over the run.
    pub mean_active: f64,
    /// Best-of-2 dense driver wall time, ms.
    pub dense_ms: f64,
    /// Best-of-2 sparse driver wall time, ms.
    pub sparse_ms: f64,
}

impl OpenSparseRow {
    /// Dense/sparse full-run speedup (gated ≥ 1: sparse must beat dense).
    pub fn speedup(&self) -> f64 {
        self.dense_ms / self.sparse_ms
    }
}

/// Run the open system at low offered load (ρ = 0.3) with a user pool four
/// times the fleet capacity: the steady state keeps ~92 % of the pool
/// parked, so a dense round wastes almost its whole scan on satisfied
/// users — the open-system analogue of the closed-model endgame.
pub fn measure_open_sparse(m: usize, rounds: u64) -> OpenSparseRow {
    let caps = vec![10u32; m];
    let total = 10 * m;
    let mu = 0.05f64;
    let lambda = 0.3 * mu * total as f64;
    let pool = 4 * total;
    let proto = SlackDamped::default();
    let base = OpenConfig::new(BENCH_SEED, rounds, lambda, mu);

    let mut dense_ms = f64::INFINITY;
    let mut sparse_ms = f64::INFINITY;
    let mut mean_active = 0.0;
    for _ in 0..2 {
        let t0 = Instant::now();
        let dense = run_open_system(&caps, pool, &proto, base);
        dense_ms = dense_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let sparse = run_open_system(&caps, pool, &proto, base.with_executor(Executor::Sparse));
        sparse_ms = sparse_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(dense.series, sparse.series, "open drivers diverged");
        mean_active = dense.mean_active;
    }
    OpenSparseRow {
        m,
        pool,
        rounds,
        mean_active,
        dense_ms,
        sparse_ms,
    }
}

/// Dense vs. sparse weighted engine on a tight-slack run.
#[derive(Debug, Clone)]
pub struct WeightedSparseRow {
    /// Users.
    pub n: usize,
    /// Rounds to convergence (identical under both executors).
    pub rounds: u64,
    /// Best-of-2 dense run, ms.
    pub dense_ms: f64,
    /// Best-of-2 sparse run, ms.
    pub sparse_ms: f64,
}

impl WeightedSparseRow {
    /// Dense/sparse full-run speedup (gated ≥ 1: sparse must beat dense).
    pub fn speedup(&self) -> f64 {
        self.dense_ms / self.sparse_ms
    }
}

/// The weighted analogue of [`tight_run_to_convergence`]: demands cycling
/// 1..=3, capacity margin γ ≈ 1.005, hotspot start — a long convergence
/// tail of nearly-empty rounds where the weighted active set pays off.
/// Resources hold ~128 weight units each so the sub-percent slack target
/// is actually representable in integer capacities.
pub fn measure_weighted_sparse(n: usize) -> WeightedSparseRow {
    let m = (n / 64).max(1);
    let weights: Vec<u32> = (0..n).map(|i| 1 + (i as u32 % 3)).collect();
    let total_w: u64 = weights.iter().map(|&w| w as u64).sum();
    let per = ((1.005 * total_w as f64) / m as f64).ceil() as u64;
    let winst = WeightedInstance::new(vec![per; m], weights).expect("valid weighted instance");
    let start = WeightedState::new(&winst, vec![ResourceId(0); n]).expect("valid start");
    let proto = WeightedSlackDamped::default();

    let mut dense_ms = f64::INFINITY;
    let mut sparse_ms = f64::INFINITY;
    let mut rounds = 0u64;
    for _ in 0..2 {
        let t0 = Instant::now();
        let dense = run_weighted_cfg(
            &winst,
            start.clone(),
            &proto,
            WeightedConfig::new(BENCH_SEED, 1_000_000),
        );
        dense_ms = dense_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let sparse = run_weighted_cfg(
            &winst,
            start.clone(),
            &proto,
            WeightedConfig::new(BENCH_SEED, 1_000_000).with_executor(Executor::Sparse),
        );
        sparse_ms = sparse_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert!(dense.converged && sparse.converged);
        assert_eq!(dense.state, sparse.state, "weighted executors diverged");
        assert_eq!(dense.rounds, sparse.rounds);
        rounds = dense.rounds;
    }
    WeightedSparseRow {
        n,
        rounds,
        dense_ms,
        sparse_ms,
    }
}

// ---------------------------------------------------------------------
// observability overhead measurements (BENCH_obs.json)
// ---------------------------------------------------------------------

/// One row of the sink-overhead comparison at size `n`.
#[derive(Debug, Clone)]
pub struct ObsRow {
    /// Users.
    pub n: usize,
    /// Rounds of the E1 kernel run.
    pub rounds: u64,
    /// Best-of-reps plain `run`, ms.
    pub plain_ms: f64,
    /// Best-of-reps `run_observed(NoopSink)`, ms.
    pub noop_ms: f64,
    /// Best-of-reps `run_observed(Recorder)`, ms.
    pub recorder_ms: f64,
    /// Median paired noop/plain overhead, percent.
    pub noop_overhead_pct: f64,
    /// Median paired recorder/plain overhead, percent.
    pub recorder_overhead_pct: f64,
    /// Events the recorder captured over one run.
    pub events_recorded: u64,
}

/// Time the E1 convergence kernel (slack-damped, γ = 1.25, m = n/8,
/// hotspot start, run to convergence) three ways — plain `run`,
/// `run_observed(NoopSink)`, `run_observed(Recorder)`.
///
/// The variants are *interleaved* per repetition so slow thermal /
/// frequency / cache drift hits all of them equally, and the overhead is
/// the **median of per-repetition paired ratios** — pairing cancels the
/// drift, the median cancels scheduler outliers. (A best-of-N minimum is
/// noisy at the ±2–3 % level for a few-ms kernel: one lucky sample on
/// either side swings the sign.)
pub fn measure_obs(n: usize, reps: usize) -> ObsRow {
    let (inst, start) = crate::standard_pair(n, BENCH_SEED);
    let proto = SlackDamped::default();
    let cfg = RunConfig::new(BENCH_SEED, 1_000_000);

    let mut plain = || run(&inst, start.clone(), &proto, cfg).rounds;
    let mut noop = || run_observed(&inst, start.clone(), &proto, cfg, &mut NoopSink).rounds;
    let mut events_recorded = 0u64;
    let mut recorder = || {
        let mut rec = Recorder::default();
        let out = run_observed(&inst, start.clone(), &proto, cfg, &mut rec);
        events_recorded = rec.events().total_recorded();
        out.rounds
    };
    // warm-up pass of each variant before any timed sample
    black_box((plain(), noop(), recorder()));
    let (mut noop_ratio, mut rec_ratio) = (Vec::new(), Vec::new());
    let (mut plain_ms, mut noop_ms, mut recorder_ms) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let p = once_ms(&mut plain);
        let s = once_ms(&mut noop);
        let r = once_ms(&mut recorder);
        noop_ratio.push(s / p);
        rec_ratio.push(r / p);
        plain_ms = plain_ms.min(p);
        noop_ms = noop_ms.min(s);
        recorder_ms = recorder_ms.min(r);
    }

    let rounds = run(&inst, start, &proto, cfg).rounds;
    ObsRow {
        n,
        rounds,
        plain_ms,
        noop_ms,
        recorder_ms,
        noop_overhead_pct: 100.0 * (median(&mut noop_ratio) - 1.0),
        recorder_overhead_pct: 100.0 * (median(&mut rec_ratio) - 1.0),
        events_recorded,
    }
}

/// Per-shard instrumentation overhead on a pooled run.
#[derive(Debug, Clone)]
pub struct ShardTimingRow {
    /// Users.
    pub n: usize,
    /// Worker threads of the pooled executor.
    pub threads: usize,
    /// Rounds of the kernel run.
    pub rounds: u64,
    /// Best-of-reps plain pooled `run`, ms.
    pub plain_ms: f64,
    /// Best-of-reps pooled `run_observed(NoopSink)` (shard timing
    /// requested but compiled away), ms.
    pub noop_ms: f64,
    /// Best-of-reps pooled `run_observed(Recorder)` with shard timing
    /// off, ms.
    pub recorder_off_ms: f64,
    /// Best-of-reps pooled `run_observed(Recorder)` with shard timing
    /// on, ms.
    pub recorder_on_ms: f64,
    /// Median paired noop/plain overhead, percent (must be ≈ 0: the
    /// `const ENABLED` short-circuit folds the whole profiling path away).
    pub noop_overhead_pct: f64,
    /// Median paired on/off overhead under the recorder, percent — the
    /// marginal cost of the per-shard profile itself.
    pub timing_overhead_pct: f64,
}

/// Time the E1 kernel under the pooled executor four ways — plain `run`,
/// `run_observed(NoopSink)`, and `run_observed(Recorder)` with shard
/// timing off and on — using the same interleaved paired-median scheme as
/// [`measure_obs`]. The on/off pair isolates the marginal cost of the
/// per-shard profile (scratch locking, per-shard clock reads, histogram
/// updates) from the rest of the recorder.
pub fn measure_shard_timing(n: usize, threads: usize, reps: usize) -> ShardTimingRow {
    let (inst, start) = crate::standard_pair(n, BENCH_SEED);
    let proto = SlackDamped::default();
    let base = RunConfig::new(BENCH_SEED, 1_000_000).with_executor(Executor::Threaded(threads));
    let off_cfg = base.with_shard_timing(false);

    let mut plain = || run(&inst, start.clone(), &proto, base).rounds;
    let mut noop = || run_observed(&inst, start.clone(), &proto, base, &mut NoopSink).rounds;
    let mut rec_off = || {
        let mut rec = Recorder::default();
        run_observed(&inst, start.clone(), &proto, off_cfg, &mut rec).rounds
    };
    let mut rec_on = || {
        let mut rec = Recorder::default();
        run_observed(&inst, start.clone(), &proto, base, &mut rec).rounds
    };
    black_box((plain(), noop(), rec_off(), rec_on()));
    let (mut noop_ratio, mut timing_ratio) = (Vec::new(), Vec::new());
    let (mut plain_ms, mut noop_ms, mut off_ms, mut on_ms) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let p = once_ms(&mut plain);
        let s = once_ms(&mut noop);
        let off = once_ms(&mut rec_off);
        let on = once_ms(&mut rec_on);
        noop_ratio.push(s / p);
        timing_ratio.push(on / off);
        plain_ms = plain_ms.min(p);
        noop_ms = noop_ms.min(s);
        off_ms = off_ms.min(off);
        on_ms = on_ms.min(on);
    }

    let rounds = run(&inst, start, &proto, base).rounds;
    ShardTimingRow {
        n,
        threads,
        rounds,
        plain_ms,
        noop_ms,
        recorder_off_ms: off_ms,
        recorder_on_ms: on_ms,
        noop_overhead_pct: 100.0 * (median(&mut noop_ratio) - 1.0),
        timing_overhead_pct: 100.0 * (median(&mut timing_ratio) - 1.0),
    }
}

// ---------------------------------------------------------------------
// serve daemon measurements (BENCH_serve.json)
// ---------------------------------------------------------------------

/// One steady-state serving measurement at pool size `n`.
///
/// The measured loop drives the in-process serving stack end to end —
/// wire-protocol parse, admission, placement, reply formatting — through
/// `qlb_serve::handle_line`, exactly what the daemon's serve loop executes
/// per request (minus the socket syscalls, which belong to the kernel, not
/// this codebase). Each iteration departs the oldest ticket and places a
/// replacement, so the system stays at `n` active slots; every `BATCH`
/// requests the background rebalancer gets a tick under a synthetic
/// backlog, which pins the adaptive budget at its floor — the starvation
/// gate asserts the floor really is a floor.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Steady-state active slots.
    pub n: usize,
    /// Real resources.
    pub m: usize,
    /// Place requests measured.
    pub requests: u64,
    /// Wall time of the measured loop, ms.
    pub elapsed_ms: f64,
    /// Median in-process placement latency, ns.
    pub place_p50_ns: u64,
    /// p95 in-process placement latency, ns.
    pub place_p95_ns: u64,
    /// Worst in-process placement latency, ns.
    pub place_max_ns: u64,
    /// Scheduler ticks taken during the measured loop.
    pub ticks: u64,
    /// Rebalance rounds those ticks executed.
    pub rebalance_rounds: u64,
    /// Ticks that had unsatisfied users but executed zero rounds — the
    /// backpressure budget floor guarantees this stays 0.
    pub starved_ticks: u64,
}

impl ServeRow {
    /// Sustained placements per second over the measured loop (departs and
    /// rebalance ticks included in the denominator — this is serving
    /// throughput, not a placement microbenchmark).
    pub fn places_per_sec(&self) -> f64 {
        self.requests as f64 / (self.elapsed_ms / 1e3)
    }
}

/// Requests between rebalancer ticks in [`measure_serve`] (mirrors the
/// daemon's default batch of a busy loop).
const SERVE_BATCH: u64 = 64;

/// Measure steady-state serving at pool size `n` over `requests`
/// place/depart pairs. Fleet shape mirrors the sparse bench scenario:
/// `m = n/64` resources with capacity margin γ = 1.25.
pub fn measure_serve(n: usize, requests: u64) -> ServeRow {
    use qlb_serve::{handle_line, ServeConfig, ServeCore};
    let m = (n / 64).max(8);
    let cap = ((1.25 * n as f64) / m as f64).ceil() as u32;
    let cfg = ServeConfig::new(BENCH_SEED);
    let mut core =
        ServeCore::with_capacities(&vec![cap; m], n + 4_096, cfg).expect("bench fleet is feasible");
    let mut sink = NoopSink;

    // Warm fill to the steady state and let the rebalancer settle.
    let mut tickets = std::collections::VecDeque::with_capacity(n + 1);
    for _ in 0..n {
        let out = core
            .place(qlb_core::ClassId(0), 1, &mut sink)
            .expect("warm fill fits under the admission bound");
        tickets.push_back(out.user.0);
    }
    for _ in 0..10_000 {
        if core.unsatisfied() == 0 {
            break;
        }
        core.tick(0, false, &mut sink);
    }

    // Measured loop: depart oldest, place replacement, tick per batch.
    let place_req = "{\"op\":\"place\"}";
    let mut lat = Vec::with_capacity(requests as usize);
    let mut depart_req = String::with_capacity(40);
    let (mut ticks, mut rounds, mut starved) = (0u64, 0u64, 0u64);
    let t0 = Instant::now();
    for i in 0..requests {
        let oldest = tickets.pop_front().expect("steady state keeps n tickets");
        depart_req.clear();
        use std::fmt::Write as _;
        let _ = write!(depart_req, "{{\"op\":\"depart\",\"user\":{oldest}}}");
        let reply = handle_line(&mut core, &depart_req, &mut sink);
        debug_assert!(reply.text.contains("\"ok\":true"), "{}", reply.text);
        let tp = Instant::now();
        let reply = handle_line(&mut core, place_req, &mut sink);
        lat.push(tp.elapsed().as_nanos() as u64);
        tickets.push_back(extract_user(&reply.text));
        if (i + 1) % SERVE_BATCH == 0 {
            let had_work = core.unsatisfied() > 0;
            let out = core.tick(SERVE_BATCH as usize, false, &mut sink);
            ticks += 1;
            rounds += out.rounds as u64;
            if had_work && out.rounds == 0 {
                starved += 1;
            }
        }
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    lat.sort_unstable();
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
    ServeRow {
        n,
        m,
        requests,
        elapsed_ms,
        place_p50_ns: pct(0.50),
        place_p95_ns: pct(0.95),
        place_max_ns: pct(1.0),
        ticks,
        rebalance_rounds: rounds,
        starved_ticks: starved,
    }
}

/// Marginal cost of the live telemetry plane on the steady-state serving
/// loop (the windowed-aggregation overhead committed to `BENCH_obs.json`).
#[derive(Debug, Clone)]
pub struct WindowRow {
    /// Steady-state active slots.
    pub n: usize,
    /// Place/depart pairs per measured repetition.
    pub requests: u64,
    /// Best-of-reps serving loop without telemetry, ms.
    pub base_ms: f64,
    /// Best-of-reps serving loop feeding [`qlb_serve::ServeTelemetry`], ms.
    pub telemetry_ms: f64,
    /// Median paired telemetry/base overhead, percent — the gated number.
    pub window_overhead_pct: f64,
    /// Stats snapshots taken across all telemetry repetitions.
    pub snapshots: u64,
}

/// One batch of the steady-state serving loop from [`measure_serve`]
/// (depart oldest + place replacement through `handle_line`, rebalancer
/// tick every [`SERVE_BATCH`] requests), optionally feeding the telemetry
/// plane exactly the way the daemon does: per-request latency into
/// `on_request`, per-tick `on_tick`, and a full `snapshot` every
/// [`qlb_serve::TelemetryOptions::DEFAULT_STATS_EVERY`] ticks. Both
/// variants time each request (the daemon reads the clock
/// unconditionally), so the paired ratio isolates the windowed-aggregation
/// work itself. Returns snapshots taken.
fn window_batch(
    core: &mut qlb_serve::ServeCore,
    tickets: &mut std::collections::VecDeque<u32>,
    requests: u64,
    ticks: &mut u64,
    mut tel: Option<&mut qlb_serve::ServeTelemetry>,
) -> u64 {
    use std::fmt::Write as _;
    let mut sink = NoopSink;
    let place_req = "{\"op\":\"place\"}";
    let mut depart_req = String::with_capacity(40);
    let mut snaps = 0u64;
    for i in 0..requests {
        let oldest = tickets.pop_front().expect("steady state keeps n tickets");
        depart_req.clear();
        let _ = write!(depart_req, "{{\"op\":\"depart\",\"user\":{oldest}}}");
        let t0 = Instant::now();
        let reply = qlb_serve::handle_line(core, &depart_req, &mut sink);
        let ns = t0.elapsed().as_nanos() as u64;
        debug_assert!(reply.text.contains("\"ok\":true"), "{}", reply.text);
        if let Some(t) = tel.as_deref_mut() {
            t.on_request(false, ns);
        }
        let t0 = Instant::now();
        let reply = qlb_serve::handle_line(core, place_req, &mut sink);
        let ns = t0.elapsed().as_nanos() as u64;
        if let Some(t) = tel.as_deref_mut() {
            t.on_request(true, ns);
        }
        tickets.push_back(extract_user(&reply.text));
        if (i + 1) % SERVE_BATCH == 0 {
            core.tick(SERVE_BATCH as usize, false, &mut sink);
            *ticks += 1;
            if let Some(t) = tel.as_deref_mut() {
                t.on_tick(core, SERVE_BATCH as usize);
                if ticks.is_multiple_of(qlb_serve::TelemetryOptions::DEFAULT_STATS_EVERY) {
                    black_box(t.snapshot(core));
                    snaps += 1;
                }
            }
        }
    }
    snaps
}

/// Measure the telemetry plane's marginal cost on the serving loop at pool
/// size `n`. Each of the `reps` repetitions alternates base (no telemetry)
/// and telemetry **slices** of one snapshot cadence period
/// (`SERVE_BATCH × DEFAULT_STATS_EVERY` requests, so every telemetry slice
/// carries exactly one snapshot build), and the overhead is the median of
/// the per-slice-pair ratios. Slice-level pairing matters: machine noise on
/// a shared box swings whole batches by several percent, and a tight
/// base/telemetry alternation samples the same noise on both sides where
/// batch-level pairing would not.
pub fn measure_window(n: usize, requests: u64, reps: usize) -> WindowRow {
    use qlb_serve::{ServeConfig, ServeCore, ServeTelemetry};
    let m = (n / 64).max(8);
    let cap = ((1.25 * n as f64) / m as f64).ceil() as u32;
    let cfg = ServeConfig::new(BENCH_SEED);
    let mut core =
        ServeCore::with_capacities(&vec![cap; m], n + 4_096, cfg).expect("bench fleet is feasible");
    let mut sink = NoopSink;

    let mut tickets = std::collections::VecDeque::with_capacity(n + 1);
    for _ in 0..n {
        let out = core
            .place(qlb_core::ClassId(0), 1, &mut sink)
            .expect("warm fill fits under the admission bound");
        tickets.push_back(out.user.0);
    }
    for _ in 0..10_000 {
        if core.unsatisfied() == 0 {
            break;
        }
        core.tick(0, false, &mut sink);
    }

    let mut tel = ServeTelemetry::new(core.num_classes(), core.max_tick_rounds());
    // One slice per snapshot cadence period; separate tick counters keep
    // the telemetry cadence regular (exactly one snapshot per slice).
    let slice = SERVE_BATCH * qlb_serve::TelemetryOptions::DEFAULT_STATS_EVERY;
    let slices = (requests / slice).max(1);
    let mut base_ticks = 0u64;
    let mut tel_ticks = 0u64;
    let mut snapshots = 0u64;
    // warm-up pass of each variant before any timed sample
    window_batch(&mut core, &mut tickets, slice, &mut base_ticks, None);
    snapshots += window_batch(
        &mut core,
        &mut tickets,
        slice,
        &mut tel_ticks,
        Some(&mut tel),
    );
    let mut ratio = Vec::new();
    let (mut base_ms, mut telemetry_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let (mut b_rep, mut t_rep) = (0.0f64, 0.0f64);
        for _ in 0..slices {
            let t0 = Instant::now();
            window_batch(&mut core, &mut tickets, slice, &mut base_ticks, None);
            let b = t0.elapsed().as_secs_f64() * 1e3;
            let t0 = Instant::now();
            snapshots += window_batch(
                &mut core,
                &mut tickets,
                slice,
                &mut tel_ticks,
                Some(&mut tel),
            );
            let t = t0.elapsed().as_secs_f64() * 1e3;
            ratio.push(t / b);
            b_rep += b;
            t_rep += t;
        }
        base_ms = base_ms.min(b_rep);
        telemetry_ms = telemetry_ms.min(t_rep);
    }
    WindowRow {
        n,
        requests,
        base_ms,
        telemetry_ms,
        window_overhead_pct: 100.0 * (median(&mut ratio) - 1.0),
        snapshots,
    }
}

/// Marginal cost of the causal span layer on the steady-state serving
/// loop (the `spans` section committed to `BENCH_obs.json`): the same
/// depart + place + tick loop as [`measure_window`], dispatched through
/// [`qlb_serve::handle_line_spanned`] under the daemon's head-sampling
/// plane at three settings — every request traced (`sample = 1`), the
/// daemon's flight-recorder default (`sample = 64`, the gated number),
/// and the plane disabled outright (the spans-off branch, which must sit
/// at ≈ 0 and doubles as the null-pair noise reference).
#[derive(Debug, Clone)]
pub struct SpansRow {
    /// Steady-state active slots.
    pub n: usize,
    /// Place/depart pairs per measured repetition.
    pub requests: u64,
    /// Best-of-reps untraced serving loop, ms.
    pub base_ms: f64,
    /// Best-of-reps with every request traced, ms.
    pub sample1_ms: f64,
    /// Best-of-reps at the daemon's default head-sampling rate, ms.
    pub sample64_ms: f64,
    /// Best-of-reps with the span plane disabled (branch only), ms.
    pub disabled_ms: f64,
    /// Median paired sample=1 overhead, percent.
    pub sample1_overhead_pct: f64,
    /// Median paired sample=64 overhead, percent — the gated number.
    pub sample64_overhead_pct: f64,
    /// Median paired disabled overhead, percent (≈ 0 by construction).
    pub disabled_overhead_pct: f64,
    /// Spans assembled across all traced repetitions.
    pub spans_built: u64,
}

/// The daemon's head-sampling span plane, reproduced for the bench: an
/// every-op clock decides which requests are traced, a separate counter
/// names the spans, and the probe trace + move buffer are reused scratch
/// (mirrors `qlb-serve`'s internal `SpanPlane`). `sample = 0` keeps the
/// plane present but inert — the daemon's spans-off branch.
struct SpanClock {
    sample: u64,
    ops: u64,
    next_id: u64,
    trace: qlb_serve::PlaceTrace,
    moves: Vec<qlb_serve::MoveRecord>,
}

impl SpanClock {
    fn new(sample: u64) -> Self {
        SpanClock {
            sample,
            ops: 0,
            next_id: 1,
            trace: qlb_serve::PlaceTrace::default(),
            moves: Vec::new(),
        }
    }
}

/// Dispatch one request the way the daemon's serve loop does under the
/// span plane: head-sampled requests go through
/// [`qlb_serve::handle_line_spanned`] with a span context and the
/// assembled [`qlb_obs::SpanRecord`] is consumed via `black_box` (the
/// daemon hands it to the sink and the flight ring); sampled-out requests
/// take the `span = None` path; a disabled or absent plane is the plain
/// [`qlb_serve::handle_line`] baseline.
fn span_dispatch(
    core: &mut qlb_serve::ServeCore,
    line: &str,
    sink: &mut NoopSink,
    plane: &mut Option<&mut SpanClock>,
    built: &mut u64,
) -> qlb_serve::Reply {
    match plane.as_deref_mut() {
        Some(p) if p.sample > 0 => {
            let traced = p.ops.is_multiple_of(p.sample);
            p.ops += 1;
            if traced {
                let id = p.next_id;
                p.next_id += 1;
                let (reply, span) = qlb_serve::handle_line_spanned(
                    core,
                    None,
                    line,
                    sink,
                    Some((id, &mut p.trace)),
                );
                if let Some(span) = span {
                    *built += 1;
                    black_box(&span);
                }
                reply
            } else {
                qlb_serve::handle_line_spanned(core, None, line, sink, None).0
            }
        }
        _ => qlb_serve::handle_line(core, line, sink),
    }
}

/// One batch of the steady-state serving loop from [`measure_serve`]
/// (depart oldest + place replacement, rebalancer tick every
/// [`SERVE_BATCH`] requests), dispatched through [`span_dispatch`]. An
/// active plane also ticks through [`qlb_serve::ServeCore::tick_traced`]
/// so the migration-capture cost of causal continuation is part of the
/// measured overhead. Returns spans assembled.
fn span_batch(
    core: &mut qlb_serve::ServeCore,
    tickets: &mut std::collections::VecDeque<u32>,
    requests: u64,
    mut plane: Option<&mut SpanClock>,
) -> u64 {
    use std::fmt::Write as _;
    let mut sink = NoopSink;
    let place_req = "{\"op\":\"place\"}";
    let mut depart_req = String::with_capacity(40);
    let mut built = 0u64;
    for i in 0..requests {
        let oldest = tickets.pop_front().expect("steady state keeps n tickets");
        depart_req.clear();
        let _ = write!(depart_req, "{{\"op\":\"depart\",\"user\":{oldest}}}");
        let reply = span_dispatch(core, &depart_req, &mut sink, &mut plane, &mut built);
        debug_assert!(reply.text.contains("\"ok\":true"), "{}", reply.text);
        let reply = span_dispatch(core, place_req, &mut sink, &mut plane, &mut built);
        tickets.push_back(extract_user(&reply.text));
        if (i + 1).is_multiple_of(SERVE_BATCH) {
            match plane.as_deref_mut() {
                Some(p) if p.sample > 0 => {
                    p.moves.clear();
                    core.tick_traced(SERVE_BATCH as usize, false, &mut sink, &mut p.moves);
                    black_box(p.moves.len());
                }
                _ => {
                    core.tick(SERVE_BATCH as usize, false, &mut sink);
                }
            }
        }
    }
    built
}

/// Measure the span layer's marginal cost on the serving loop at pool
/// size `n`. Slice-paired exactly like [`measure_window`]: each slice
/// times the untraced baseline, then each span setting against it, and
/// every overhead is the median of its per-slice-pair ratios.
pub fn measure_spans(n: usize, requests: u64, reps: usize) -> SpansRow {
    use qlb_serve::{ServeConfig, ServeCore};
    let m = (n / 64).max(8);
    let cap = ((1.25 * n as f64) / m as f64).ceil() as u32;
    let cfg = ServeConfig::new(BENCH_SEED);
    let mut core =
        ServeCore::with_capacities(&vec![cap; m], n + 4_096, cfg).expect("bench fleet is feasible");
    let mut sink = NoopSink;

    let mut tickets = std::collections::VecDeque::with_capacity(n + 1);
    for _ in 0..n {
        let out = core
            .place(qlb_core::ClassId(0), 1, &mut sink)
            .expect("warm fill fits under the admission bound");
        tickets.push_back(out.user.0);
    }
    for _ in 0..10_000 {
        if core.unsatisfied() == 0 {
            break;
        }
        core.tick(0, false, &mut sink);
    }

    let mut s1 = SpanClock::new(1);
    let mut s64 = SpanClock::new(64);
    let mut off = SpanClock::new(0);
    let slice = SERVE_BATCH * qlb_serve::TelemetryOptions::DEFAULT_STATS_EVERY;
    let slices = (requests / slice).max(1);
    let mut spans_built = 0u64;
    // warm-up pass of each variant before any timed sample
    span_batch(&mut core, &mut tickets, slice, None);
    spans_built += span_batch(&mut core, &mut tickets, slice, Some(&mut s1));
    spans_built += span_batch(&mut core, &mut tickets, slice, Some(&mut s64));
    span_batch(&mut core, &mut tickets, slice, Some(&mut off));
    let (mut r1, mut r64, mut roff) = (Vec::new(), Vec::new(), Vec::new());
    let (mut base_ms, mut s1_ms, mut s64_ms, mut off_ms) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let (mut b_rep, mut s1_rep, mut s64_rep, mut off_rep) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for _ in 0..slices {
            // Every variant gets its own base slice immediately before it
            // (the window-bench pairing, tightened: a shared base would
            // let the heavy sample=1 slice bias the variants after it —
            // seen as a spurious +1% on the byte-identical disabled
            // branch). Heaviest variant last for the same reason.
            let t0 = Instant::now();
            span_batch(&mut core, &mut tickets, slice, None);
            let b = t0.elapsed().as_secs_f64() * 1e3;
            let t0 = Instant::now();
            span_batch(&mut core, &mut tickets, slice, Some(&mut off));
            let t = t0.elapsed().as_secs_f64() * 1e3;
            roff.push(t / b);
            off_rep += t;
            b_rep += b;
            let t0 = Instant::now();
            span_batch(&mut core, &mut tickets, slice, None);
            let b = t0.elapsed().as_secs_f64() * 1e3;
            let t0 = Instant::now();
            spans_built += span_batch(&mut core, &mut tickets, slice, Some(&mut s64));
            let t = t0.elapsed().as_secs_f64() * 1e3;
            r64.push(t / b);
            s64_rep += t;
            b_rep += b;
            let t0 = Instant::now();
            span_batch(&mut core, &mut tickets, slice, None);
            let b = t0.elapsed().as_secs_f64() * 1e3;
            let t0 = Instant::now();
            spans_built += span_batch(&mut core, &mut tickets, slice, Some(&mut s1));
            let t = t0.elapsed().as_secs_f64() * 1e3;
            r1.push(t / b);
            s1_rep += t;
            b_rep += b;
            // untimed cool-down: the every-request-traced slice runs ~50%
            // long and whatever it disturbs (frequency, caches) would
            // otherwise inflate the next pair's base
            span_batch(&mut core, &mut tickets, slice, None);
        }
        base_ms = base_ms.min(b_rep / 3.0);
        s1_ms = s1_ms.min(s1_rep);
        s64_ms = s64_ms.min(s64_rep);
        off_ms = off_ms.min(off_rep);
    }
    SpansRow {
        n,
        requests,
        base_ms,
        sample1_ms: s1_ms,
        sample64_ms: s64_ms,
        disabled_ms: off_ms,
        sample1_overhead_pct: 100.0 * (median(&mut r1) - 1.0),
        sample64_overhead_pct: 100.0 * (median(&mut r64) - 1.0),
        disabled_overhead_pct: 100.0 * (median(&mut roff) - 1.0),
        spans_built,
    }
}

// ---------------------------------------------------------------------
// memory measurements (BENCH_mem.json)
// ---------------------------------------------------------------------

/// One memory-accounting row: the working set an executor holds for an
/// instance plus what its measured region allocates. Produced only under
/// the counting global allocator ([`qlb_obs::mem`]); the `mem` bench and
/// `qlb-bench-check` both install it.
///
/// The measured region differs by executor (and the JSON row says which):
/// for the round executors (`dense-seq`, `pooled-soa`) it is 32
/// steady-state rounds after warm-up — the tentpole's zero-copy claim —
/// while for `chunked` it is a whole run to convergence from the hotspot
/// start, the capacity-planning number for huge `n`.
#[derive(Debug, Clone)]
pub struct MemRow {
    /// Which executor the row describes.
    pub executor: &'static str,
    /// Users.
    pub n: usize,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Live bytes the executor's state occupies (dense `State`, SoA view +
    /// shard slots + pool buffers, or resident chunk bytes).
    pub working_set_bytes: usize,
    /// Peak bytes allocated above the steady-state baseline across the
    /// measured region.
    pub round_peak_bytes: usize,
    /// Allocations across the measured region (gated to 0 for the
    /// steady-state pooled round).
    pub steady_allocs: u64,
}

impl MemRow {
    /// Working set normalized by population.
    pub fn working_set_bytes_per_user(&self) -> f64 {
        self.working_set_bytes as f64 / self.n as f64
    }
    /// Measured-region peak normalized by population (the ≤ 12 B/user
    /// acceptance gate for `pooled-soa`).
    pub fn round_peak_bytes_per_user(&self) -> f64 {
        self.round_peak_bytes as f64 / self.n as f64
    }
}

/// Panic unless the counting allocator is actually installed — a memory
/// row measured under the system allocator would read all-zero and pass
/// every gate vacuously.
fn require_counting() {
    assert!(
        qlb_obs::mem::counting(),
        "memory measurement requires the qlb_obs::mem::CountingAlloc global allocator"
    );
}

/// Memory row of the sequential dense executor: working set = one dense
/// `State` clone; measured region = 32 warm decision rounds over the
/// pinned endgame state (buffer reuse keeps them alloc-free too).
pub fn measure_mem_dense(n: usize) -> MemRow {
    require_counting();
    let (inst, seed_state) = crate::endgame_pair(n, BENCH_SEED, ACTIVE_FRAC);
    let proto = SlackDamped::default();
    let setup = qlb_obs::MemMark::here();
    let state = seed_state.clone();
    let working_set_bytes = setup.live_since();
    let mut moves = Vec::new();
    for _ in 0..4 {
        decide_round_into(&inst, &state, &proto, BENCH_SEED, 9, &mut moves);
    }
    let mark = qlb_obs::MemMark::here();
    for _ in 0..32 {
        decide_round_into(&inst, &state, &proto, BENCH_SEED, 9, &mut moves);
        black_box(moves.len());
    }
    MemRow {
        executor: "dense-seq",
        n,
        threads: 1,
        working_set_bytes,
        round_peak_bytes: mark.peak_since(),
        steady_allocs: mark.allocs_since(),
    }
}

/// Memory row of the shard-owned pooled SoA executor — the tentpole gate.
/// Working set = the `RoundView` (aligned assignment cells, loads,
/// unsatisfied bitmaps) plus per-shard delta/scratch slots, pool buffers,
/// and the merged move buffer, all after warm-up; measured region = 32
/// full steady-state rounds (decide → merge loads → apply → repair),
/// exactly the phases `run_threaded`'s owned path executes, which must
/// allocate **nothing** and therefore peak at 0 bytes.
pub fn measure_mem_pooled(n: usize, threads: usize) -> MemRow {
    require_counting();
    let (inst, state) = crate::endgame_pair(n, BENCH_SEED, ACTIVE_FRAC);
    let proto = SlackDamped::default();
    let active = shards_for(n, threads);
    let chunk = shard_chunk(n, threads);
    let setup = qlb_obs::MemMark::here();
    let mut view = RoundView::new(&inst, &state);
    drop(state); // the view owns the round state from here on
    let slots: Vec<Mutex<(ShardDeltas, ShardScratch)>> = (0..active)
        .map(|_| Mutex::new((ShardDeltas::new(inst.num_resources()), ShardScratch::new())))
        .collect();
    let pool = WorkerPool::new(active);
    let mut out = Vec::new();

    let mut round = 0u64;
    let mut full_round = |view: &mut RoundView, out: &mut Vec<Move>| {
        {
            let r = round;
            let view_ref = &*view;
            let slots_ref = &slots;
            let inst_ref = &inst;
            let proto_ref = &proto;
            pool.decide_round_on(
                |shard, buf| {
                    let lo = (shard * chunk).min(n);
                    let hi = ((shard + 1) * chunk).min(n);
                    if lo < hi {
                        let mut slot = slots_ref[shard].lock().unwrap();
                        let (deltas, scratch) = &mut *slot;
                        view_ref.decide_shard_into(
                            inst_ref, proto_ref, BENCH_SEED, r, lo, hi, buf, scratch, deltas,
                        );
                    }
                },
                out,
                false,
                active,
            );
        }
        for slot in &slots {
            view.merge_loads(&slot.lock().unwrap().0);
        }
        view.apply_assignments(out);
        for slot in &slots {
            view.repair_touched(&inst, &mut slot.lock().unwrap().0);
        }
        round += 1;
    };

    for _ in 0..8 {
        full_round(&mut view, &mut out); // warm-up: buffers grow once
    }
    let working_set_bytes = setup.live_since();
    let mark = qlb_obs::MemMark::here();
    for _ in 0..32 {
        full_round(&mut view, &mut out);
        black_box(out.len());
    }
    MemRow {
        executor: "pooled-soa",
        n,
        threads,
        working_set_bytes,
        round_peak_bytes: mark.peak_since(),
        steady_allocs: mark.allocs_since(),
    }
}

/// Memory row of the chunked lazily-materialized executor: working set =
/// resident chunk bytes of the hotspot start (uniform chunks, so ~0);
/// measured region = the **whole run** to convergence, including the
/// final dense `State` materialization — the honest peak a capacity plan
/// for huge `n` must budget for.
pub fn measure_mem_chunked(n: usize) -> MemRow {
    require_counting();
    let (inst, _) = crate::standard_pair(n, BENCH_SEED);
    let proto = SlackDamped::default();
    let mark = qlb_obs::MemMark::here();
    let assign = qlb_engine::hotspot_chunked(&inst, ResourceId(0));
    let working_set_bytes = assign.resident_bytes();
    let (out, _assign) =
        qlb_engine::run_chunked(&inst, assign, &proto, RunConfig::new(BENCH_SEED, 1_000_000));
    assert!(out.converged, "chunked mem run must converge");
    MemRow {
        executor: "chunked",
        n,
        threads: 1,
        working_set_bytes,
        round_peak_bytes: mark.peak_since(),
        steady_allocs: mark.allocs_since(),
    }
}

/// Pull the admitted ticket id out of a place reply without a full JSON
/// parse (reply extraction is client work, not daemon work — keep it off
/// the measured path's allocator).
fn extract_user(reply: &str) -> u32 {
    let key = "\"user\":";
    let at = reply.find(key).expect("admitted place reply carries user") + key.len();
    let digits: String = reply[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().expect("user id is numeric")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore]
    fn window_overhead_probe() {
        let row = measure_window(65_536, 16_384, 9);
        println!(
            "probe: base {:.2} ms | telemetry {:.2} ms | overhead {:+.2}% ({} snaps)",
            row.base_ms, row.telemetry_ms, row.window_overhead_pct, row.snapshots
        );
    }

    #[test]
    #[ignore]
    fn window_null_probe() {
        // Paired base-vs-base: any nonzero "overhead" here is measurement
        // bias/noise, not telemetry cost.
        use qlb_serve::{ServeConfig, ServeCore};
        let n = 65_536usize;
        let m = n / 64;
        let cap = ((1.25 * n as f64) / m as f64).ceil() as u32;
        let mut core =
            ServeCore::with_capacities(&vec![cap; m], n + 4_096, ServeConfig::new(BENCH_SEED))
                .unwrap();
        let mut sink = NoopSink;
        let mut tickets = std::collections::VecDeque::with_capacity(n + 1);
        for _ in 0..n {
            let out = core.place(qlb_core::ClassId(0), 1, &mut sink).unwrap();
            tickets.push_back(out.user.0);
        }
        for _ in 0..10_000 {
            if core.unsatisfied() == 0 {
                break;
            }
            core.tick(0, false, &mut sink);
        }
        let mut ticks = 0u64;
        let slice = 2_048u64;
        window_batch(&mut core, &mut tickets, slice, &mut ticks, None);
        window_batch(&mut core, &mut tickets, slice, &mut ticks, None);
        let mut ratio = Vec::new();
        for _ in 0..15 * 8 {
            let t0 = Instant::now();
            window_batch(&mut core, &mut tickets, slice, &mut ticks, None);
            let a = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            window_batch(&mut core, &mut tickets, slice, &mut ticks, None);
            let b = t0.elapsed().as_secs_f64();
            ratio.push(b / a);
        }
        let med = 100.0 * (median(&mut ratio) - 1.0);
        ratio.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p = |q: f64| 100.0 * (ratio[(q * (ratio.len() - 1) as f64) as usize] - 1.0);
        println!(
            "null slice-pair overhead: median {med:+.2}% | p10 {:+.2}% | p90 {:+.2}%",
            p(0.1),
            p(0.9)
        );
    }

    #[test]
    #[ignore]
    fn window_cost_breakdown() {
        use qlb_serve::{ServeConfig, ServeCore, ServeTelemetry};
        let n = 65_536;
        let m = n / 64;
        let cfg = ServeConfig::new(BENCH_SEED);
        let mut core = ServeCore::with_capacities(&vec![1_300; m], n + 4_096, cfg).unwrap();
        let mut sink = NoopSink;
        for _ in 0..n {
            core.place(qlb_core::ClassId(0), 1, &mut sink).unwrap();
        }
        for _ in 0..10_000 {
            if core.unsatisfied() == 0 {
                break;
            }
            core.tick(0, false, &mut sink);
        }
        let mut tel = ServeTelemetry::new(core.num_classes(), core.max_tick_rounds());
        let reps = 200_000u64;
        let t0 = Instant::now();
        for i in 0..reps {
            tel.on_request(i % 2 == 0, 1_000 + i % 512);
        }
        let per_req = t0.elapsed().as_nanos() as f64 / reps as f64;
        let t0 = Instant::now();
        for _ in 0..reps / 10 {
            tel.on_tick(&core, 64);
        }
        let per_tick = t0.elapsed().as_nanos() as f64 / (reps / 10) as f64;
        let t0 = Instant::now();
        for _ in 0..reps / 100 {
            black_box(tel.snapshot(&core));
        }
        let per_snap = t0.elapsed().as_nanos() as f64 / (reps / 100) as f64;
        println!(
            "on_request {per_req:.1} ns | on_tick {per_tick:.1} ns | snapshot {per_snap:.1} ns\n\
             per-pair estimate: {:.1} ns (3 observes) + {:.1} ns (tick/64) + {:.1} ns (snap/2048)",
            per_req * 3.0 / 2.0,
            per_tick / 64.0,
            per_snap / 2_048.0,
        );
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn measure_obs_smoke() {
        let row = measure_obs(512, 2);
        assert_eq!(row.n, 512);
        assert!(row.rounds > 0);
        assert!(row.plain_ms.is_finite() && row.plain_ms > 0.0);
        assert!(row.events_recorded > 0);
    }

    #[test]
    fn measure_shard_timing_smoke() {
        let row = measure_shard_timing(4_096, 3, 2);
        assert_eq!(row.threads, 3);
        assert!(row.rounds > 0);
        assert!(row.plain_ms > 0.0 && row.recorder_on_ms > 0.0);
        assert!(row.noop_overhead_pct.is_finite() && row.timing_overhead_pct.is_finite());
    }

    #[test]
    fn measure_sparse_smoke() {
        let row = measure_sparse(2_048, 5);
        assert!(row.active > 0);
        assert!(row.dense_round_ns > 0.0 && row.sparse_round_ns > 0.0);
        assert!(row.tight_rounds > 0);
    }

    #[test]
    fn measure_dispatch_smoke() {
        let row = measure_dispatch(4, 10);
        assert_eq!(row.threads, 4);
        assert!(row.scoped_spawn_ns > 0.0 && row.pool_ns > 0.0);
        assert!(row.reduction() > 0.0);
    }

    #[test]
    fn measure_pool_round_smoke() {
        let row = measure_pool_round(2_048, 4, 5);
        assert!(row.seq_round_ns > 0.0);
        assert!(row.scoped_round_ns > 0.0);
        assert!(row.pooled_round_ns > 0.0);
    }

    #[test]
    fn measure_scaling_smoke() {
        let rows = measure_scaling(4_096, &[1, 2], 5);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.seq_round_ns > 0.0 && row.pooled_round_ns > 0.0);
            assert!(row.speedup() > 0.0);
        }
    }

    #[test]
    fn measure_open_sparse_smoke() {
        let row = measure_open_sparse(32, 80);
        assert!(row.mean_active > 0.0);
        assert!(row.dense_ms > 0.0 && row.sparse_ms > 0.0);
    }

    #[test]
    fn measure_weighted_sparse_smoke() {
        let row = measure_weighted_sparse(4_096);
        assert!(row.rounds > 0);
        assert!(row.dense_ms > 0.0 && row.sparse_ms > 0.0);
    }

    #[test]
    fn measure_window_smoke() {
        // 2048 requests = 32 ticks per batch, so the default 32-tick
        // snapshot cadence fires at least once per telemetry batch
        let row = measure_window(4_096, 2_048, 2);
        assert_eq!(row.n, 4_096);
        assert!(row.base_ms > 0.0 && row.telemetry_ms > 0.0);
        assert!(row.window_overhead_pct.is_finite());
        assert!(row.snapshots >= 3, "snapshot cadence never fired");
    }

    #[test]
    fn measure_spans_smoke() {
        let row = measure_spans(4_096, 2_048, 2);
        assert_eq!(row.n, 4_096);
        assert!(row.base_ms > 0.0 && row.sample1_ms > 0.0);
        assert!(row.sample64_ms > 0.0 && row.disabled_ms > 0.0);
        assert!(row.sample1_overhead_pct.is_finite());
        assert!(row.sample64_overhead_pct.is_finite());
        assert!(row.disabled_overhead_pct.is_finite());
        assert!(row.spans_built > 0, "sampled batches must assemble spans");
    }

    /// Isolates the two halves of the sample=64 overhead: wire-path
    /// tracing (64 spans per 4096 ops) vs the per-tick `tick_traced`
    /// move capture. A `sample = u64::MAX` clock traces (almost) no
    /// requests but still ticks traced, so its paired overhead is the
    /// move-capture cost alone.
    #[test]
    #[ignore]
    fn spans_tick_capture_probe() {
        use qlb_serve::{ServeConfig, ServeCore};
        let n = 65_536;
        let m = n / 64;
        let cap = ((1.25 * n as f64) / m as f64).ceil() as u32;
        let mut core =
            ServeCore::with_capacities(&vec![cap; m], n + 4_096, ServeConfig::new(BENCH_SEED))
                .unwrap();
        let mut sink = NoopSink;
        let mut tickets = std::collections::VecDeque::with_capacity(n + 1);
        for _ in 0..n {
            let out = core.place(qlb_core::ClassId(0), 1, &mut sink).unwrap();
            tickets.push_back(out.user.0);
        }
        for _ in 0..10_000 {
            if core.unsatisfied() == 0 {
                break;
            }
            core.tick(0, false, &mut sink);
        }
        let mut tick_only = SpanClock::new(u64::MAX);
        let mut off = SpanClock::new(0);
        let slice = SERVE_BATCH * qlb_serve::TelemetryOptions::DEFAULT_STATS_EVERY;
        span_batch(&mut core, &mut tickets, slice, None);
        span_batch(&mut core, &mut tickets, slice, Some(&mut tick_only));
        let mut rtick = Vec::new();
        let mut roff = Vec::new();
        let mut moves = 0usize;
        for _ in 0..15 {
            for _ in 0..8 {
                let t0 = Instant::now();
                span_batch(&mut core, &mut tickets, slice, None);
                let b = t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                span_batch(&mut core, &mut tickets, slice, Some(&mut off));
                let t = t0.elapsed().as_secs_f64();
                roff.push(t / b);
                let t0 = Instant::now();
                span_batch(&mut core, &mut tickets, slice, None);
                let b = t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                span_batch(&mut core, &mut tickets, slice, Some(&mut tick_only));
                let t = t0.elapsed().as_secs_f64();
                rtick.push(t / b);
                moves = moves.max(tick_only.moves.len());
            }
        }
        println!(
            "null pair {:+.2}% | dispatch-arm + tick_traced {:+.2}% (max {} moves per tick)",
            100.0 * (median(&mut roff) - 1.0),
            100.0 * (median(&mut rtick) - 1.0),
            moves
        );
    }

    /// Produces the numbers committed to the `spans` section of
    /// `BENCH_obs.json` (run with `--ignored --nocapture` on a quiet box).
    #[test]
    #[ignore]
    fn spans_committed_numbers() {
        let row = measure_spans(65_536, 16_384, 15);
        println!(
            "spans n = {} ({} req/rep): base {:.3} ms | s1 {:.3} ms ({:+.2}%) | \
             s64 {:.3} ms ({:+.2}%) | off {:.3} ms ({:+.2}%) | {} spans",
            row.n,
            row.requests,
            row.base_ms,
            row.sample1_ms,
            row.sample1_overhead_pct,
            row.sample64_ms,
            row.sample64_overhead_pct,
            row.disabled_ms,
            row.disabled_overhead_pct,
            row.spans_built,
        );
    }

    #[test]
    fn measure_serve_smoke() {
        let row = measure_serve(4_096, 2_000);
        assert_eq!(row.n, 4_096);
        assert!(row.places_per_sec() > 0.0);
        assert!(row.place_p95_ns >= row.place_p50_ns);
        assert!(row.ticks > 0);
        assert_eq!(
            row.starved_ticks, 0,
            "backpressure floor must prevent starvation"
        );
    }
}
