//! `qlb-bench-check` — the metrics-driven performance regression gate.
//!
//! Re-runs the measurements behind the committed `BENCH_sparse.json`,
//! `BENCH_parallel.json` and `BENCH_obs.json` (through the same code in
//! `qlb_bench::checks`, so the numbers are comparable by construction)
//! and fails if the machine under test regresses beyond tolerance:
//!
//! * **sparse executor**: the measured endgame round speedup and the
//!   tight-slack full-run speedup must reach at least `--speedup-tolerance`
//!   (default 0.35) of the committed values — a gate on *ratios*, so it is
//!   robust to the absolute speed of the machine;
//! * **worker pool**: pooled round dispatch must stay at least 5× cheaper
//!   than the scoped-spawn baseline, the SoA `RoundView` pooled round must
//!   stay at least 3× faster than the dense sequential round at the
//!   committed top thread count, and the sparse open-system and weighted
//!   drivers must beat their dense counterparts outright on the committed
//!   endgame-heavy workloads (`BENCH_parallel.json`);
//! * **observability sinks**: the measured NoopSink and Recorder overheads
//!   must stay under the budgets recorded in `BENCH_obs.json`
//!   (`noop_overhead_budget_pct`, `recorder_overhead_budget_pct`) plus a
//!   noise margin (`--overhead-margin`, default 3 percentage points), and
//!   the windowed telemetry plane's marginal cost on the serving loop must
//!   stay inside the committed `windowed` budget (< 2 %) the same way, and
//!   the causal span layer at the daemon's default `--span-sample 64` must
//!   stay inside the committed `spans` budget (< 2 %) with its disabled
//!   branch at ≈ 0;
//! * **serving stack**: steady-state placements/sec through the full
//!   `qlb-serve` request path must reach at least `--speedup-tolerance` of
//!   the committed throughput AND the hard acceptance floor recorded in
//!   `BENCH_serve.json` (`floor_places_per_sec`, 50k/s), placement p95
//!   latency must stay within `1/tolerance` of the committed value, and
//!   the background rebalancer must never starve under backlog;
//! * **memory** (`BENCH_mem.json`): the shard-owned pooled round must run
//!   32 steady-state rounds with **zero** allocations and a round peak at
//!   or under the committed 12 bytes/user acceptance budget (exact, so
//!   enforced identically in `--quick`), and every executor's working-set
//!   bytes/user must stay within `--mem-growth` (default 1.35×) of the
//!   committed baseline.
//!
//! ```text
//! qlb-bench-check            # full gate (the committed sizes up to 10^5)
//! qlb-bench-check --quick    # CI smoke: smallest size per gate, ~seconds
//! ```
//!
//! Exit status 0 = all gates pass; 1 = regression; 2 = bad usage or
//! missing/corrupt baseline JSON.

use qlb_bench::checks::{
    measure_dispatch, measure_mem_chunked, measure_mem_dense, measure_mem_pooled, measure_obs,
    measure_open_sparse, measure_scaling, measure_serve, measure_shard_timing, measure_spans,
    measure_sparse, measure_weighted_sparse, measure_window, MemRow,
};
use serde_json::{parse_value_str, Value};
use std::process::exit;

// The memory gates count real allocations, so the gate binary itself runs
// under the shared counting allocator (same one the benches install).
#[global_allocator]
static GLOBAL: qlb_obs::CountingAlloc = qlb_obs::CountingAlloc;

struct Gate {
    name: String,
    passed: bool,
    detail: String,
}

fn load_json(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {path}: {e}");
        exit(2);
    });
    parse_value_str(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse baseline {path}: {e}");
        exit(2);
    })
}

fn f64_field(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

/// Find the committed result row for size `n`.
fn result_row(baseline: &Value, n: usize) -> Option<&Value> {
    match baseline.get("results") {
        Some(Value::Array(rows)) => rows
            .iter()
            .find(|r| r.get("n").and_then(Value::as_u64) == Some(n as u64)),
        _ => None,
    }
}

fn check_sparse(baseline: &Value, sizes: &[usize], tolerance: f64, gates: &mut Vec<Gate>) {
    for &n in sizes {
        let Some(row) = result_row(baseline, n) else {
            gates.push(Gate {
                name: format!("sparse/n{n}"),
                passed: false,
                detail: format!("no committed row for n = {n} in BENCH_sparse.json"),
            });
            continue;
        };
        let committed_round = f64_field(row, "round_speedup").unwrap_or(0.0);
        let committed_tight = f64_field(row, "tight_slack_speedup").unwrap_or(0.0);
        let measured = measure_sparse(n, 60);
        let round = measured.speedup();
        let tight = measured.tight_speedup();
        let round_floor = committed_round * tolerance;
        let tight_floor = committed_tight * tolerance;
        gates.push(Gate {
            name: format!("sparse/n{n}/round_speedup"),
            passed: round >= round_floor,
            detail: format!(
                "measured {round:.1}x vs committed {committed_round:.1}x \
                 (floor {round_floor:.1}x at tolerance {tolerance})"
            ),
        });
        gates.push(Gate {
            name: format!("sparse/n{n}/tight_slack_speedup"),
            passed: tight >= tight_floor,
            detail: format!(
                "measured {tight:.1}x vs committed {committed_tight:.1}x \
                 (floor {tight_floor:.1}x at tolerance {tolerance})"
            ),
        });
    }
}

/// Gates for `BENCH_parallel.json`. Unlike the size-swept sparse/obs
/// gates, each section here has one committed configuration, re-measured
/// identically in quick and full mode (all three are seconds-fast). The
/// floors combine the relative tolerance with the PR's hard acceptance
/// criteria: pooled dispatch must stay ≥ 5× cheaper than scoped spawn,
/// and the sparse open/weighted drivers must beat dense outright.
fn check_parallel(baseline: &Value, tolerance: f64, gates: &mut Vec<Gate>) {
    if let Some(d) = baseline.get("dispatch_overhead") {
        let threads = d.get("threads").and_then(Value::as_u64).unwrap_or(8) as usize;
        let committed = f64_field(d, "reduction").unwrap_or(0.0);
        let measured = measure_dispatch(threads, 100).reduction();
        let floor = (committed * tolerance).max(5.0);
        gates.push(Gate {
            name: format!("parallel/dispatch_reduction/t{threads}"),
            passed: measured >= floor,
            detail: format!(
                "pool {measured:.1}x cheaper than scoped spawn vs committed {committed:.1}x \
                 (floor {floor:.1}x)"
            ),
        });
    } else {
        gates.push(Gate {
            name: "parallel/dispatch_reduction".into(),
            passed: false,
            detail: "no dispatch_overhead section in BENCH_parallel.json".into(),
        });
    }
    let scaling_row = baseline
        .get("scaling")
        .and_then(|s| s.get("rows"))
        .and_then(|rows| match rows {
            Value::Array(rows) => rows
                .iter()
                .max_by_key(|r| r.get("threads").and_then(Value::as_u64).unwrap_or(0)),
            _ => None,
        });
    if let Some(row) = scaling_row {
        let n = row.get("n").and_then(Value::as_u64).unwrap_or(1_000_000) as usize;
        let threads = row.get("threads").and_then(Value::as_u64).unwrap_or(8) as usize;
        let committed = f64_field(row, "speedup").unwrap_or(0.0);
        let measured = measure_scaling(n, &[threads], 60)
            .first()
            .map(|r| r.speedup())
            .unwrap_or(0.0);
        // hard floor from the PR acceptance criteria: the SoA pooled round
        // must be ≥ 3× faster than the dense sequential round at the
        // committed top thread count, whatever the machine
        let floor = (committed * tolerance).max(3.0);
        gates.push(Gate {
            name: format!("parallel/scaling_speedup/n{n}/t{threads}"),
            passed: measured >= floor,
            detail: format!(
                "SoA pooled round {measured:.2}x vs dense sequential, committed {committed:.2}x \
                 (floor {floor:.2}x)"
            ),
        });
    } else {
        gates.push(Gate {
            name: "parallel/scaling_speedup".into(),
            passed: false,
            detail: "no scaling section in BENCH_parallel.json".into(),
        });
    }
    if let Some(o) = baseline.get("open_sparse") {
        let m = o.get("m").and_then(Value::as_u64).unwrap_or(256) as usize;
        let rounds = o.get("rounds").and_then(Value::as_u64).unwrap_or(2_000);
        let committed = f64_field(o, "speedup").unwrap_or(0.0);
        let measured = measure_open_sparse(m, rounds).speedup();
        let floor = (committed * tolerance).max(1.0);
        gates.push(Gate {
            name: format!("parallel/open_sparse_speedup/m{m}"),
            passed: measured >= floor,
            detail: format!(
                "sparse {measured:.1}x vs dense, committed {committed:.1}x (floor {floor:.1}x)"
            ),
        });
    } else {
        gates.push(Gate {
            name: "parallel/open_sparse_speedup".into(),
            passed: false,
            detail: "no open_sparse section in BENCH_parallel.json".into(),
        });
    }
    if let Some(w) = baseline.get("weighted_sparse") {
        let n = w.get("n").and_then(Value::as_u64).unwrap_or(100_000) as usize;
        let committed = f64_field(w, "speedup").unwrap_or(0.0);
        let measured = measure_weighted_sparse(n).speedup();
        let floor = (committed * tolerance).max(1.0);
        gates.push(Gate {
            name: format!("parallel/weighted_sparse_speedup/n{n}"),
            passed: measured >= floor,
            detail: format!(
                "sparse {measured:.1}x vs dense, committed {committed:.1}x (floor {floor:.1}x)"
            ),
        });
    } else {
        gates.push(Gate {
            name: "parallel/weighted_sparse_speedup".into(),
            passed: false,
            detail: "no weighted_sparse section in BENCH_parallel.json".into(),
        });
    }
}

fn check_obs(baseline: &Value, sizes: &[usize], reps: usize, margin: f64, gates: &mut Vec<Gate>) {
    // budgets live at the top level of BENCH_obs.json; fall back to the
    // historical budget prose ("< 2%") if a field is missing
    let noop_budget = f64_field(baseline, "noop_overhead_budget_pct").unwrap_or(2.0);
    let recorder_budget = f64_field(baseline, "recorder_overhead_budget_pct").unwrap_or(10.0);
    for &n in sizes {
        let measured = measure_obs(n, reps);
        let noop_cap = noop_budget + margin;
        let rec_cap = recorder_budget + margin;
        gates.push(Gate {
            name: format!("obs/n{n}/noop_overhead"),
            passed: measured.noop_overhead_pct <= noop_cap,
            detail: format!(
                "measured {:+.2}% vs budget {noop_budget:.1}% (+{margin:.1} noise margin)",
                measured.noop_overhead_pct
            ),
        });
        gates.push(Gate {
            name: format!("obs/n{n}/recorder_overhead"),
            passed: measured.recorder_overhead_pct <= rec_cap,
            detail: format!(
                "measured {:+.2}% vs budget {recorder_budget:.1}% (+{margin:.1} noise margin)",
                measured.recorder_overhead_pct
            ),
        });
    }
}

/// Gate on the per-shard profiling cost recorded in the `shard_timing`
/// section of `BENCH_obs.json`: the marginal on-vs-off overhead under the
/// recorder must stay inside its committed budget, and the NoopSink path
/// must stay at ≈ 0 % (the profiling hook compiles away entirely).
fn check_shard_timing(baseline: &Value, reps: usize, margin: f64, gates: &mut Vec<Gate>) {
    let Some(section) = baseline.get("shard_timing") else {
        gates.push(Gate {
            name: "obs/shard_timing".into(),
            passed: false,
            detail: "no shard_timing section in BENCH_obs.json".into(),
        });
        return;
    };
    let n = section.get("n").and_then(Value::as_u64).unwrap_or(65_536) as usize;
    let threads = section.get("threads").and_then(Value::as_u64).unwrap_or(8) as usize;
    let budget = f64_field(section, "timing_overhead_budget_pct").unwrap_or(2.0);
    // The pooled 8-thread kernel converges in a handful of rounds, so one
    // repetition is a few ms and scheduler noise per rep runs several
    // percent — too wide for the ≈-0 noop gate at `--quick` rep counts.
    // Reps are cheap here; take enough for a stable paired median.
    let measured = measure_shard_timing(n, threads, reps.max(21));
    // Even the paired median swings ±4–5% on this kernel (thread placement
    // persists within one run invocation), so the ≈-0 noop gate gets twice
    // the sequential-kernel noise margin: it exists to catch a broken
    // `const ENABLED` short-circuit, not sub-noise drift.
    let noop_cap = 2.0 * margin;
    gates.push(Gate {
        name: format!("obs/shard_timing/n{n}_t{threads}/noop"),
        passed: measured.noop_overhead_pct <= noop_cap,
        detail: format!(
            "NoopSink pooled run {:+.2}% vs plain (must be ≈ 0: cap {noop_cap:.1}%)",
            measured.noop_overhead_pct
        ),
    });
    gates.push(Gate {
        name: format!("obs/shard_timing/n{n}_t{threads}/marginal"),
        passed: measured.timing_overhead_pct <= budget + margin,
        detail: format!(
            "per-shard profile {:+.2}% on vs off under the recorder \
             (budget {budget:.1}% +{margin:.1} noise margin)",
            measured.timing_overhead_pct
        ),
    });
}

/// Gate on the windowed-telemetry cost recorded in the `windowed` section
/// of `BENCH_obs.json`: the marginal overhead of feeding the live
/// telemetry plane (per-request latency into the windowed aggregator,
/// per-tick SLO accounting, periodic snapshots) on the steady-state
/// serving loop must stay inside its committed budget. Runs in `--quick`
/// too — at a shorter batch, never a smaller cadence, so the snapshot path
/// is always exercised.
fn check_window(baseline: &Value, quick: bool, reps: usize, margin: f64, gates: &mut Vec<Gate>) {
    let Some(section) = baseline.get("windowed") else {
        gates.push(Gate {
            name: "obs/windowed".into(),
            passed: false,
            detail: "no windowed section in BENCH_obs.json".into(),
        });
        return;
    };
    let n = section.get("n").and_then(Value::as_u64).unwrap_or(65_536) as usize;
    let committed_requests = section
        .get("requests_per_rep")
        .and_then(Value::as_u64)
        .unwrap_or(16_384);
    // a quarter batch still spans 16+ rebalancer ticks, so every telemetry
    // rep crosses at least one snapshot cadence
    let requests = if quick {
        (committed_requests / 4).max(2_048)
    } else {
        committed_requests
    };
    let budget = f64_field(section, "window_overhead_budget_pct").unwrap_or(2.0);
    // same few-ms-per-rep noise profile as the shard-timing gate: take
    // enough reps for a stable paired median
    let measured = measure_window(n, requests, reps.max(15));
    gates.push(Gate {
        name: format!("obs/windowed/n{n}/marginal"),
        passed: measured.window_overhead_pct <= budget + margin,
        detail: format!(
            "telemetry plane {:+.2}% on vs off the serving loop, {} snapshots \
             (budget {budget:.1}% +{margin:.1} noise margin)",
            measured.window_overhead_pct, measured.snapshots
        ),
    });
}

/// Gate on the causal-span cost recorded in the `spans` section of
/// `BENCH_obs.json`: at the daemon's default head-sampling rate
/// (`--span-sample 64`) the span layer's marginal overhead on the
/// steady-state serving loop must stay inside the committed budget (the
/// < 2 % acceptance criterion), and the spans-disabled branch must stay
/// at ≈ 0 (the spanned dispatch refactor may not tax untraced requests).
/// Runs in `--quick` too, at the same shortened batch as the windowed
/// gate.
fn check_spans(baseline: &Value, quick: bool, reps: usize, margin: f64, gates: &mut Vec<Gate>) {
    let Some(section) = baseline.get("spans") else {
        gates.push(Gate {
            name: "obs/spans".into(),
            passed: false,
            detail: "no spans section in BENCH_obs.json".into(),
        });
        return;
    };
    let n = section.get("n").and_then(Value::as_u64).unwrap_or(65_536) as usize;
    let committed_requests = section
        .get("requests_per_rep")
        .and_then(Value::as_u64)
        .unwrap_or(16_384);
    let requests = if quick {
        (committed_requests / 4).max(2_048)
    } else {
        committed_requests
    };
    let budget = f64_field(section, "sample64_overhead_budget_pct").unwrap_or(2.0);
    let measured = measure_spans(n, requests, reps.max(15));
    gates.push(Gate {
        name: format!("obs/spans/n{n}/sample64"),
        passed: measured.sample64_overhead_pct <= budget + margin,
        detail: format!(
            "span plane at --span-sample 64 {:+.2}% on vs off the serving loop \
             (budget {budget:.1}% +{margin:.1} noise margin)",
            measured.sample64_overhead_pct
        ),
    });
    // same doubled margin as the shard-timing ≈-0 gate: this exists to
    // catch a sampled-out path that started doing real work, not noise
    let off_cap = 2.0 * margin;
    gates.push(Gate {
        name: format!("obs/spans/n{n}/disabled"),
        passed: measured.disabled_overhead_pct <= off_cap,
        detail: format!(
            "spans-off branch {:+.2}% vs plain dispatch (must be ≈ 0: cap {off_cap:.1}%)",
            measured.disabled_overhead_pct
        ),
    });
}

/// Gates for `BENCH_serve.json`: the steady-state serving loop (depart +
/// place through `handle_line`, rebalancer ticking under synthetic
/// backlog) re-measured at the committed sizes. Three gates per size:
///
/// * throughput ≥ max(committed × tolerance, `floor_places_per_sec`) —
///   the hard 50k/s acceptance floor applies at every size, so `--quick`
///   enforces it too;
/// * placement p95 ≤ committed p95 / tolerance (latency gates invert:
///   bigger is worse);
/// * zero starved ticks — the budget floor (`tick_budget ≥ 1`) must hold
///   however deep the backlog.
fn check_serve(baseline: &Value, sizes: &[usize], tolerance: f64, gates: &mut Vec<Gate>) {
    let hard_floor = f64_field(baseline, "floor_places_per_sec").unwrap_or(50_000.0);
    for &n in sizes {
        let Some(row) = result_row(baseline, n) else {
            gates.push(Gate {
                name: format!("serve/n{n}"),
                passed: false,
                detail: format!("no committed row for n = {n} in BENCH_serve.json"),
            });
            continue;
        };
        let requests = row
            .get("requests")
            .and_then(Value::as_u64)
            .unwrap_or(60_000);
        let committed_pps = f64_field(row, "places_per_sec").unwrap_or(0.0);
        let committed_p95 = f64_field(row, "place_p95_us").unwrap_or(0.0);
        let measured = measure_serve(n, requests);
        let pps = measured.places_per_sec();
        let floor = (committed_pps * tolerance).max(hard_floor);
        gates.push(Gate {
            name: format!("serve/n{n}/places_per_sec"),
            passed: pps >= floor,
            detail: format!(
                "measured {pps:.0}/s vs committed {committed_pps:.0}/s \
                 (floor {floor:.0}/s incl. the {hard_floor:.0}/s acceptance floor)"
            ),
        });
        let p95_us = measured.place_p95_ns as f64 / 1e3;
        let cap = committed_p95 / tolerance;
        gates.push(Gate {
            name: format!("serve/n{n}/place_p95"),
            passed: committed_p95 > 0.0 && p95_us <= cap,
            detail: format!(
                "measured p95 {p95_us:.2} µs vs committed {committed_p95:.2} µs \
                 (cap {cap:.2} µs at tolerance {tolerance})"
            ),
        });
        gates.push(Gate {
            name: format!("serve/n{n}/rebalancer_liveness"),
            passed: measured.starved_ticks == 0,
            detail: format!(
                "{} of {} backlogged ticks ran zero rebalance rounds \
                 (budget floor must keep the rebalancer live)",
                measured.starved_ticks, measured.ticks
            ),
        });
    }
}

/// Gates for `BENCH_mem.json`: re-measure each committed executor row at
/// its committed size and enforce
///
/// * the **hard acceptance gates** on the shard-owned pooled round —
///   zero steady-state allocations, and a steady-state round peak at or
///   under the committed `pooled_round_peak_bytes_per_user_max` budget
///   (12 bytes/user at n = 10⁶) — in `--quick` too: allocation counts
///   are exact, not timing-noisy, so there is no small-size variant;
/// * a **regression cap** on every row's working-set bytes/user (and the
///   chunked whole-run peak): measured ≤ committed × `growth`. Byte
///   counts are deterministic for a fixed seed, so the cap is tight.
fn check_mem(baseline: &Value, growth: f64, gates: &mut Vec<Gate>) {
    let peak_cap = baseline
        .get("gates")
        .and_then(|g| f64_field(g, "pooled_round_peak_bytes_per_user_max"))
        .unwrap_or(12.0);
    let rows = match baseline.get("results") {
        Some(Value::Array(rows)) => rows,
        _ => {
            gates.push(Gate {
                name: "mem/results".into(),
                passed: false,
                detail: "no results array in BENCH_mem.json".into(),
            });
            return;
        }
    };
    for row in rows {
        let executor = row
            .get("executor")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let n = row.get("n").and_then(Value::as_u64).unwrap_or(0) as usize;
        let threads = row.get("threads").and_then(Value::as_u64).unwrap_or(1) as usize;
        let committed_ws = f64_field(row, "working_set_bytes_per_user").unwrap_or(0.0);
        let measured: MemRow = match executor.as_str() {
            "dense-seq" => measure_mem_dense(n),
            "pooled-soa" => measure_mem_pooled(n, threads),
            "chunked" => measure_mem_chunked(n),
            other => {
                gates.push(Gate {
                    name: format!("mem/{other}"),
                    passed: false,
                    detail: format!("unknown executor '{other}' in BENCH_mem.json"),
                });
                continue;
            }
        };
        let ws = measured.working_set_bytes_per_user();
        // absolute floor of 0.05 B/user so an essentially-zero committed
        // working set (the chunked uniform start) stays checkable
        let ws_cap = (committed_ws * growth).max(0.05);
        gates.push(Gate {
            name: format!("mem/{executor}/n{n}/working_set"),
            passed: ws <= ws_cap,
            detail: format!(
                "measured {ws:.2} B/user vs committed {committed_ws:.2} B/user \
                 (cap {ws_cap:.2} at growth {growth})"
            ),
        });
        match executor.as_str() {
            "pooled-soa" => {
                gates.push(Gate {
                    name: format!("mem/{executor}/n{n}/steady_allocs"),
                    passed: measured.steady_allocs == 0,
                    detail: format!(
                        "{} allocations across 32 steady-state shard-owned rounds (must be 0)",
                        measured.steady_allocs
                    ),
                });
                let peak = measured.round_peak_bytes_per_user();
                gates.push(Gate {
                    name: format!("mem/{executor}/n{n}/round_peak"),
                    passed: peak <= peak_cap,
                    detail: format!(
                        "steady-state round peak {peak:.2} B/user vs the hard \
                         {peak_cap:.1} B/user acceptance gate"
                    ),
                });
            }
            "chunked" => {
                let committed_peak = f64_field(row, "round_peak_bytes_per_user").unwrap_or(0.0);
                let peak = measured.round_peak_bytes_per_user();
                let cap = committed_peak * growth;
                gates.push(Gate {
                    name: format!("mem/{executor}/n{n}/run_peak"),
                    passed: committed_peak > 0.0 && peak <= cap,
                    detail: format!(
                        "whole-run peak {peak:.2} B/user vs committed {committed_peak:.2} \
                         (cap {cap:.2} at growth {growth})"
                    ),
                });
            }
            _ => {}
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let quick = args.iter().any(|a| a == "--quick");
    let tolerance: f64 = get("--speedup-tolerance").map_or(0.35, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad --speedup-tolerance");
            exit(2)
        })
    });
    let margin: f64 = get("--overhead-margin").map_or(3.0, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad --overhead-margin");
            exit(2)
        })
    });

    let mem_growth: f64 = get("--mem-growth").map_or(1.35, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad --mem-growth");
            exit(2)
        })
    });

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let sparse_baseline = load_json(&format!("{root}/BENCH_sparse.json"));
    let obs_baseline = load_json(&format!("{root}/BENCH_obs.json"));
    let parallel_baseline = load_json(&format!("{root}/BENCH_parallel.json"));
    let serve_baseline = load_json(&format!("{root}/BENCH_serve.json"));
    let mem_baseline = load_json(&format!("{root}/BENCH_mem.json"));

    // quick mode exercises every gate at the smallest committed size (a
    // few seconds); the full gate re-measures the committed sizes up to
    // 10^5 / 262k for the ratio gates (their 10^6 rows take multiple
    // seconds per run and add nothing to a ratio) plus the serve 10^6 row,
    // where the 50k places/sec acceptance floor is an absolute criterion
    let (sparse_sizes, obs_sizes, serve_sizes, reps): (&[usize], &[usize], &[usize], usize) =
        if quick {
            (&[10_000], &[65_536], &[65_536], 7)
        } else {
            (
                &[10_000, 100_000],
                &[65_536, 262_144],
                &[65_536, 1_000_000],
                15,
            )
        };

    let mode = if quick { "quick" } else { "full" };
    println!(
        "qlb-bench-check ({mode}): speedup tolerance {tolerance}, \
         overhead noise margin {margin} pct-points"
    );
    let mut gates = Vec::new();
    check_sparse(&sparse_baseline, sparse_sizes, tolerance, &mut gates);
    check_parallel(&parallel_baseline, tolerance, &mut gates);
    check_obs(&obs_baseline, obs_sizes, reps, margin, &mut gates);
    check_shard_timing(&obs_baseline, reps, margin, &mut gates);
    check_window(&obs_baseline, quick, reps, margin, &mut gates);
    check_spans(&obs_baseline, quick, reps, margin, &mut gates);
    check_serve(&serve_baseline, serve_sizes, tolerance, &mut gates);
    check_mem(&mem_baseline, mem_growth, &mut gates);

    let mut failed = 0usize;
    for g in &gates {
        let verdict = if g.passed { "PASS" } else { "FAIL" };
        println!("{verdict}  {:<36} {}", g.name, g.detail);
        if !g.passed {
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!(
            "{failed} of {} gates failed — performance regressed vs the committed \
             BENCH_*.json baselines",
            gates.len()
        );
        exit(1);
    }
    println!("all {} gates pass", gates.len());
}

fn print_help() {
    println!(
        "qlb-bench-check — re-measure the committed BENCH_*.json baselines and fail on regression\n\n\
         USAGE:\n  qlb-bench-check [--quick] [--speedup-tolerance R] [--overhead-margin P] [--mem-growth G]\n\n\
         OPTIONS:\n  --quick                 smallest committed size per gate (CI smoke, ~seconds)\n  \
         --speedup-tolerance R   sparse speedups must reach R x committed (default 0.35)\n  \
         --overhead-margin P     obs overheads may exceed their budget by P points (default 3)\n  \
         --mem-growth G          working sets may grow to G x committed bytes/user (default 1.35)\n\n\
         Gates: sparse endgame round speedup, tight-slack run speedup (BENCH_sparse.json);\n\
         pool dispatch reduction >= 5x, SoA pooled round >= 3x dense sequential at the\n\
         committed top thread count, and sparse open/weighted drivers beating dense\n\
         (BENCH_parallel.json); NoopSink and Recorder overhead budgets, the pooled\n\
         per-shard profiling budget (< 2% on vs off, ~0% disabled), the windowed\n\
         telemetry plane's marginal cost on the serving loop (< 2%), and the causal\n\
         span layer at --span-sample 64 (< 2%, ~0% disabled) (BENCH_obs.json);\n\
         serving throughput >= max(tolerance x committed, the 50k/s acceptance floor),\n\
         placement p95 within 1/tolerance of committed, and a never-starved rebalancer\n\
         (BENCH_serve.json); zero-alloc shard-owned pooled rounds under the 12 B/user\n\
         round-peak acceptance gate plus working-set regression caps (BENCH_mem.json).\n\
         Measurements share code with the benches (qlb_bench::checks), so numbers are\n\
         comparable by construction."
    );
}
