//! SplitMix64: the canonical tiny, fast, seedable sequential generator.

use crate::mix::mix64;
use crate::Rng64;

/// SplitMix64 generator (Steele, Lea & Flood, OOPSLA'14).
///
/// One addition plus one [`mix64`] per output word. Passes BigCrush. Used
/// throughout the workspace for *sequential* randomness — workload
/// generation, seeding substreams — where counter-based addressing is not
/// needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// Golden-ratio increment; coprime to 2^64, so the state walks the full
/// period of 2^64 before repeating.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

impl SplitMix64 {
    /// Create a generator from a seed. Every seed gives a distinct full
    /// period; seed 0 is fine.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive an independent child generator. The child's seed is mixed so
    /// the two sequences are statistically unrelated; used to hand each
    /// workload component (capacities, placement, schedule, ...) its own
    /// stream without manual seed bookkeeping.
    #[inline]
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(mix64(self.next_u64()))
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer() {
        // Reference values for seed 1234567 from the public-domain C version
        // (first outputs of splitmix64 with Stafford mix13 variant differ
        // from Vigna's mix, so we pin OUR implementation instead: this test
        // freezes the stream so accidental algorithm changes are caught).
        let mut rng = SplitMix64::new(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng2 = SplitMix64::new(0);
        let again: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(first, again);
        // distinct consecutive outputs
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let overlaps = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(overlaps, 0);
    }

    #[test]
    fn split_children_are_unrelated() {
        let mut parent = SplitMix64::new(42);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn clone_replays() {
        let mut a = SplitMix64::new(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
