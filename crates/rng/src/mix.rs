//! 64-bit mixing functions (finalizers) used by the counter-based streams.

/// Stafford's "Mix13" variant of the MurmurHash3/SplitMix64 finalizer.
///
/// A bijection on `u64` with excellent avalanche behaviour (every input bit
/// flips each output bit with probability ≈ 1/2). This is the core primitive
/// behind both [`crate::SplitMix64`] and [`crate::RoundStream`].
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mix two words into one, with enough asymmetry that `mix64_pair(a, b)` and
/// `mix64_pair(b, a)` are unrelated.
///
/// Used to fold `(seed, stream)` and `(round, draw)` coordinates into the
/// counter of a [`crate::RoundStream`]. The odd constant is the golden-ratio
/// increment of SplitMix64, which guarantees consecutive streams (`stream`,
/// `stream + 1`) land far apart in the mixed space.
#[inline]
pub fn mix64_pair(a: u64, b: u64) -> u64 {
    mix64(
        a ^ mix64(
            b.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x2545_f491_4f6c_dd1d),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_is_injective_on_sample() {
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn mix64_avalanche() {
        // Flipping one input bit should flip roughly half the output bits.
        let trials = 2_000u64;
        let mut total_flips = 0u32;
        for i in 0..trials {
            let base = mix64(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            for bit in 0..64 {
                let x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (1 << bit);
                total_flips += (mix64(x) ^ base).count_ones();
            }
        }
        let avg = total_flips as f64 / (trials * 64) as f64;
        assert!(
            (avg - 32.0).abs() < 1.0,
            "avalanche average {avg} far from 32"
        );
    }

    #[test]
    fn mix64_pair_is_order_sensitive() {
        assert_ne!(mix64_pair(1, 2), mix64_pair(2, 1));
        let mut seen = HashSet::new();
        for a in 0..200u64 {
            for b in 0..200u64 {
                seen.insert(mix64_pair(a, b));
            }
        }
        assert_eq!(seen.len(), 200 * 200, "pair collisions in small grid");
    }
}
