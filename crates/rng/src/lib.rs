//! # qlb-rng — deterministic randomness for distributed simulation
//!
//! Reproducing a randomized distributed protocol across *three* executors
//! (a sequential engine, a multi-threaded engine, and a message-passing actor
//! runtime) requires that the random draw a user makes in a given round is a
//! **pure function of `(seed, user, round)`** — independent of the order in
//! which threads or actors happen to evaluate users. Ordinary stateful RNGs
//! cannot provide this: interleaving changes the draw sequence.
//!
//! This crate therefore provides *counter-based* random streams in the style
//! of Salmon et al.'s "Parallel random numbers: as easy as 1, 2, 3"
//! (SC'11): a strong 64-bit mixing function is applied to a counter derived
//! from `(seed, stream, round, draw)`. Any executor that asks for "user
//! `u`'s `k`-th draw in round `t`" gets the same bits, bit-for-bit.
//!
//! The crate also ships two conventional stateful generators —
//! [`SplitMix64`] and [`Xoshiro256pp`] — used where a plain sequential
//! stream is fine (workload generation, seeding), plus distribution helpers
//! ([`Rng64`] provided methods) shared by every layer above.
//!
//! ```
//! use qlb_rng::{RoundStream, Rng64};
//!
//! // user 17's randomness in round 3 of the run with seed 42:
//! let mut s1 = RoundStream::new(42, 17, 3);
//! let mut s2 = RoundStream::new(42, 17, 3);
//! assert_eq!(s1.next_u64(), s2.next_u64()); // identical on any executor
//! ```

#![warn(missing_docs)]

mod mix;
mod splitmix;
mod stream;
mod xoshiro;

pub use mix::{mix64, mix64_pair};
pub use splitmix::SplitMix64;
pub use stream::{fill_round_bases, RoundStream};
pub use xoshiro::Xoshiro256pp;

/// A minimal 64-bit random generator interface with the derived draws every
/// protocol and generator in this workspace needs.
///
/// The provided methods are implemented once here so that all executors
/// (engine, runtime, workload generators) interpret raw bits identically —
/// a prerequisite for cross-executor determinism.
pub trait Rng64 {
    /// Produce the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; dividing by 2^53 yields [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased and needs one
    /// multiplication in the common case.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    fn uniform(&mut self, n: u64) -> u64 {
        assert!(n > 0, "uniform(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            // rejection zone to remove modulo bias
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`. Convenience wrapper over [`Rng64::uniform`].
    #[inline]
    fn uniform_usize(&mut self, n: usize) -> usize {
        self.uniform(n as u64) as usize
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    ///
    /// `p <= 0` never fires and `p >= 1` always fires, deterministically and
    /// without consuming randomness, so degenerate protocol parameters stay
    /// reproducible and cheap.
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[inline]
    fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.uniform(span + 1)
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.uniform_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample an index from a discrete distribution given by non-negative
    /// `weights` (not necessarily normalized) using inverse-CDF sampling.
    ///
    /// Returns `None` if all weights are zero or the slice is empty.
    fn weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slop: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = SplitMix64::new(99);
        for n in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..1000 {
                assert!(rng.uniform(n) < n);
            }
        }
    }

    #[test]
    #[should_panic(expected = "uniform(0)")]
    fn uniform_zero_panics() {
        SplitMix64::new(1).uniform(0);
    }

    #[test]
    fn uniform_is_roughly_unbiased() {
        // chi-square-ish sanity check on a small modulus
        let mut rng = SplitMix64::new(2024);
        let n = 10u64;
        let draws = 100_000;
        let mut counts = [0u32; 10];
        for _ in 0..draws {
            counts[rng.uniform(n) as usize] += 1;
        }
        let expected = draws as f64 / n as f64;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket deviates {dev} from uniform");
        }
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..100 {
            assert!(!rng.bernoulli(0.0));
            assert!(!rng.bernoulli(-1.0));
            assert!(rng.bernoulli(1.0));
            assert!(rng.bernoulli(2.0));
        }
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut rng = SplitMix64::new(77);
        let p = 0.3;
        let trials = 200_000;
        let hits = (0..trials).filter(|_| rng.bernoulli(p)).count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - p).abs() < 0.01, "freq {freq} vs p {p}");
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = SplitMix64::new(8);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match rng.range_inclusive(3, 6) {
                3 => saw_lo = true,
                6 => saw_hi = true,
                x => assert!((3..=6).contains(&x)),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn range_inclusive_degenerate() {
        let mut rng = SplitMix64::new(8);
        assert_eq!(rng.range_inclusive(5, 5), 5);
        // full-span range must not overflow
        let _ = rng.range_inclusive(0, u64::MAX);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(13);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_skips_zero_weights() {
        let mut rng = SplitMix64::new(21);
        let weights = [0.0, 2.0, 0.0, 1.0];
        for _ in 0..1000 {
            let i = rng.weighted(&weights).unwrap();
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn weighted_empty_and_zero_total() {
        let mut rng = SplitMix64::new(21);
        assert_eq!(rng.weighted(&[]), None);
        assert_eq!(rng.weighted(&[0.0, 0.0]), None);
    }

    #[test]
    fn weighted_frequency() {
        let mut rng = SplitMix64::new(31);
        let weights = [1.0, 3.0];
        let trials = 100_000;
        let ones = (0..trials)
            .filter(|_| rng.weighted(&weights) == Some(1))
            .count();
        let freq = ones as f64 / trials as f64;
        assert!((freq - 0.75).abs() < 0.01);
    }
}
