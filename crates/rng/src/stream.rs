//! Counter-based per-(stream, round) random streams.

use crate::mix::{mix64, mix64_pair};
use crate::Rng64;

/// A counter-based random stream addressed by `(seed, stream, round)`.
///
/// `RoundStream::new(seed, u, t)` is the randomness available to user `u`
/// in round `t` of the run identified by `seed`. The `k`-th draw is the pure
/// function `mix64(base + k)` where `base` folds all three coordinates, so:
///
/// * any executor — sequential loop, thread pool, actor runtime — that asks
///   for the same `(seed, u, t, k)` gets the same bits;
/// * streams for different users/rounds are statistically independent
///   (avalanche of [`mix64`] over well-separated bases);
/// * no state needs to be carried between rounds, which keeps actors
///   stateless with respect to randomness.
///
/// This is the Philox/Threefry idea with a cheaper (non-cryptographic) mixer,
/// which is the right trade-off for Monte-Carlo simulation.
#[derive(Debug, Clone)]
pub struct RoundStream {
    base: u64,
    counter: u64,
}

impl RoundStream {
    /// Stream for `stream` (e.g. a user id) in `round` of run `seed`.
    #[inline]
    pub fn new(seed: u64, stream: u64, round: u64) -> Self {
        Self::from_base(Self::base(seed, stream, round))
    }

    /// The folded base of the `(seed, stream, round)` stream — the only
    /// per-stream state. `from_base(base(s, u, t))` is exactly `new(s, u, t)`;
    /// splitting the two lets batch kernels precompute bases for a whole
    /// block of users in one pass (see [`fill_round_bases`]) instead of
    /// re-folding coordinates inside the per-user hot loop.
    #[inline]
    pub fn base(seed: u64, stream: u64, round: u64) -> u64 {
        // Fold the three coordinates with two asymmetric pair-mixes.
        // `seed` and `stream` are mixed first so that all rounds of one user
        // share a well-separated lane; `round` then offsets within the lane.
        let lane = mix64_pair(seed, stream);
        mix64_pair(lane, round)
    }

    /// Rebuild a fresh (zero-draw) stream from a precomputed base.
    #[inline]
    pub fn from_base(base: u64) -> Self {
        Self { base, counter: 0 }
    }

    /// Number of draws consumed so far.
    #[inline]
    pub fn draws(&self) -> u64 {
        self.counter
    }

    /// Jump directly to draw index `k` (used by tests to verify purity).
    #[inline]
    pub fn at(seed: u64, stream: u64, round: u64, k: u64) -> u64 {
        let mut s = Self::new(seed, stream, round);
        s.counter = k;
        s.next_u64()
    }
}

impl Rng64 for RoundStream {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = mix64(self.base.wrapping_add(self.counter.wrapping_mul(
            // odd multiplier spreads consecutive counters across the space
            0x9e37_79b9_7f4a_7c15,
        )));
        self.counter += 1;
        out
    }
}

/// Fill `out` with the [`RoundStream::base`] of every stream id in
/// `streams` for `(seed, round)` — the batched-RNG primitive of the SoA
/// decide kernel. Each shard refills one small buffer per round from this
/// and rebuilds streams with [`RoundStream::from_base`]; draw-for-draw the
/// result is identical to constructing each stream with
/// [`RoundStream::new`], so batching can never change a decision.
///
/// `out` is cleared first; reusing one buffer keeps the hot loop
/// allocation-free.
pub fn fill_round_bases(seed: u64, round: u64, streams: &[u32], out: &mut Vec<u64>) {
    out.clear();
    out.reserve(streams.len());
    for &s in streams {
        out.push(RoundStream::base(seed, s as u64, round));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn identical_coordinates_identical_bits() {
        let mut a = RoundStream::new(1, 2, 3);
        let mut b = RoundStream::new(1, 2, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn any_coordinate_change_changes_stream() {
        let base: Vec<u64> = {
            let mut s = RoundStream::new(1, 2, 3);
            (0..8).map(|_| s.next_u64()).collect()
        };
        for (seed, stream, round) in [(2, 2, 3), (1, 3, 3), (1, 2, 4)] {
            let mut s = RoundStream::new(seed, stream, round);
            let other: Vec<u64> = (0..8).map(|_| s.next_u64()).collect();
            assert_ne!(base, other);
        }
    }

    #[test]
    fn at_matches_sequential_draws() {
        let mut s = RoundStream::new(7, 11, 13);
        for k in 0..50 {
            assert_eq!(s.next_u64(), RoundStream::at(7, 11, 13, k));
        }
    }

    #[test]
    fn streams_do_not_collide_across_users_and_rounds() {
        // First draw of 100 users × 100 rounds must be all distinct: a
        // collision would mean two users share randomness, i.e. correlated
        // migrations — exactly the bug class this crate exists to prevent.
        let mut seen = HashSet::new();
        for user in 0..100u64 {
            for round in 0..100u64 {
                let mut s = RoundStream::new(0xDEAD_BEEF, user, round);
                assert!(seen.insert(s.next_u64()));
            }
        }
    }

    #[test]
    fn per_stream_uniformity() {
        // Aggregate first draws over many users: should look uniform.
        let n = 100_000u64;
        let buckets = 16usize;
        let mut counts = vec![0u32; buckets];
        for user in 0..n {
            let mut s = RoundStream::new(5, user, 0);
            counts[(s.next_u64() >> 60) as usize] += 1;
        }
        let expected = n as f64 / buckets as f64;
        for &c in &counts {
            assert!(((c as f64 - expected) / expected).abs() < 0.05);
        }
    }

    #[test]
    fn base_round_trip_is_bit_identical() {
        for (seed, stream, round) in [(0, 0, 0), (7, 11, 13), (u64::MAX, 42, 9)] {
            let mut a = RoundStream::new(seed, stream, round);
            let mut b = RoundStream::from_base(RoundStream::base(seed, stream, round));
            for _ in 0..16 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn fill_round_bases_matches_per_user_construction() {
        let users: Vec<u32> = [3u32, 0, 17, 999_999, 17].into();
        let mut bases = vec![1, 2, 3]; // stale content must be cleared
        fill_round_bases(42, 6, &users, &mut bases);
        assert_eq!(bases.len(), users.len());
        for (&u, &b) in users.iter().zip(&bases) {
            let mut batched = RoundStream::from_base(b);
            let mut fresh = RoundStream::new(42, u as u64, 6);
            assert_eq!(batched.next_u64(), fresh.next_u64());
        }
    }

    #[test]
    fn draws_counter_tracks() {
        let mut s = RoundStream::new(1, 1, 1);
        assert_eq!(s.draws(), 0);
        s.next_u64();
        s.next_u64();
        assert_eq!(s.draws(), 2);
    }
}
