//! xoshiro256++: a fast, high-quality stateful generator.

use crate::mix::mix64;
use crate::Rng64;

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019).
///
/// Period 2^256 − 1 and excellent statistical quality; used for long
/// Monte-Carlo workload generation where the 2^64 period of
/// [`crate::SplitMix64`] would be marginal (e.g. sweeps drawing billions of
/// variates), and as an independent cross-check generator in statistical
/// tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via SplitMix64 expansion, as recommended by the authors (avoids
    /// the all-zero state and decorrelates nearby seeds).
    pub fn new(seed: u64) -> Self {
        let mut sm = crate::SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // Guard against the (astronomically unlikely) all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = mix64(seed) | 1;
        }
        Self { s }
    }

    /// The `jump()` function: advances the state by 2^128 steps, yielding a
    /// non-overlapping substream. Handy for giving each worker thread of a
    /// generator its own slice of the sequence.
    pub fn jump(&mut self) -> Xoshiro256pp {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let orig = self.s;
        let mut acc = [0u64; 4];
        for jump_word in JUMP {
            for bit in 0..64 {
                if (jump_word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        // The parent continues from its original position; the child starts
        // 2^128 draws ahead, so their sequences cannot overlap in practice.
        self.s = orig;
        Xoshiro256pp { s: acc }
    }
}

impl Rng64 for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Xoshiro256pp::new(99);
        let mut b = Xoshiro256pp::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_output() {
        let mut a = Xoshiro256pp::new(1);
        let mut b = Xoshiro256pp::new(2);
        assert_ne!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn jump_produces_disjoint_prefix() {
        let mut parent = Xoshiro256pp::new(7);
        let mut child = parent.jump();
        let p: Vec<u64> = (0..256).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..256).map(|_| child.next_u64()).collect();
        // No element of the child's prefix appears in the parent's prefix.
        for x in &c {
            assert!(!p.contains(x));
        }
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = Xoshiro256pp::new(3);
        let n = 100_000;
        let ones: u32 = (0..n).map(|_| (rng.next_u64() & 1) as u32).sum();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.5).abs() < 0.01);
    }
}
