//! Compact undirected resource graphs (CSR) and generators.

use qlb_rng::{Rng64, SplitMix64};
use std::collections::VecDeque;

/// An undirected graph over resources `0..m`, stored as CSR adjacency.
///
/// Self-loops are rejected; parallel edges are deduplicated at build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl Graph {
    /// Build from an edge list over `m` vertices.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops.
    pub fn from_edges(m: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); m];
        for &(a, b) in edges {
            assert!((a as usize) < m && (b as usize) < m, "edge out of range");
            assert_ne!(a, b, "self-loop");
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        let mut offsets = Vec::with_capacity(m + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in adj {
            neighbors.extend(list);
            offsets.push(neighbors.len() as u32);
        }
        Self { offsets, neighbors }
    }

    /// Ring: vertex `i` adjacent to `i ± 1 (mod m)`. Diameter `⌊m/2⌋`.
    ///
    /// # Panics
    /// Panics for `m < 3`.
    pub fn ring(m: usize) -> Self {
        assert!(m >= 3, "ring needs ≥ 3 vertices");
        let edges: Vec<(u32, u32)> = (0..m as u32).map(|i| (i, (i + 1) % m as u32)).collect();
        Self::from_edges(m, &edges)
    }

    /// 2-D torus `w × h` (4-neighbour). Diameter `⌊w/2⌋ + ⌊h/2⌋`.
    ///
    /// # Panics
    /// Panics unless both sides are ≥ 3 (smaller sides create parallel
    /// edges that would silently dedupe into a degenerate graph).
    pub fn torus(w: usize, h: usize) -> Self {
        assert!(w >= 3 && h >= 3, "torus sides must be ≥ 3");
        let m = w * h;
        let idx = |x: usize, y: usize| (y * w + x) as u32;
        let mut edges = Vec::with_capacity(2 * m);
        for y in 0..h {
            for x in 0..w {
                edges.push((idx(x, y), idx((x + 1) % w, y)));
                edges.push((idx(x, y), idx(x, (y + 1) % h)));
            }
        }
        Self::from_edges(m, &edges)
    }

    /// Complete graph: every pair adjacent (the unrestricted model, as a
    /// sanity anchor for E17).
    pub fn complete(m: usize) -> Self {
        let mut edges = Vec::with_capacity(m * (m - 1) / 2);
        for a in 0..m as u32 {
            for b in (a + 1)..m as u32 {
                edges.push((a, b));
            }
        }
        Self::from_edges(m, &edges)
    }

    /// Erdős–Rényi `G(m, p)`, conditioned on connectivity by retrying with
    /// fresh randomness (deterministic in `seed`).
    ///
    /// # Panics
    /// Panics if no connected sample is found within 64 attempts (choose a
    /// larger `p`; the connectivity threshold is `ln m / m`).
    pub fn erdos_renyi(m: usize, p: f64, seed: u64) -> Self {
        let mut rng = SplitMix64::new(qlb_rng::mix64_pair(seed, 0x9_A9A));
        for _attempt in 0..64 {
            let mut edges = Vec::new();
            for a in 0..m as u32 {
                for b in (a + 1)..m as u32 {
                    if rng.bernoulli(p) {
                        edges.push((a, b));
                    }
                }
            }
            let g = Self::from_edges(m, &edges);
            if g.is_connected() {
                return g;
            }
        }
        panic!("no connected G({m}, {p}) sample in 64 attempts");
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.neighbors(v).len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        self.neighbors.len() as f64 / self.num_vertices() as f64
    }

    /// BFS distances from `src` (`u32::MAX` = unreachable).
    pub fn bfs_distances(&self, src: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_vertices()];
        let mut queue = VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[v] + 1;
                    queue.push_back(w as usize);
                }
            }
        }
        dist
    }

    /// Is the graph connected? (Vacuously true for a single vertex.)
    pub fn is_connected(&self) -> bool {
        if self.num_vertices() == 0 {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != u32::MAX)
    }

    /// Exact diameter via all-pairs BFS (`O(m·(m+E))` — fine at
    /// experiment scale). `None` if disconnected.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = 0u32;
        for v in 0..self.num_vertices() {
            let d = self.bfs_distances(v);
            for &x in &d {
                if x == u32::MAX {
                    return None;
                }
                best = best.max(x);
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_structure() {
        let g = Graph::ring(6);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.neighbors(0), &[1, 5]);
        assert_eq!(g.degree(3), 2);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    fn torus_structure() {
        let g = Graph::torus(4, 3);
        assert_eq!(g.num_vertices(), 12);
        assert!(g.is_connected());
        for v in 0..12 {
            assert_eq!(g.degree(v), 4, "vertex {v}");
        }
        assert_eq!(g.diameter(), Some(2 + 1));
    }

    #[test]
    fn complete_structure() {
        let g = Graph::complete(5);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.diameter(), Some(1));
        for v in 0..5 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn erdos_renyi_connected_and_deterministic() {
        let a = Graph::erdos_renyi(32, 0.3, 7);
        let b = Graph::erdos_renyi(32, 0.3, 7);
        assert_eq!(a, b);
        assert!(a.is_connected());
        let c = Graph::erdos_renyi(32, 0.3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn from_edges_dedupes() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = Graph::from_edges(2, &[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = Graph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn disconnected_detected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
    }

    #[test]
    fn bfs_distances_on_ring() {
        let g = Graph::ring(8);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 3, 2, 1]);
    }
}
