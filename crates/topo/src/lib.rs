//! # qlb-topo — topology-restricted sampling
//!
//! The base model lets every user sample every resource. In real systems
//! resources have *structure*: a client can only fail over to servers in
//! reachable racks; a station can only hop to adjacent channels; a task
//! can only migrate along the interconnect. This crate restricts sampling
//! to a **resource graph**: a user on resource `r` may only probe `r`'s
//! neighbours.
//!
//! Two kernels are provided, and the distinction is the interesting part:
//!
//! * [`GraphSlackDamped`] — the paper's kernel, verbatim, with
//!   neighbour-only sampling. On sparse graphs it **deadlocks**: once the
//!   resources adjacent to a hotspot fill to capacity, their occupants are
//!   satisfied and never move, and the surplus can never cross the full
//!   ring of neighbours even though remote capacity abounds. This is the
//!   topological incarnation of the blocking phenomenon (pinned by a test
//!   here and measured in experiment E17).
//! * [`GraphDiffusion`] — adds a balancing rule for satisfied users: drift
//!   to a strictly less-loaded neighbour (damped, and only when the move
//!   keeps the target legal). Satisfied users vacating hotspot-adjacent
//!   resources is exactly what lets the surplus percolate, turning the
//!   deadlock into diffusion; convergence time then scales with the
//!   topology's diffusion properties (diameter/conductance), which E17
//!   sweeps across ring / torus / random / complete graphs.
//!
//! [`Graph`] is a compact CSR structure with generators for the standard
//! experiment topologies and the BFS-based diagnostics (connectivity,
//! diameter) the experiment tables report.

//! ```
//! use qlb_core::prelude::*;
//! use qlb_engine::{run, RunConfig};
//! use qlb_topo::{Graph, GraphDiffusion};
//!
//! let mesh = Graph::torus(4, 4);
//! let inst = Instance::uniform(96, 16, 8).unwrap(); // γ ≈ 1.33
//! let start = State::all_on(&inst, ResourceId(0));
//! let out = run(&inst, start, &GraphDiffusion::new(mesh), RunConfig::new(3, 100_000));
//! assert!(out.converged);
//! ```

#![warn(missing_docs)]

mod graph;
mod kernels;

pub use graph::Graph;
pub use kernels::{GraphDiffusion, GraphSlackDamped};
